//! Vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] / [`prop_assert!`] family, [`strategy::Strategy`]
//! with `prop_map`, [`prop_oneof!`] unions, [`strategy::Just`],
//! [`arbitrary::any`], range strategies (including a tiny regex-string
//! strategy for `&str` patterns), [`collection::vec`],
//! [`array::uniform11`]-style array strategies and
//! [`sample::Index`]. Case generation is deterministic (seeded from the
//! test name and case number); there is no shrinking — a failing case
//! panics with the generated inputs left to the assertion message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's `Config`: how many cases to run.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-test random source.
    pub struct TestRng {
        base: u64,
        rng: SmallRng,
    }

    impl TestRng {
        /// Seeded from the property name so each test gets its own stream.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                base: h,
                rng: SmallRng::seed_from_u64(h),
            }
        }

        /// Re-seed for case `n` so each case is independently reproducible.
        pub fn reseed_case(&mut self, n: u32) {
            self.rng =
                SmallRng::seed_from_u64(self.base ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            use rand::Rng;
            self.rng.gen_range(0..bound.max(1))
        }

        /// Uniform value in `[lo, hi)` as f64.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of alternatives.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_matching(self, rng)
        }
    }
}

pub mod string {
    //! Tiny regex-shaped string generator backing `&str` strategies.
    //!
    //! Supports the pattern features the repo's tests use: literal chars,
    //! `.`, `\PC` (printable), `\d`, `\w`, `\s`, `[a-z0-9_]` classes, and
    //! the quantifiers `{a,b}`, `{n}`, `{a,}`, `*`, `+`, `?`.

    use super::test_runner::TestRng;

    enum Class {
        Printable,
        Digit,
        Word,
        Space,
        Dot,
        Literal(char),
        Set(Vec<(char, char)>),
    }

    struct Atom {
        class: Class,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let class = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // proptest's `\PC`: printable (non-control) chars.
                        let _ = chars.next(); // consume the category letter
                        Class::Printable
                    }
                    Some('d') => Class::Digit,
                    Some('w') => Class::Word,
                    Some('s') => Class::Space,
                    Some(l) => Class::Literal(l),
                    None => Class::Literal('\\'),
                },
                '.' => Class::Dot,
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    for sc in chars.by_ref() {
                        if sc == ']' {
                            break;
                        }
                        if sc == '-' {
                            if let Some(p) = prev {
                                set.pop();
                                set.push((p, '\0')); // fill end on next char
                                prev = None;
                                continue;
                            }
                        }
                        if let Some(&(lo, '\0')) = set.last() {
                            *set.last_mut().unwrap() = (lo, sc);
                        } else {
                            set.push((sc, sc));
                        }
                        prev = Some(sc);
                    }
                    Class::Set(set)
                }
                lit => Class::Literal(lit),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for qc in chars.by_ref() {
                        if qc == '}' {
                            break;
                        }
                        spec.push(qc);
                    }
                    match spec.split_once(',') {
                        Some((a, "")) => {
                            let lo: u32 = a.parse().unwrap_or(0);
                            (lo, lo + 8)
                        }
                        Some((a, b)) => (a.parse().unwrap_or(0), b.parse().unwrap_or(8)),
                        None => {
                            let n: u32 = spec.parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { class, min, max });
        }
        atoms
    }

    fn sample_char(class: &Class, rng: &mut TestRng) -> char {
        match class {
            Class::Literal(c) => *c,
            Class::Digit => (b'0' + rng.below(10) as u8) as char,
            Class::Space => *[' ', '\t'].get(rng.below(2) as usize).unwrap(),
            Class::Word => {
                const POOL: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                POOL[rng.below(POOL.len() as u64) as usize] as char
            }
            Class::Dot => (0x20 + rng.below(0x5F) as u8) as char,
            Class::Printable => {
                // Mostly ASCII graphic/space, sometimes wider codepoints so
                // multi-byte handling gets exercised.
                if rng.below(8) == 0 {
                    const WIDE: &[char] = &['é', 'λ', 'ß', '→', '日', '𝕏', '¤', 'ё'];
                    WIDE[rng.below(WIDE.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5F) as u8) as char
                }
            }
            Class::Set(ranges) => {
                if ranges.is_empty() {
                    return 'x';
                }
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(sample_char(&atom.class, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 != 0
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! arb_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }

    arb_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy produced by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length falls
    /// in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`prop::array::uniformN`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[S::Value; N]` drawing each element from `S`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// Array strategy with independently drawn elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_fns! {
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
        uniform9 => 9, uniform10 => 10, uniform11 => 11, uniform12 => 12,
        uniform16 => 16, uniform32 => 32,
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;

    /// A position into any collection, fixed at generation time and scaled
    /// to a concrete length via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Resolve to an index in `[0, len)`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    //! The standard glob import for property tests.

    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` etc. resolve.
    pub mod prop {
        pub use super::super::array;
        pub use super::super::collection;
        pub use super::super::sample;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    __rng.reseed_case(__case);
                    $( let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A(u32),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 3u32..17, y in (0usize..4).prop_map(|v| v * 2)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y % 2 == 0 && y < 8);
        }

        #[test]
        fn oneof_tuples_vecs(
            k in prop_oneof![
                (1u32..5).prop_map(Kind::A),
                any::<bool>().prop_map(Kind::B),
            ],
            v in prop::collection::vec((0u8..4, any::<bool>()), 2..6),
            arr in prop::array::uniform4(any::<u16>()),
            idx in any::<prop::sample::Index>(),
            f in 0.25f64..0.75,
        ) {
            match k {
                Kind::A(n) => prop_assert!((1..5).contains(&n)),
                Kind::B(_) => {}
            }
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&(a, _)| a < 4));
            prop_assert_eq!(arr.len(), 4);
            prop_assert!(idx.index(10) < 10);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn string_pattern(s in "\\PC{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::for_test("det");
        let mut r2 = crate::test_runner::TestRng::for_test("det");
        let s = (0u32..1000, 0u32..1000);
        for case in 0..32 {
            r1.reseed_case(case);
            r2.reseed_case(case);
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("incl");
        let s = 1u16..=u16::MAX;
        for case in 0..256 {
            rng.reseed_case(case);
            let v = s.generate(&mut rng);
            assert!(v >= 1);
        }
    }
}

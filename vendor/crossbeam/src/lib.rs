//! Vendored stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides the scoped-thread API shape this workspace uses, implemented
//! over `std::thread::scope`: `crossbeam::scope(|s| { s.spawn(|_| ...); })`
//! returning `Err` (instead of propagating the panic) when any spawned
//! thread panicked.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Error payload of a panicked scope: the boxed panic value.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives a unit
    /// placeholder where crossbeam passes a nested scope handle (every
    /// caller in this workspace ignores it).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Run `f` with a scope in which threads borrowing from the environment can
/// be spawned; all are joined before `scope` returns. A panic in any spawned
/// thread (or in `f` itself) surfaces as `Err(payload)`.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let hits = AtomicUsize::new(0);
        let n = 8;
        super::scope(|s| {
            for _ in 0..n {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("workers");
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

//! Vendored stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! A thin wrapper over `std::sync::Mutex` exposing the poison-free
//! `parking_lot` API shape this workspace uses: `lock()` returning a guard
//! directly, and `into_inner()` returning the value directly. Poisoning is
//! swallowed the way `parking_lot` would never raise it: a panicked holder
//! leaves the data in whatever state it reached, and later lockers proceed.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}

//! Vendored stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open
//! integer and `f64` ranges. The generator is xoshiro256++ (the same family
//! the real `SmallRng` uses on 64-bit targets), seeded through splitmix64,
//! so streams are deterministic, well distributed, and cheap.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `T` from a range-like set, used by
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `lo..hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn sample_unit_f64(bits: u64) -> f64 {
    // 53 random bits scaled into [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// Unbiased bounded sampling via Lemire's multiply-shift with rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = x as u128 * bound as u128;
        let low = m as u64;
        if low >= bound {
            return (m >> 64) as u64;
        }
        // Rejection zone: retry only when within the biased remainder.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = sample_unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = sample_unit_f64(rng.next_u64()) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Generators intended for in-process, non-cryptographic use.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator, splitmix64-seeded.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; splitmix64 never
            // yields four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1 << 60)).collect();
        let mut a2 = SmallRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| a2.gen_range(0u64..1 << 60)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = r.gen_range(3usize..4);
            assert_eq!(s, 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!(
                (9_000..11_000).contains(&b),
                "bucket count {b} out of range"
            );
        }
    }
}

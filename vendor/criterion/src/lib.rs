//! Vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the structural API (`criterion_group!` / `criterion_main!`,
//! `Criterion`, benchmark groups, `Bencher::iter*`) but replaces the
//! statistical engine with a bounded timing loop that prints one
//! `name: ~N ns/iter` line per benchmark. Good enough to exercise the
//! bench code paths and give a coarse throughput signal without any
//! dependencies; not a precision measurement tool.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Per-benchmark time budget for the shim's measurement loop.
const BUDGET: Duration = Duration::from_millis(20);
/// Hard cap on iterations regardless of speed.
const MAX_ITERS: u64 = 10_000;

/// How batched inputs are grouped (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            iters: 0,
            total: Duration::ZERO,
        }
    }

    /// Time repeated calls of `routine` within the shim's budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.total = start.elapsed();
            if self.total >= BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name}: no iterations");
            return;
        }
        let per_iter = self.total.as_nanos() / self.iters as u128;
        let mut line = format!("{name}: ~{per_iter} ns/iter ({} iters)", self.iters);
        if per_iter > 0 {
            if let Some(Throughput::Elements(n)) = throughput {
                let rate = n as f64 * 1e9 / per_iter as f64;
                line.push_str(&format!(", ~{rate:.0} elem/s"));
            }
            if let Some(Throughput::Bytes(n)) = throughput {
                let rate = n as f64 * 1e9 / per_iter as f64;
                line.push_str(&format!(", ~{rate:.0} B/s"));
            }
        }
        println!("{line}");
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted, ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.as_ref()), self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes bench binaries with harness
            // flags; a smoke pass is plenty there and in `cargo bench`.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion;
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        let mut total = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::SmallInput)
        });
        g.finish();
        assert!(total >= 2);
    }
}

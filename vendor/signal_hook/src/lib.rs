//! Vendored stand-in for the `signal-hook` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: [`flag::register`], which
//! arranges for an `Arc<AtomicBool>` to be set to `true` when a Unix
//! signal (SIGINT, SIGTERM) is delivered. The handler installed is
//! async-signal-safe by construction — it only stores into pre-registered
//! atomic flags held in a fixed-capacity lock-free table; all allocation
//! happens at registration time, never in the handler.
//!
//! This is the one crate in the workspace whose library code contains
//! `unsafe`: the two operations POSIX forces on us — installing a C
//! handler with `signal(2)` and dereferencing the leaked flag pointers
//! inside that handler — are confined to [`imp`] and audited there. On
//! non-Unix targets registration succeeds but is inert.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Signal numbers, mirroring `signal_hook::consts`.
pub mod consts {
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// Termination request (the default `kill` signal).
    pub const SIGTERM: i32 = 15;
    /// User-defined signal 1 (used by the test suite).
    pub const SIGUSR1: i32 = 10;
}

/// Opaque token for a successful registration. The real crate supports
/// unregistering through it; this stand-in registers for process lifetime.
#[derive(Clone, Copy, Debug)]
pub struct SigId(());

/// Flag-setting signal actions, mirroring `signal_hook::flag`.
pub mod flag {
    use super::{imp, SigId};
    use std::io;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Arrange for `flag` to be set to `true` (with `SeqCst` ordering)
    /// every time `signal` is delivered to this process. The flag is
    /// leaked into a process-lifetime registry, so the returned `Arc` may
    /// be dropped freely. Fails if the signal number is out of range or
    /// the per-signal slot table (capacity 4) is full.
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> io::Result<SigId> {
        imp::register(signal, flag)
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SigId;
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    const MAX_SIGNAL: usize = 32;
    const SLOTS_PER_SIGNAL: usize = 4;

    /// Leaked `Arc<AtomicBool>` pointers, one row per signal number.
    /// Written only under CAS at registration time; the handler only
    /// reads. `0` means empty.
    static FLAGS: [[AtomicUsize; SLOTS_PER_SIGNAL]; MAX_SIGNAL] = {
        // The consts exist only as `[C; N]` repeat operands here — each
        // array element gets its own fresh atomic, never a shared one.
        #[allow(clippy::declare_interior_mutable_const)]
        const SLOT: AtomicUsize = AtomicUsize::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const ROW: [AtomicUsize; SLOTS_PER_SIGNAL] = [SLOT; SLOTS_PER_SIGNAL];
        [ROW; MAX_SIGNAL]
    };

    extern "C" {
        /// POSIX `signal(2)`. On glibc/musl Linux this gives BSD
        /// semantics: the handler stays installed and interrupted
        /// syscalls restart, which is what a drain-on-flag design wants.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_ERR: usize = usize::MAX;

    /// The installed handler. Async-signal-safe: no locks, no
    /// allocation, only atomic loads and stores on memory that was
    /// published (and intentionally leaked) before installation.
    extern "C" fn set_flags(signum: i32) {
        let row = signum as usize;
        if row < MAX_SIGNAL {
            for slot in &FLAGS[row] {
                let ptr = slot.load(Ordering::SeqCst);
                if ptr != 0 {
                    // SAFETY: non-zero slots hold pointers from
                    // `Arc::into_raw` that are never reclaimed, so the
                    // AtomicBool outlives every possible delivery.
                    let flag = unsafe { &*(ptr as *const AtomicBool) };
                    flag.store(true, Ordering::SeqCst);
                }
            }
        }
    }

    pub(super) fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<SigId> {
        let row = signum as usize;
        if signum <= 0 || row >= MAX_SIGNAL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("signal {signum} out of range"),
            ));
        }
        let ptr = Arc::into_raw(flag) as usize;
        let mut stored = false;
        for slot in &FLAGS[row] {
            if slot
                .compare_exchange(0, ptr, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                stored = true;
                break;
            }
        }
        if !stored {
            // SAFETY: `ptr` came from `Arc::into_raw` above and was not
            // published; reconstituting it here just drops our reference.
            drop(unsafe { Arc::from_raw(ptr as *const AtomicBool) });
            return Err(io::Error::other(format!(
                "too many flags registered for signal {signum}"
            )));
        }
        // SAFETY: installing an async-signal-safe extern "C" handler via
        // POSIX signal(2); `set_flags` touches only the static atomics.
        let previous = unsafe { signal(signum, set_flags as *const () as usize) };
        if previous == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
        Ok(SigId(()))
    }
}

#[cfg(not(unix))]
mod imp {
    use super::SigId;
    use std::io;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub(super) fn register(_signal: i32, _flag: Arc<AtomicBool>) -> io::Result<SigId> {
        // No signals to observe; succeed so callers need no cfg.
        Ok(SigId(()))
    }
}

#[cfg(all(test, unix))]
#[allow(unsafe_code)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn registered_flag_is_set_on_delivery() {
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGUSR1, Arc::clone(&flag)).unwrap();
        assert!(!flag.load(Ordering::SeqCst));
        // SAFETY: raise(3) delivers synchronously to this thread; the
        // handler only sets registered atomic flags.
        assert_eq!(unsafe { raise(consts::SIGUSR1) }, 0);
        assert!(flag.load(Ordering::SeqCst));

        // A second flag on the same signal also fires.
        let other = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGUSR1, Arc::clone(&other)).unwrap();
        assert_eq!(unsafe { raise(consts::SIGUSR1) }, 0);
        assert!(other.load(Ordering::SeqCst));
    }

    #[test]
    fn bad_signal_numbers_are_rejected() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(flag::register(0, Arc::clone(&flag)).is_err());
        assert!(flag::register(-3, Arc::clone(&flag)).is_err());
        assert!(flag::register(99, flag).is_err());
    }
}

//! Watch a live campaign converge from another terminal.
//!
//! Polls the `/status` endpoint of a campaign started with `--serve` and
//! redraws one line per stratum — samples, AVF, adjusted 99%-confidence
//! margin, and a sparkline of the margin's trajectory — until every
//! stratum's margin falls to or below the target (or the campaign ends).
//!
//! ```text
//! cargo run --release -p sea-bench --bin fig4 -- --serve 127.0.0.1:9099 &
//! cargo run --release --example watch_convergence -- 127.0.0.1:9099 --margin 5
//! ```
//!
//! With `--study <id>` the watcher polls a **fleet daemon's**
//! `/studies/<id>` document instead: the strata then come from the
//! study's active workload (fed by every worker's observations), so the
//! same sparkline view tracks fleet-wide convergence.

use sea_core::trace::json::{self, Json};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const HISTORY: usize = 40;

fn http_get(addr: &str, path: &str) -> Result<String, std::io::Error> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: sea\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(
            head.lines().next().unwrap_or("bad response").to_string(),
        )),
        None => Err(std::io::Error::other("no header terminator")),
    }
}

fn sparkline(history: &[f64]) -> String {
    history
        .iter()
        .map(|&m| SPARKS[((m.clamp(0.0, 1.0) * 7.0).round()) as usize])
        .collect()
}

struct Stratum {
    samples: u64,
    avf: f64,
    margin: f64,
}

/// Pulls (label → stratum) out of one status document. Campaign `/status`
/// docs carry `strata` at top level; fleet `/studies/<id>` docs nest them
/// under the active workload.
fn parse_strata(doc: &Json) -> Vec<(String, Stratum)> {
    let mut out = Vec::new();
    let top = doc
        .get("strata")
        .or_else(|| doc.get("active").and_then(|a| a.get("strata")));
    let Some(Json::Arr(strata)) = top else {
        return out;
    };
    for s in strata {
        let (Some(label), Some(samples), Some(avf), Some(margin)) = (
            s.get("label").and_then(Json::as_str),
            s.get("samples").and_then(Json::as_u64),
            s.get("avf").and_then(Json::as_f64),
            s.get("margin_adjusted").and_then(Json::as_f64),
        ) else {
            continue;
        };
        out.push((
            label.to_string(),
            Stratum {
                samples,
                avf,
                margin,
            },
        ));
    }
    out
}

/// The execution tier the producer is running on. Campaign `/status` docs
/// report a top-level `tier`; fleet study docs report one per worker, so
/// summarize the mix. Older producers omit it — they ran detailed-only.
fn tier_label(doc: &Json) -> String {
    if let Some(t) = doc.get("tier").and_then(Json::as_str) {
        return t.to_string();
    }
    if let Some(Json::Arr(workers)) = doc.get("workers") {
        let warp = workers
            .iter()
            .filter(|w| w.get("tier").and_then(Json::as_str) == Some("warp"))
            .count();
        return match (warp, workers.len()) {
            (0, _) => "detailed".to_string(),
            (w, n) if w == n => "warp".to_string(),
            (w, n) => format!("warp {w}/{n}"),
        };
    }
    "detailed".to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:9099".to_string();
    let mut target = 0.05;
    let mut interval_ms = 500u64;
    let mut study: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--margin" => {
                let pct: f64 = args[i + 1].parse().expect("--margin PCT");
                target = pct / 100.0;
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = args[i + 1].parse().expect("--interval-ms N");
                i += 2;
            }
            "--study" => {
                study = Some(args[i + 1].clone());
                i += 2;
            }
            a if !a.starts_with('-') => {
                addr = a.to_string();
                i += 1;
            }
            other => panic!(
                "unknown flag `{other}` (usage: watch_convergence [ADDR] [--margin PCT] [--interval-ms N] [--study ID])"
            ),
        }
    }
    let path = match &study {
        Some(id) => format!("/studies/{id}"),
        None => "/status".to_string(),
    };
    println!(
        "watching http://{addr}{path} until every margin ≤ {:.1}%\n",
        100.0 * target
    );

    let mut history: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut drawn = 0usize;
    loop {
        let body = match http_get(&addr, &path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{addr}: {e} — retrying");
                std::thread::sleep(Duration::from_millis(interval_ms.max(250)));
                continue;
            }
        };
        let Ok(doc) = json::parse(&body) else {
            eprintln!("unparseable /status document");
            std::thread::sleep(Duration::from_millis(interval_ms));
            continue;
        };
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
        // Campaign docs carry done/planned/eta_secs at top level; fleet
        // study docs carry per-workload suite rows and eta_sec.
        let (mut done, mut planned) = (
            doc.get("done").and_then(Json::as_u64).unwrap_or(0),
            doc.get("planned").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(Json::Arr(rows)) = doc.get("suite") {
            for r in rows {
                done += r.get("done").and_then(Json::as_u64).unwrap_or(0);
                planned += r.get("total").and_then(Json::as_u64).unwrap_or(0);
            }
        }
        let eta = doc
            .get("eta_secs")
            .or_else(|| doc.get("eta_sec"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let strata = parse_strata(&doc);
        for (label, s) in &strata {
            let h = history.entry(label.clone()).or_default();
            h.push(s.margin);
            if h.len() > HISTORY {
                h.remove(0);
            }
        }

        // Redraw in place: move the cursor up over the previous frame.
        if drawn > 0 {
            print!("\x1b[{drawn}A");
        }
        println!(
            "\x1b[2K{state} [{}]: {done}/{planned} runs, eta {eta:.0}s, target ±{:.1}%",
            tier_label(&doc),
            100.0 * target
        );
        let label_w = strata.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
        for (label, s) in &strata {
            let met = if s.margin <= target { '✓' } else { ' ' };
            println!(
                "\x1b[2K  {label:<label_w$} n={:<6} AVF {:5.3} ±{:6.3}% {met} {}",
                s.samples,
                s.avf,
                100.0 * s.margin,
                sparkline(history.get(label).map_or(&[][..], Vec::as_slice)),
            );
        }
        drawn = 1 + strata.len();

        let idle = state != "running";
        let converged = !strata.is_empty() && strata.iter().all(|(_, s)| s.margin <= target);
        if converged || (idle && state == "done") {
            println!(
                "\n{}",
                if converged {
                    "every stratum within target margin"
                } else {
                    "campaign finished before reaching the target margin"
                }
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

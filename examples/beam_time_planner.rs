//! Beam-time planner: how many hours at LANSCE does a campaign need?
//!
//! Beam time is scarce and expensive; the paper's 260 effective hours had
//! to cover 13 benchmarks. This tool runs each benchmark fault-free to get
//! its execution time, estimates its error cross-section from a quick
//! beam sample, and reports the facility hours needed to observe a target
//! number of errors per benchmark.
//!
//! ```text
//! cargo run --release --example beam_time_planner [target_errors]
//! ```

use sea_core::beam::{run_session, LANSCE_FLUX};
use sea_core::{analysis::report, Scale, Study, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let study = Study::default();
    let cfg = study.beam_config();

    let mut rows = Vec::new();
    let mut total_hours = 0.0;
    for w in Workload::ALL {
        let built = w.build(Scale::Default);
        let r = run_session(w.name(), &built, &cfg, 150)?;
        // Errors per beam-second at the accelerated flux.
        let errors = (r.counts.total() - r.counts.masked) as f64;
        let err_per_sec = errors / r.beam_seconds;
        let hours_needed = target / err_per_sec / 3600.0;
        total_hours += hours_needed;
        rows.push(vec![
            w.name().to_string(),
            format!("{:.1} ms", 1e3 * r.golden_cycles as f64 / 667e6),
            format!("{:.2e}", errors / r.fluence),
            format!("{:.2}", err_per_sec * 3600.0),
            format!("{:.1}", hours_needed),
        ]);
    }

    println!("LANSCE flux: {LANSCE_FLUX:.1e} n/cm^2/s; target: {target} errors/benchmark\n");
    println!(
        "{}",
        report::table(
            &[
                "benchmark",
                "exec time",
                "sigma (cm^2)",
                "errors/hour",
                "hours needed"
            ],
            &rows,
        )
    );
    println!("total effective beam time: {total_hours:.0} hours");
    println!("(the paper's campaign: ~260 effective hours for 2.9M NYC-years)");
    Ok(())
}

//! Submit a study to a running `fleet` daemon and ride it to completion.
//!
//! POSTs a study spec to the daemon's `/studies` endpoint, polls
//! `/studies/{id}` drawing one progress line per workload (plus a
//! sparkline of the active campaign's adjusted error margin), and when
//! the study lands downloads the deterministically merged journal —
//! byte-identical to a single-process run — next to the current
//! directory.
//!
//! ```text
//! cargo run --release -p sea-bench --bin fleet -- serve --workers 4 --serve 127.0.0.1:9818
//! cargo run --release --example submit_study -- 127.0.0.1:9818 \
//!     --spec-json '{"scale":"tiny","samples_per_component":40,"suite":["CRC32"]}'
//! ```
//!
//! With no `--spec`/`--spec-json`, a small demonstration study is
//! submitted. Resubmitting the same spec is idempotent: the canonical
//! spec hash *is* the study id, so you get the existing study's status.

use sea_core::trace::json::{self, Json};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const HISTORY: usize = 40;
const DEMO_SPEC: &str =
    r#"{"scale":"tiny","samples_per_component":24,"threads":1,"suite":["CRC32"]}"#;

/// One HTTP round-trip returning the raw body (journals are binary).
fn http(addr: &str, head: &str, body: &str) -> Result<Vec<u8>, std::io::Error> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        conn,
        "{head}\r\nHost: sea\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = Vec::new();
    conn.read_to_end(&mut response)?;
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header terminator"))?;
    let (header, payload) = response.split_at(split + 4);
    if !header.starts_with(b"HTTP/1.1 200") {
        let status = String::from_utf8_lossy(header);
        let message = String::from_utf8_lossy(payload);
        return Err(std::io::Error::other(format!(
            "{}: {}",
            status.lines().next().unwrap_or("bad response"),
            message.trim()
        )));
    }
    Ok(payload.to_vec())
}

fn get_json(addr: &str, path: &str) -> Result<Json, std::io::Error> {
    let body = http(addr, &format!("GET {path} HTTP/1.1"), "")?;
    json::parse(&String::from_utf8_lossy(&body))
        .map_err(|e| std::io::Error::other(format!("unparseable {path}: {e}")))
}

fn sparkline(history: &[f64]) -> String {
    history
        .iter()
        .map(|&m| SPARKS[((m.clamp(0.0, 1.0) * 7.0).round()) as usize])
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:9818".to_string();
    let mut spec: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut interval_ms = 500u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--spec" => {
                let path = &args[i + 1];
                spec = Some(std::fs::read_to_string(path).expect("readable --spec file"));
                i += 2;
            }
            "--spec-json" => {
                spec = Some(args[i + 1].clone());
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = args[i + 1].parse().expect("--interval-ms N");
                i += 2;
            }
            a if !a.starts_with('-') => {
                addr = a.to_string();
                i += 1;
            }
            other => panic!(
                "unknown flag `{other}` (usage: submit_study [ADDR] [--spec FILE | --spec-json JSON] [--out FILE] [--interval-ms N])"
            ),
        }
    }
    let spec = spec.unwrap_or_else(|| {
        println!("no spec given — submitting the demonstration study:\n  {DEMO_SPEC}\n");
        DEMO_SPEC.to_string()
    });

    // Submit. The daemon acks with the study id (idempotent on resubmit).
    let ack = match http(&addr, "POST /studies HTTP/1.1", spec.trim()) {
        Ok(b) => String::from_utf8_lossy(&b).into_owned(),
        Err(e) => {
            eprintln!("submit to {addr} failed: {e}");
            eprintln!("is a daemon running? start one with:");
            eprintln!("  cargo run --release -p sea-bench --bin fleet -- serve --workers 4 --serve {addr}");
            std::process::exit(1);
        }
    };
    let acked = json::parse(&ack).expect("parseable ack");
    let id = acked
        .get("id")
        .and_then(Json::as_str)
        .expect("ack carries the study id")
        .to_string();
    println!("study {id} accepted by http://{addr}/\n");

    // Poll to completion, one frame per poll: per-workload progress plus
    // the active campaign's adjusted-margin sparkline.
    let mut history: Vec<f64> = Vec::new();
    let mut drawn = 0usize;
    loop {
        let doc = match get_json(&addr, &format!("/studies/{id}")) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{addr}: {e} — retrying");
                std::thread::sleep(Duration::from_millis(interval_ms.max(250)));
                continue;
            }
        };
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
        let active = doc.get("active");
        if let Some(m) = active.and_then(|a| a.get("margin_adjusted").and_then(Json::as_f64)) {
            history.push(m);
            if history.len() > HISTORY {
                history.remove(0);
            }
        }
        if drawn > 0 {
            print!("\x1b[{drawn}A");
        }
        let margin_note = history
            .last()
            .map(|m| format!(", margin ±{:.2}% {}", 100.0 * m, sparkline(&history)))
            .unwrap_or_default();
        println!("\x1b[2Kstudy {id}: {state}{margin_note}");
        let mut lines = 1usize;
        if let Some(Json::Arr(rows)) = doc.get("suite") {
            for r in rows {
                let wl = r.get("workload").and_then(Json::as_str).unwrap_or("?");
                let done = r.get("done").and_then(Json::as_u64).unwrap_or(0);
                let total = r.get("total").and_then(Json::as_u64).unwrap_or(0);
                let merged = r.get("merged").and_then(Json::as_bool).unwrap_or(false);
                let mark = if merged { "merged ✓" } else { "" };
                println!("\x1b[2K  {wl:<12} {done:>6}/{total:<6} {mark}");
                lines += 1;
            }
        }
        drawn = lines;
        match state {
            "done" => break,
            "failed" => {
                eprintln!(
                    "\nstudy failed: {}",
                    doc.get("error").and_then(Json::as_str).unwrap_or("unknown")
                );
                std::process::exit(1);
            }
            _ => std::thread::sleep(Duration::from_millis(interval_ms)),
        }
    }

    // Download the deterministically merged journal. Single-workload
    // studies only — for suites the daemon names the merged directory.
    let dest = out.unwrap_or_else(|| PathBuf::from(format!("{id}.inject.seaj")));
    match http(&addr, &format!("GET /studies/{id}/journal HTTP/1.1"), "") {
        Ok(bytes) => {
            std::fs::write(&dest, &bytes).expect("writable --out path");
            println!(
                "\nmerged journal ({} bytes) -> {}",
                bytes.len(),
                dest.display()
            );
            println!(
                "inspect it with: cargo run --release -p sea-bench --bin journal -- export {}",
                dest.display()
            );
        }
        Err(e) => println!("\njournal not downloaded: {e}"),
    }
}

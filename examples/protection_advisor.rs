//! Protection advisor: which structure should get ECC first?
//!
//! The paper's closing argument is that bounded FIT estimates let
//! designers make protection decisions early. This tool quantifies that:
//! for a workload mix, it computes each component's contribution to the
//! total FIT rate and reports the FIT eliminated by protecting it
//! (ECC/parity modeled as fully correcting single-bit upsets in that
//! array).
//!
//! ```text
//! cargo run --release --example protection_advisor [samples]
//! ```

use sea_core::injection::run_campaign;
use sea_core::{analysis::report, Component, FaultClass, Scale, Study, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let study = Study {
        samples_per_component: samples,
        ..Study::default()
    };
    let cfg = study.injection_config();

    // The advisor weighs a mixed deployment: one control-heavy, one
    // data-heavy, one FP workload.
    let mix = [Workload::Dijkstra, Workload::RijndaelE, Workload::Fft];

    // Accumulate per-component FIT contributions over the mix.
    let mut contribution: Vec<(Component, f64, f64)> = Component::ALL
        .iter()
        .map(|&c| (c, 0.0, 0.0)) // (component, total FIT, SDC FIT)
        .collect();
    let mut total_fit = 0.0;
    for w in mix {
        eprintln!("profiling {w}...");
        let built = w.build(Scale::Default);
        let res = run_campaign(w.name(), &built, &cfg)?;
        for c in &res.per_component {
            let scale = study.fit_raw * c.bits as f64 / mix.len() as f64;
            let fit = scale * c.counts.avf();
            let sdc = scale * c.counts.rate(FaultClass::Sdc);
            let slot = contribution
                .iter_mut()
                .find(|(cc, _, _)| *cc == c.component)
                .unwrap();
            slot.1 += fit;
            slot.2 += sdc;
            total_fit += fit;
        }
    }

    contribution.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let rows: Vec<Vec<String>> = contribution
        .iter()
        .map(|(c, fit, sdc)| {
            vec![
                c.short_name().to_string(),
                format!("{fit:.2}"),
                format!("{sdc:.2}"),
                format!("{:.1}%", 100.0 * fit / total_fit),
                report::bar(*fit, contribution[0].1, 30),
            ]
        })
        .collect();

    println!("\nworkload mix: Dijkstra + Rijndael E + FFT (equal weights)\n");
    println!(
        "{}",
        report::table(
            &[
                "component",
                "FIT if unprotected",
                "SDC FIT",
                "share of total",
                ""
            ],
            &rows,
        )
    );
    println!("total unprotected FIT: {total_fit:.2}");
    println!(
        "recommendation: protect {} first — ECC there removes {:.1}% of the total rate",
        contribution[0].0.short_name(),
        100.0 * contribution[0].1 / total_fit
    );
    Ok(())
}

//! Quickstart: assess one benchmark with both methodologies and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sea_core::{FaultClass, Scale, Study, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small but real study: 60 injected faults per component and 200
    // sampled beam strikes for one benchmark. Scale the numbers up (the
    // paper uses 1,000 faults per component) for tighter error margins.
    let study = Study {
        scale: Scale::Default,
        samples_per_component: 60,
        beam_strikes: 200,
        ..Study::default()
    };

    let w = Workload::MatMul;
    println!("running fault-injection campaign + beam session for {w}...");
    let r = study.run_workload(w)?;

    println!("\n== fault injection (GeFIN-style) ==");
    for c in &r.campaign.per_component {
        println!(
            "  {:<5} AVF {:>5.1}%  (SDC {:>4.1}% / App {:>4.1}% / Sys {:>4.1}%)  ±{:.1}%",
            c.component.short_name(),
            100.0 * c.counts.avf(),
            100.0 * c.counts.rate(FaultClass::Sdc),
            100.0 * c.counts.rate(FaultClass::AppCrash),
            100.0 * c.counts.rate(FaultClass::SysCrash),
            100.0 * c.error_margin(),
        );
    }

    println!("\n== beam session ==");
    println!(
        "  {:.0} runs represented, {:.1} beam-seconds, {:.0} NYC-years of natural exposure",
        r.beam.runs_represented, r.beam.beam_seconds, r.beam.nyc_years
    );

    println!("\n== FIT comparison (failures per 10^9 device-hours) ==");
    println!("  class      fault-injection      beam        ratio");
    for class in [FaultClass::Sdc, FaultClass::AppCrash, FaultClass::SysCrash] {
        println!(
            "  {:<9}  {:>12.2}  {:>12.2}  {:>8}",
            class.to_string(),
            r.comparison.fi.class(class),
            r.comparison.beam.class(class),
            sea_core::analysis::report::ratio_label(r.comparison.ratio(class)),
        );
    }
    println!(
        "  {:<9}  {:>12.2}  {:>12.2}  {:>8}",
        "Total",
        r.comparison.fi.total(),
        r.comparison.beam.total(),
        sea_core::analysis::report::ratio_label(r.comparison.ratio_total()),
    );
    Ok(())
}

//! Disassembles a guest benchmark's text section with symbol annotations —
//! the debugging view used while porting the MiBench suite to AR32.
//!
//! ```text
//! cargo run --release --example disasm_workload -- MatMul
//! ```

use sea_core::isa::decode;
use sea_core::{Scale, Workload};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CRC32".to_string());
    let w = Workload::ALL
        .into_iter()
        .find(|w| {
            w.name().eq_ignore_ascii_case(&name)
                || w.name().replace(' ', "").eq_ignore_ascii_case(&name)
        })
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let built = w.build(Scale::Tiny);
    let img = &built.image;
    println!("{w} — entry {:#010x}", img.entry());
    for seg in img.segments() {
        if !seg.flags.execute {
            println!(
                "\n[{} segment at {:#010x}, {} bytes]",
                seg.flags, seg.vaddr, seg.mem_size
            );
            continue;
        }
        println!(
            "\n[text segment at {:#010x}, {} bytes]",
            seg.vaddr,
            seg.data.len()
        );
        for (i, word) in seg.data.chunks_exact(4).enumerate() {
            let addr = seg.vaddr + 4 * i as u32;
            if let Some((sym, 0)) = img.symbolize(addr) {
                println!("\n{sym}:");
            }
            let w32 = u32::from_le_bytes(word.try_into().unwrap());
            match decode(w32) {
                Ok(insn) => println!("  {addr:#010x}:  {w32:08x}  {insn}"),
                Err(_) => println!("  {addr:#010x}:  {w32:08x}  .word"),
            }
        }
    }
    println!(
        "\ntext {} bytes, data {} bytes",
        img.text_bytes(),
        img.data_bytes()
    );
}

//! Non-perturbation and early-stop guarantees of `sea-observe`.
//!
//! The observability server promises that watching a campaign never
//! changes it: with `--serve` on (and early-stop off) the outcome journal
//! is byte-identical to a serverless run, and with `--stop-at-margin` the
//! truncated journal is a clean byte-prefix of the full-sample run's.
//! These tests pin both invariants against real (tiny) campaigns and
//! exercise the HTTP surface end to end over a live socket.

use sea_core::{Scale, Study, Workload};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_observe_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

// Single-threaded: journal append order is completion order, so two runs
// of the same config write byte-identical journals (with more threads the
// *set* of entries matches but interleaving differs run to run).
fn study(journal: &Path) -> Study {
    Study {
        scale: Scale::Tiny,
        samples_per_component: 6,
        threads: 1,
        journal_dir: Some(journal.to_path_buf()),
        ..Study::default()
    }
}

/// Reads the single journal file a campaign wrote under `dir`.
fn journal_bytes(dir: &Path) -> Vec<u8> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(files.len(), 1, "one journal file expected: {files:?}");
    std::fs::read(files.pop().expect("file")).expect("journal bytes")
}

/// Minimal HTTP/1.1 GET against the embedded server; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: sea\r\n\r\n").expect("request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    body.to_string()
}

/// With the server on and early-stop off, the journal is byte-identical
/// to a serverless run — and the HTTP surface reports the finished
/// campaign correctly.
#[test]
fn served_campaign_journal_is_byte_identical_and_endpoints_answer() {
    let _guard = sea_core::trace::test_lock();
    let w = Workload::Crc32;
    let built = w.build(Scale::Tiny);

    let plain_dir = temp_dir("plain");
    let cfg = study(&plain_dir).injection_config_for(w);
    sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("plain campaign");

    let served_dir = temp_dir("served");
    let mut cfg = study(&served_dir).injection_config_for(w);
    cfg.serve = Some("127.0.0.1:0".to_string());
    let r = sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("served campaign");

    assert_eq!(
        journal_bytes(&plain_dir),
        journal_bytes(&served_dir),
        "serving a campaign must not change a single journal byte"
    );

    let addr = sea_core::observe::served_addr().expect("server bound");
    assert_eq!(http_get(addr, "/healthz"), "ok\n");

    let status = http_get(addr, "/status");
    let json = sea_core::trace::json::parse(&status).expect("status JSON");
    assert_eq!(
        json.get("state").and_then(|j| j.as_str()),
        Some("done"),
        "{status}"
    );
    assert_eq!(json.get("kind").and_then(|j| j.as_str()), Some("inject"));
    let total: u64 = r.per_component.iter().map(|c| c.counts.total()).sum();
    assert_eq!(json.get("done").and_then(|j| j.as_u64()), Some(total));
    let strata = status.matches("\"label\"").count();
    assert_eq!(strata, r.per_component.len(), "{status}");

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.contains("sea_campaign_runs_done"), "{metrics}");
    assert!(
        metrics.contains("sea_convergence_margin_adjusted_"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sea_supervisor_worker_respawns_total"),
        "{metrics}"
    );

    let tail = http_get(addr, "/journal/tail?lines=3");
    assert_eq!(tail.lines().count(), 3, "{tail}");
    assert!(tail.lines().all(|l| l.starts_with('{')), "{tail}");

    sea_core::observe::shutdown();
    sea_core::observe::publish_status(None);
    sea_core::observe::publish_metrics(None);
    sea_core::observe::publish_journal(None);
}

/// `--stop-at-margin` truncates the journal to a byte-prefix of the
/// full-sample run's, with every component's adjusted margin at or below
/// the threshold.
#[test]
fn early_stopped_journal_is_a_byte_prefix_within_margin() {
    let _guard = sea_core::trace::test_lock();
    let w = Workload::Crc32;
    let built = w.build(Scale::Tiny);
    let threshold = 0.35;

    let full_dir = temp_dir("full");
    let mut cfg = study(&full_dir).injection_config_for(w);
    cfg.samples_per_component = 30;
    sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("full campaign");

    let stopped_dir = temp_dir("stopped");
    let mut cfg = study(&stopped_dir).injection_config_for(w);
    cfg.samples_per_component = 30;
    cfg.stop_at_margin = Some(threshold);
    let r = sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("stopped campaign");

    let full = journal_bytes(&full_dir);
    let stopped = journal_bytes(&stopped_dir);
    assert!(
        stopped.len() < full.len(),
        "early stop did not trigger: {} vs {} bytes",
        stopped.len(),
        full.len()
    );
    assert!(
        full.starts_with(&stopped),
        "early-stopped journal is not a byte-prefix of the full run's"
    );
    for c in &r.per_component {
        assert!(
            c.error_margin() <= threshold + 1e-9,
            "{}: margin {} above stop threshold",
            c.component.short_name(),
            c.error_margin()
        );
        assert!(c.counts.total() > 0, "stratum never sampled");
    }

    // A resume without the stop knob completes the campaign: the prefix
    // journal is a valid restart point, not a corrupt artifact.
    let mut s = study(&stopped_dir);
    s.resume = true;
    let mut cfg = s.injection_config_for(w);
    cfg.samples_per_component = 30;
    let resumed = sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("resume");
    let total: u64 = resumed.per_component.iter().map(|c| c.counts.total()).sum();
    assert_eq!(total, 180, "resume must finish the remaining samples");
    assert!(resumed.supervision.resumed > 0);
}

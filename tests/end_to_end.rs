//! Workspace-level end-to-end test: the full study pipeline over a small
//! configuration, exercising every crate through the public facade.

use sea_core::{FaultClass, Scale, Study, Workload};

fn small_study() -> Study {
    Study {
        scale: Scale::Tiny,
        samples_per_component: 30,
        beam_strikes: 150,
        ..Study::default()
    }
}

#[test]
fn single_workload_study_produces_consistent_numbers() {
    let study = small_study();
    let r = study.run_workload(Workload::Qsort).unwrap();

    // Campaign structure.
    assert_eq!(r.campaign.per_component.len(), 6);
    assert_eq!(r.campaign.total_injections(), 30 * 6);

    // FIT rates are finite and non-negative.
    for class in [FaultClass::Sdc, FaultClass::AppCrash, FaultClass::SysCrash] {
        assert!(r.comparison.fi.class(class) >= 0.0);
        assert!(r.comparison.beam.class(class) >= 0.0);
        assert!(r.comparison.beam.class(class).is_finite());
    }

    // The beam sees the unmodeled platform: its System-Crash FIT must
    // exceed the injection prediction (the paper's Fig 8, universally).
    assert!(
        r.comparison.beam.sys_crash > r.comparison.fi.sys_crash,
        "beam SysCrash {} must exceed FI {}",
        r.comparison.beam.sys_crash,
        r.comparison.fi.sys_crash
    );
}

#[test]
fn suite_study_aggregates_an_overview() {
    let study = small_study();
    let res = study
        .run_suite(&[Workload::MatMul, Workload::StringSearch])
        .unwrap();
    assert_eq!(res.workloads.len(), 2);
    let o = &res.overview;
    // Adding crash classes must not lower either estimate.
    assert!(o.beam_total >= o.beam_sdc_app && o.beam_sdc_app >= o.beam_sdc);
    assert!(o.fi_total >= o.fi_sdc_app && o.fi_sdc_app >= o.fi_sdc);
    // And the beam total must dominate the FI total (Fig 10's shape).
    assert!(o.total_ratio() > 1.0, "total ratio {}", o.total_ratio());
}

#[test]
fn fit_raw_measurement_is_in_the_papers_range() {
    let study = small_study();
    let r = study.measure_fit_raw(40);
    assert!(r.detected_upsets > 0, "the probe must catch some upsets");
    assert!(
        (0.5e-5..12e-5).contains(&r.fit_raw_measured),
        "FIT_raw {} outside plausible band",
        r.fit_raw_measured
    );
}

#[test]
fn setup_rows_render() {
    let rows = sea_core::setup_rows(&sea_core::MachineConfig::cortex_a9());
    assert_eq!(rows.len(), 6);
    assert!(rows.iter().any(|r| r.beam.contains("Zynq")));
}

#[test]
fn studies_are_reproducible_for_a_fixed_seed() {
    let study = small_study();
    let a = study.run_workload(Workload::StringSearch).unwrap();
    let b = study.run_workload(Workload::StringSearch).unwrap();
    assert_eq!(a.comparison.fi.total(), b.comparison.fi.total());
    assert_eq!(a.comparison.beam.total(), b.comparison.beam.total());
    assert_eq!(a.beam.counts, b.beam.counts);
}

#[test]
fn suite_overview_equals_manual_aggregation() {
    let study = small_study();
    let res = study
        .run_suite(&[Workload::Dijkstra, Workload::SusanS])
        .unwrap();
    let manual = sea_core::Overview::from_comparisons(&res.comparisons());
    assert_eq!(res.overview.beam_total, manual.beam_total);
    assert_eq!(res.overview.fi_sdc, manual.fi_sdc);
}

#[test]
fn field_test_math_contextualizes_the_fit_rates() {
    // Close the Fig 1 triangle: given a measured beam FIT, how impractical
    // is a field test? (paper §II-B)
    use sea_core::analysis::field::{devices_needed, FieldTest};
    let study = small_study();
    let r = study.run_workload(Workload::MatMul).unwrap();
    let fit = r.comparison.beam.total().max(1.0);
    let devices = devices_needed(fit, 100.0, 1.0);
    assert!(
        devices > 1_000.0,
        "a field test needs a large fleet, got {devices:.0}"
    );
    let plan = FieldTest {
        devices,
        years: 1.0,
    };
    assert!((plan.expected_failures(fit) - 100.0).abs() < 1e-6);
}

//! Cross-validation of the paper's headline findings at reduced scale:
//! the *shape* of the beam-vs-injection comparison must reproduce even
//! with small campaigns.

use sea_core::beam::measure_kernel_residency;
use sea_core::{Scale, Study, Workload};

#[test]
fn beam_syscrash_dominates_fi_for_small_footprint_workloads() {
    // §V-A/§VI: small-input benchmarks (here Susan C) have the largest
    // beam System-Crash excess because the kernel stays cache-resident.
    let study = Study {
        scale: Scale::Default,
        samples_per_component: 25,
        beam_strikes: 250,
        ..Study::default()
    };
    let r = study.run_workload(Workload::SusanC).unwrap();
    let ratio = r.comparison.ratio(sea_core::FaultClass::SysCrash);
    assert!(
        ratio > 2.0 || ratio.is_infinite(),
        "small-footprint SysCrash ratio should be strongly positive, got {ratio}"
    );
}

#[test]
fn kernel_residency_orders_with_footprint() {
    // The measured mechanism behind Fig 8: bigger working sets evict more
    // kernel state from the cache hierarchy.
    let study = Study::default();
    let cfg = study.beam_config();
    let small = Workload::SusanC.build(Scale::Default);
    let mid = Workload::Fft.build(Scale::Default);
    let large = Workload::Crc32.build(Scale::Default);
    let fs = measure_kernel_residency(&small, &cfg).unwrap();
    let fm = measure_kernel_residency(&mid, &cfg).unwrap();
    let fl = measure_kernel_residency(&large, &cfg).unwrap();
    assert!(fs > fl, "SusanC {fs:.3} should exceed CRC32 {fl:.3}");
    assert!(fs > 0.0 && fl < 1.0);
    // The mid-size workload should not break the ordering badly.
    assert!(fm <= fs + 0.1);
}

#[test]
fn sdc_estimates_agree_within_an_order_of_magnitude() {
    // Fig 6: for most benchmarks the two methodologies' SDC FIT rates are
    // close; here a single mid-size benchmark must stay within 10×.
    let study = Study {
        scale: Scale::Default,
        samples_per_component: 60,
        beam_strikes: 400,
        ..Study::default()
    };
    let r = study.run_workload(Workload::Qsort).unwrap();
    let (beam, fi) = (r.comparison.beam.sdc, r.comparison.fi.sdc);
    assert!(
        beam > 0.0 && fi > 0.0,
        "both setups must observe SDCs for Qsort"
    );
    let ratio = (beam / fi).max(fi / beam);
    assert!(
        ratio < 10.0,
        "SDC estimates diverge {ratio:.1}x (beam {beam:.2}, fi {fi:.2})"
    );
}

#[test]
fn tlb_physical_target_dominates_tag_vulnerability() {
    // §V-B: TLB faults matter through the physical page (target), while
    // virtual-tag corruption mostly causes harmless re-walks.
    let study = Study {
        scale: Scale::Default,
        samples_per_component: 200,
        beam_strikes: 10,
        ..Study::default()
    };
    let cfg = study.injection_config();
    let built = Workload::Dijkstra.build(Scale::Default);
    let res = sea_core::injection::run_campaign("Dijkstra", &built, &cfg).unwrap();
    let dtlb = res.component(sea_core::Component::DTlb);
    let tag_avf = dtlb.tag_counts.avf();
    let tag_total = dtlb.tag_counts.total();
    // With enough tag samples, their AVF must be clearly below the
    // data-region AVF.
    if tag_total >= 20 {
        let data_counts_total = dtlb.counts.total() - tag_total;
        let data_non_masked =
            (dtlb.counts.total() - dtlb.counts.masked) - (tag_total - dtlb.tag_counts.masked);
        let data_avf = data_non_masked as f64 / data_counts_total.max(1) as f64;
        assert!(
            tag_avf <= data_avf,
            "tag AVF {tag_avf:.3} should not exceed data-region AVF {data_avf:.3}"
        );
    }
}

//! Zero-overhead and pure-observer guarantees of `sea-profile`.
//!
//! The profiling subsystem promises that campaign machines never pay for
//! it: with profiling off (the default), the hot simulation path takes
//! one relaxed atomic load and allocates nothing, and attaching the
//! profilers to a dedicated golden run changes no architectural result.
//! These tests pin all three properties with a counting global allocator
//! and a side-by-side golden run.

use sea_core::kernel::KernelConfig;
use sea_core::platform::{boot, golden_run, profiled_golden_run};
use sea_core::{MachineConfig, Scale, Study, Workload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Thread-local counting allocator: measures only the measuring thread, so
// the cargo test harness running other tests concurrently cannot pollute
// the window.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn machine() -> MachineConfig {
    MachineConfig::cortex_a9_scaled()
}

/// With profiling off, steady-state stepping performs zero heap
/// allocations: the profiler hooks are `Option::None` checks behind one
/// relaxed atomic, and everything else in the simulator is preallocated.
#[test]
fn disabled_profiling_path_never_allocates() {
    assert!(!sea_core::profile::enabled());
    let built = Workload::Crc32.build(Scale::Tiny);
    let (mut sys, _boot) = boot(machine(), &built.image, &KernelConfig::default()).expect("boot");
    // Warm up: first touches of pages, cache fills, and the output
    // buffer's geometric growth all allocate; steady state must not.
    for _ in 0..60_000 {
        sys.step();
    }
    let before = thread_allocs();
    for _ in 0..10_000 {
        sys.step();
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "profiling-disabled stepping must not allocate ({delta} allocations in 10k steps)"
    );
}

/// Attaching the profilers changes no architectural result: same exit
/// code, same output, same cycle and instruction counts.
#[test]
fn profiled_golden_run_is_a_pure_observer() {
    let built = Workload::Crc32.build(Scale::Tiny);
    let kernel = KernelConfig::default();
    let budget = 500_000_000;
    let plain = golden_run(machine(), &built.image, &kernel, budget).expect("plain golden");
    let (profiled, profile) =
        profiled_golden_run(machine(), &built.image, &kernel, budget).expect("profiled golden");
    assert_eq!(plain.cycles, profiled.cycles);
    assert_eq!(plain.instructions, profiled.instructions);
    assert_eq!(plain.output, profiled.output);
    assert_eq!(plain.exit_code, profiled.exit_code);
    // And the profile actually observed the run.
    assert_eq!(profile.total_cycles, plain.cycles);
    assert!(!profile.pc.entries.is_empty());
    assert_eq!(profile.structures.len(), 6);
    for s in &profile.structures {
        let avf = s.predicted_avf();
        assert!(
            (0.0..=1.0).contains(&avf),
            "{}: AVF {avf} out of range",
            s.name
        );
    }
    // The caches saw traffic; the ACE prediction is non-trivial somewhere.
    assert!(profile.structures.iter().any(|s| s.predicted_avf() > 0.0));
}

/// The predicted-vs-measured table renders for a real (tiny) campaign:
/// predicted AVF from the profiled golden run next to the measured AVF of
/// an actual injection campaign.
#[test]
fn predicted_vs_measured_avf_table_renders() {
    let study = Study {
        scale: Scale::Tiny,
        samples_per_component: 6,
        threads: 2,
        profile_out: Some(std::path::PathBuf::from("unused.txt")),
        ..Study::default()
    };
    let w = Workload::Crc32;
    let built = w.build(study.scale);
    let cfg = study.injection_config_for(w);
    let campaign =
        sea_core::injection::run_campaign(w.name(), &built, &cfg).expect("tiny campaign");
    let profile = study.profile_workload(w).expect("profile");
    let table = sea_core::analysis::profile::render_avf_table(&profile, Some(&campaign));
    // All six structures with both columns populated.
    for name in ["RF", "L1I$", "L1D$", "L2$", "ITLB", "DTLB"] {
        assert!(table.contains(name), "{table}");
    }
    assert!(table.contains('x') || table.contains("inf"), "{table}");
    let report = sea_core::analysis::profile::render_profile(w.name(), &profile, Some(&campaign));
    assert!(report.contains("hot PCs"), "{report}");
    assert!(report.contains("structure traffic"), "{report}");
}

//! Criterion microbenchmarks over the simulator kernels that every table
//! and figure depends on: functional vs detailed execution throughput
//! (Table I's mechanism), the cost of one injected run (campaign budget),
//! cache/TLB primitives, and instruction encode/decode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use sea_core::injection::{run_one, CampaignConfig, InjectionSpec};
use sea_core::isa::{decode, encode, Asm, Cond, Insn, Reg};
use sea_core::kernel::KernelConfig;
use sea_core::microarch::{
    Cache, CacheConfig, Component, MachineConfig, NullDevice, Probe, StepOutcome, System, Tlb,
    TlbEntry,
};
use sea_core::platform::{golden_run, RunLimits};
use sea_core::workloads::{Scale, Workload};

/// A small bare-metal machine running a tight loop, for step-rate
/// measurements.
fn looping_system(cfg: MachineConfig) -> System<NullDevice> {
    use sea_core::isa::MemSize;
    use sea_core::microarch::{l1_entry, pte, PTE_EXEC, PTE_WRITE};
    let mut sys = System::new(cfg, NullDevice);
    for mib in 0..4u32 {
        let l2 = 0x8000 + mib * 0x400;
        sys.mem
            .phys
            .write(0x4000 + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
            );
        }
    }
    sys.cpu.ttbr = 0x4000;
    let mut a = Asm::new();
    let e = a.label("e");
    let lp = a.label("lp");
    a.bind(e).unwrap();
    a.mov32(Reg::R1, u32::MAX);
    a.mov32(Reg::R3, 0x0030_0000);
    a.bind(lp).unwrap();
    a.and_imm(Reg::R2, Reg::R1, 0xFF0);
    a.ldr_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.str_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

fn bench_step_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_throughput");
    g.throughput(Throughput::Elements(10_000));
    for (name, cfg) in [
        ("detailed", MachineConfig::cortex_a9()),
        ("atomic", MachineConfig::cortex_a9().atomic()),
    ] {
        let mut sys = looping_system(cfg);
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..10_000 {
                    if sys.step() != StepOutcome::Executed {
                        unreachable!("loop never terminates");
                    }
                }
            })
        });
    }
    g.finish();
}

fn bench_injected_run(c: &mut Criterion) {
    let built = Workload::MatMul.build(Scale::Tiny);
    let cfg = CampaignConfig {
        samples_per_component: 0,
        components: vec![],
        threads: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(
        cfg.machine,
        &built.image,
        &KernelConfig::default(),
        100_000_000,
    )
    .unwrap();
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);
    c.bench_function("campaign_single_injected_run", |b| {
        b.iter(|| {
            run_one(
                &built,
                &cfg,
                None,
                InjectionSpec {
                    component: Component::L1D,
                    bit: 12345,
                    cycle: golden.cycles / 2,
                },
                limits,
            )
        })
    });
}

fn bench_cache_ops(c: &mut Criterion) {
    let cfg = CacheConfig {
        size_bytes: 32 * 1024,
        ways: 4,
        line_bytes: 32,
    };
    c.bench_function("cache_probe_hit", |b| {
        let mut cache = Cache::new(cfg, true);
        let (idx, _) = cache.evict_for(0x1000);
        cache.fill(idx, 0x1000, &[0u8; 32], false);
        b.iter(|| cache.probe(0x1000))
    });
    c.bench_function("cache_miss_evict_fill", |b| {
        b.iter_batched(
            || Cache::new(cfg, true),
            |mut cache| {
                for i in 0..64u32 {
                    if let Probe::Miss = cache.probe(i * 0x2000) {
                        let (idx, _) = cache.evict_for(i * 0x2000);
                        cache.fill(idx, i * 0x2000, &[0u8; 32], true);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tlb_ops(c: &mut Criterion) {
    c.bench_function("tlb_lookup_hit", |b| {
        let mut tlb = Tlb::new(64);
        for i in 0..64 {
            tlb.insert(TlbEntry::new(i, i, true, true, false));
        }
        b.iter(|| tlb.lookup(32))
    });
}

fn bench_encode_decode(c: &mut Criterion) {
    let insn = Insn::Dp {
        cond: Cond::Al,
        op: sea_core::isa::DpOp::Add,
        s: true,
        rd: Reg::R0,
        rn: Reg::R1,
        op2: sea_core::isa::Operand2::encode_imm(42).unwrap(),
    };
    let word = encode(&insn);
    c.bench_function("isa_encode", |b| b.iter(|| encode(&insn)));
    c.bench_function("isa_decode", |b| b.iter(|| decode(word).unwrap()));
}

criterion_group!(
    benches,
    bench_step_rate,
    bench_injected_run,
    bench_cache_ops,
    bench_tlb_ops,
    bench_encode_decode
);
criterion_main!(benches);

//! Criterion benchmarks over full guest executions: the per-benchmark
//! simulation cost that determines campaign wall-clock (the budget behind
//! Table IV's sample-size choices).

use criterion::{criterion_group, criterion_main, Criterion};

use sea_core::kernel::KernelConfig;
use sea_core::platform::golden_run;
use sea_core::workloads::{Scale, Workload};
use sea_core::MachineConfig;

fn bench_golden_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_run_tiny");
    g.sample_size(10);
    for w in [
        Workload::MatMul,
        Workload::Dijkstra,
        Workload::StringSearch,
        Workload::Crc32,
        Workload::JpegC,
    ] {
        let built = w.build(Scale::Tiny);
        g.bench_function(w.name().replace(' ', "_"), |b| {
            b.iter(|| {
                golden_run(
                    MachineConfig::cortex_a9_scaled(),
                    &built.image,
                    &KernelConfig::default(),
                    200_000_000,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_workload_build(c: &mut Criterion) {
    // Image assembly cost (the "compiler" side of the harness).
    c.bench_function("build_rijndael_image", |b| {
        b.iter(|| Workload::RijndaelE.build(Scale::Tiny))
    });
    c.bench_function("build_jpeg_image", |b| {
        b.iter(|| Workload::JpegC.build(Scale::Tiny))
    });
}

criterion_group!(benches, bench_golden_runs, bench_workload_build);
criterion_main!(benches);

//! Criterion microbenchmarks for the sea-snapshot checkpoint/restore
//! engine: the cost of one injected run from reset vs. from the nearest
//! golden-run checkpoint (the campaign hot path), and the raw
//! capture/restore primitives.

use criterion::{criterion_group, criterion_main, Criterion};

use sea_core::injection::{run_one, CampaignConfig, InjectionSpec};
use sea_core::microarch::Component;
use sea_core::platform::{golden_run_with_checkpoints, Checkpoint, RunLimits};
use sea_core::workloads::{Scale, Workload};

/// One injected run, late in the golden run (75% in — past the median of
/// a uniform campaign), booted from reset vs. restored from the nearest
/// epoch checkpoint. The gap between these two is the campaign speedup.
fn bench_injected_run_paths(c: &mut Criterion) {
    let built = Workload::Crc32.build(Scale::Tiny);
    let cfg = CampaignConfig {
        samples_per_component: 0,
        components: vec![],
        threads: 1,
        ..CampaignConfig::default()
    };
    let (golden, ckpts) = golden_run_with_checkpoints(
        cfg.machine,
        &built.image,
        &cfg.kernel,
        cfg.golden_budget_cycles,
        0,
    )
    .unwrap();
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);
    let spec = InjectionSpec {
        component: Component::L1D,
        bit: 12345,
        cycle: golden.cycles * 3 / 4,
    };
    c.bench_function("injected_run_from_reset", |b| {
        b.iter(|| run_one(&built, &cfg, None, spec, limits))
    });
    c.bench_function("injected_run_from_checkpoint", |b| {
        b.iter(|| run_one(&built, &cfg, Some(&ckpts), spec, limits))
    });
}

/// The raw snapshot primitives on a mid-run machine: COW capture,
/// restore (clone), and the versioned byte encoding.
fn bench_snapshot_primitives(c: &mut Criterion) {
    let built = Workload::Crc32.build(Scale::Tiny);
    let cfg = CampaignConfig::default();
    let (golden, ckpts) = golden_run_with_checkpoints(
        cfg.machine,
        &built.image,
        &cfg.kernel,
        cfg.golden_budget_cycles,
        0,
    )
    .unwrap();
    let sys = ckpts
        .restore_at(golden.cycles / 2)
        .expect("mid-run checkpoint");
    c.bench_function("checkpoint_capture", |b| {
        b.iter(|| Checkpoint::capture(&sys))
    });
    let ck = Checkpoint::capture(&sys);
    c.bench_function("checkpoint_restore", |b| b.iter(|| ck.restore()));
    c.bench_function("checkpoint_encode", |b| b.iter(|| ck.encode(1, 2)));
}

criterion_group!(benches, bench_injected_run_paths, bench_snapshot_primitives);
criterion_main!(benches);

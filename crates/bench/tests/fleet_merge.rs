//! The fleet merge contract, end to end over real processes: a campaign
//! sharded across worker *processes* by the `fleet` daemon must merge to
//! a journal byte-identical to a single-process `--threads 1` run of the
//! same spec — including when a worker is SIGKILLed mid-campaign (its
//! blocks are stolen and the byte-identical duplicate records are
//! deduplicated), and across a daemon kill + restart (the new daemon
//! resumes off the shard journals without re-running completed work).
//!
//! The CI `fleet-smoke` job exercises the same flow from bash against
//! the HTTP surface; this in-tree version is the deterministic offline
//! peer.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SUITE: &str = "CRC32";
const SLUG: &str = "crc32";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_fleet_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_json(samples: u32) -> String {
    format!(
        r#"{{"scale":"tiny","samples_per_component":{samples},"threads":1,"suite":["{SUITE}"]}}"#
    )
}

/// The single-process reference journal: the same spec through the
/// ordinary `table4` campaign path with `--threads 1`.
fn reference_journal(dir: &Path, samples: u32) -> Vec<u8> {
    let status = Command::new(env!("CARGO_BIN_EXE_table4"))
        .args(["--tiny", "--threads", "1", "--suite", SLUG, "--samples"])
        .arg(samples.to_string())
        .arg("--journal")
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "reference campaign failed");
    std::fs::read(dir.join(format!("{SLUG}.inject.seaj"))).unwrap()
}

struct Fleet {
    daemon: Child,
    worker_addr: String,
    http_addr: String,
}

impl Fleet {
    /// Start a daemon with `workers` self-spawned worker processes and
    /// scrape its bound addresses off stdout.
    fn start(root: &Path, workers: u32) -> Fleet {
        let mut daemon = Command::new(env!("CARGO_BIN_EXE_fleet"))
            .arg("serve")
            .arg("--root")
            .arg(root)
            .args(["--workers", &workers.to_string(), "--watchdog-ms", "60000"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut lines = BufReader::new(daemon.stdout.take().unwrap()).lines();
        let worker_line = lines.next().unwrap().unwrap();
        let http_line = lines.next().unwrap().unwrap();
        let worker_addr = worker_line
            .strip_prefix("fleet worker socket ")
            .unwrap_or_else(|| panic!("unexpected daemon output: {worker_line}"))
            .to_string();
        let http_addr = http_line
            .strip_prefix("fleet http http://")
            .and_then(|s| s.strip_suffix('/'))
            .unwrap_or_else(|| panic!("unexpected daemon output: {http_line}"))
            .to_string();
        Fleet {
            daemon,
            worker_addr,
            http_addr,
        }
    }

    /// Submit a spec and return the study id (without waiting).
    fn submit(&self, spec: &str) -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_fleet"))
            .args(["submit", "--to", &self.http_addr, "--spec-json", spec])
            .stderr(Stdio::null())
            .output()
            .unwrap();
        assert!(out.status.success(), "submit failed: {out:?}");
        let ack = String::from_utf8(out.stdout).unwrap();
        let id = ack
            .split("\"id\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or_else(|| panic!("no id in ack: {ack}"))
            .to_string();
        assert_eq!(id.len(), 16, "{ack}");
        id
    }

    /// Block until the study reports done (panics on failed/timeout).
    fn wait_done(&self, id: &str, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            assert!(Instant::now() < deadline, "study {id} timed out");
            if let Ok(doc) = http_get(&self.http_addr, &format!("/studies/{id}")) {
                let doc = String::from_utf8_lossy(&doc);
                if doc.contains("\"state\":\"done\"") {
                    return;
                }
                assert!(!doc.contains("\"state\":\"failed\""), "study failed: {doc}");
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn spawn_worker(&self) -> Child {
        Command::new(env!("CARGO_BIN_EXE_fleet"))
            .args(["worker", "--connect", &self.worker_addr])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let _ = self.daemon.kill();
        let _ = self.daemon.wait();
    }
}

/// Minimal HTTP GET returning the raw body bytes (journals are binary).
fn http_get(addr: &str, path: &str) -> Result<Vec<u8>, std::io::Error> {
    let mut conn = std::net::TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: sea\r\n\r\n")?;
    let mut response = Vec::new();
    conn.read_to_end(&mut response)?;
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header terminator"))?;
    if !response.starts_with(b"HTTP/1.1 200") {
        return Err(std::io::Error::other("non-200"));
    }
    Ok(response[split + 4..].to_vec())
}

fn export(journal: &Path) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_journal"))
        .arg("export")
        .arg(journal)
        .output()
        .unwrap();
    assert!(out.status.success(), "journal export failed: {out:?}");
    out.stdout
}

fn shard_dirs(study_dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(study_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

#[test]
fn sharded_fleet_merge_is_byte_identical_to_single_process() {
    let root = scratch("merge");
    let reference = reference_journal(&root.join("ref"), 6);

    let fleet = Fleet::start(&root.join("fleet"), 3);
    let id = fleet.submit(&spec_json(6));
    fleet.wait_done(&id, Duration::from_secs(120));

    let study_dir = root.join("fleet").join(&id);
    let merged_path = study_dir.join("merged").join(format!("{SLUG}.inject.seaj"));
    let merged = std::fs::read(&merged_path).unwrap();
    assert_eq!(
        merged, reference,
        "merged journal != single-process journal"
    );
    assert_eq!(
        export(&merged_path),
        export(&root.join("ref").join(format!("{SLUG}.inject.seaj"))),
        "lossless export diverged"
    );
    assert!(
        shard_dirs(&study_dir).len() >= 2,
        "campaign was not sharded across >=2 worker processes"
    );
    // The merged journal is also what /studies/{id}/journal serves.
    let downloaded = http_get(&fleet.http_addr, &format!("/studies/{id}/journal")).unwrap();
    assert_eq!(downloaded, merged, "HTTP download diverged");

    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killing_a_worker_mid_campaign_still_merges_byte_identical() {
    let root = scratch("kill");
    let reference = reference_journal(&root.join("ref"), 10);

    // No self-spawned workers: the test owns both worker processes so it
    // can SIGKILL one deterministically.
    let fleet = Fleet::start(&root.join("fleet"), 0);
    let id = fleet.submit(&spec_json(10));
    let mut victim = fleet.spawn_worker();
    let survivor = fleet.spawn_worker();

    // Kill the victim as soon as any shard journal holds a record, i.e.
    // genuinely mid-campaign (falls back to an immediate kill if the study
    // somehow finishes first — the merge contract must hold either way).
    let study_dir = root.join("fleet").join(&id);
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        let journaled = shard_dirs(&study_dir)
            .iter()
            .any(|d| d.join(format!("{SLUG}.inject.seaj")).exists());
        if journaled {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().unwrap();
    let _ = victim.wait();

    fleet.wait_done(&id, Duration::from_secs(120));
    let mut survivor = survivor;
    let _ = survivor.wait();

    let merged_path = study_dir.join("merged").join(format!("{SLUG}.inject.seaj"));
    let merged = std::fs::read(&merged_path).unwrap();
    assert_eq!(
        merged, reference,
        "merged journal != single-process journal after worker kill"
    );

    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daemon_restart_resumes_without_rerunning_completed_blocks() {
    let root = scratch("restart");
    let reference = reference_journal(&root.join("ref"), 10);

    let fleet_root = root.join("fleet");
    let id;
    {
        let fleet = Fleet::start(&fleet_root, 0);
        id = fleet.submit(&spec_json(10));
        let mut worker = fleet.spawn_worker();
        // Let the worker journal some — but not all — of the campaign.
        let study_dir = fleet_root.join(&id);
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            let some_done = shard_dirs(&study_dir)
                .iter()
                .map(|d| sea_fleet::scan_done(&d.join(format!("{SLUG}.inject.seaj"))).len())
                .sum::<usize>()
                > 0;
            if some_done {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        worker.kill().unwrap();
        let _ = worker.wait();
        // Daemon dies too (SIGKILL via Drop) — half-finished study on disk.
    }
    let study_dir = fleet_root.join(&id);
    let done_before: Vec<u64> = shard_dirs(&study_dir)
        .iter()
        .flat_map(|d| sea_fleet::scan_done(&d.join(format!("{SLUG}.inject.seaj"))))
        .collect();
    assert!(
        !study_dir
            .join("merged")
            .join(format!("{SLUG}.inject.seaj"))
            .exists(),
        "study completed before the restart could interrupt it; raise samples"
    );

    // Restart: a fresh daemon over the same root recovers the study and
    // resumes; a fresh worker finishes only the outstanding work.
    let fleet = Fleet::start(&fleet_root, 0);
    let resubmit = fleet.submit(&spec_json(10));
    assert_eq!(resubmit, id, "study identity is the canonical spec hash");
    let worker = fleet.spawn_worker();
    fleet.wait_done(&id, Duration::from_secs(120));
    let mut worker = worker;
    let _ = worker.wait();

    let merged_path = study_dir.join("merged").join(format!("{SLUG}.inject.seaj"));
    assert_eq!(
        std::fs::read(&merged_path).unwrap(),
        reference,
        "merged journal != single-process journal after daemon restart"
    );
    // Nothing journaled before the restart was re-executed: each of those
    // indices appears exactly once across all shard journals.
    let mut counts = std::collections::HashMap::new();
    for d in shard_dirs(&study_dir) {
        for i in sea_fleet::scan_done(&d.join(format!("{SLUG}.inject.seaj"))) {
            *counts.entry(i).or_insert(0u32) += 1;
        }
    }
    for i in &done_before {
        assert_eq!(
            counts.get(i),
            Some(&1),
            "index {i} was re-executed after the restart"
        );
    }

    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
}

//! End-to-end `--trace-out` acceptance: the fig4 binary must produce a
//! valid JSON-Lines stream containing fault-provenance records, and the
//! trace summary must render from it.

use sea_core::analysis::TraceSummary;
use sea_core::trace::json::{self, Json};

#[test]
fn fig4_trace_out_is_valid_jsonl_with_provenance() {
    let path = std::env::temp_dir().join(format!("sea_fig4_trace_{}.jsonl", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_fig4"))
        .args([
            "--samples",
            "3",
            "--tiny",
            "--suite",
            "crc32",
            "--threads",
            "2",
        ])
        .arg("--trace-out")
        .arg(&path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn fig4");
    assert!(status.success(), "fig4 exited with {status}");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);

    // Every line is one parseable JSON object with the envelope keys.
    let mut provenance = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        lines += 1;
        let ev = json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e:?}"));
        let name = ev.get("ev").and_then(Json::as_str).expect("ev key");
        assert!(ev.get("sub").and_then(Json::as_str).is_some(), "{line}");
        assert!(ev.get("level").and_then(Json::as_str).is_some(), "{line}");
        if name == "injection.provenance" {
            provenance += 1;
            // Activation status and flip→terminal latency are mandatory.
            ev.get("activated")
                .and_then(Json::as_bool)
                .expect("activated");
            ev.get("act_cycles")
                .and_then(Json::as_u64)
                .expect("act_cycles");
            ev.get("total_cycles")
                .and_then(Json::as_u64)
                .expect("total_cycles");
            ev.get("component")
                .and_then(Json::as_str)
                .expect("component");
            ev.get("class").and_then(Json::as_str).expect("class");
        }
    }
    // 3 samples × 6 components: every injection leaves a provenance record.
    assert_eq!(provenance, 18, "of {lines} lines");

    // The summary renderer reconstructs per-component views from the file.
    let summary = TraceSummary::from_jsonl(&text);
    assert_eq!(summary.malformed, 0);
    assert_eq!(summary.events, lines);
    let rendered = summary.render();
    assert!(
        rendered.contains("activation rate per component"),
        "{rendered}"
    );
    assert!(rendered.contains("flip→read cycles"), "{rendered}");
    assert!(rendered.contains("flip→terminal cycles"), "{rendered}");
}

//! Kill-torture: SIGKILL a real journaled campaign child process at
//! arbitrary points, resume it, and require the final journals to be
//! byte-identical to an uninterrupted run's. This is the crash-consistency
//! contract of the `.seaj` format end to end — process death mid-append
//! must never cost more than the torn record the resume truncates.
//!
//! The CI `crash-torture` job runs the same loop from bash with more
//! cycles and truly random kill points; this in-tree version keeps a
//! deterministic spread of kill delays so it is reproducible offline.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_torture_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fig4(journal: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_fig4"));
    c.args([
        "--tiny",
        "--samples",
        "8",
        "--strikes",
        "6",
        "--suite",
        "crc32",
    ])
    .arg("--journal")
    .arg(journal)
    .arg("--resume")
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    c
}

fn export(journal: &Path) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_journal"))
        .arg("export")
        .arg(journal)
        .output()
        .unwrap();
    assert!(out.status.success(), "journal export failed: {out:?}");
    out.stdout
}

#[test]
fn sigkilled_campaigns_resume_to_the_uninterrupted_journal() {
    let reference = scratch("reference");
    let tortured = scratch("tortured");

    // Uninterrupted reference run.
    let status = fig4(&reference).status().unwrap();
    assert!(status.success(), "reference run failed");

    // Torture: spawn the same campaign against its own journal dir and
    // SIGKILL it after increasing delays, then resume with a fresh child.
    // Early kills land before the journal header; late ones mid-stream.
    for delay_ms in [40u64, 120, 250, 500] {
        let mut child = fig4(&tortured).spawn().unwrap();
        std::thread::sleep(Duration::from_millis(delay_ms));
        // Still running: kill it mid-campaign. `kill` is SIGKILL on Unix,
        // so no atexit/Drop flushing softens the crash. A child that
        // finished before the delay elapsed degenerates this cycle to an
        // uninterrupted run, which must also resume cleanly.
        if child.try_wait().unwrap().is_none() {
            child.kill().unwrap();
            let _ = child.wait();
        }
    }

    // Final uninterrupted pass completes whatever survived the kills.
    let status = fig4(&tortured).status().unwrap();
    assert!(status.success(), "post-torture resume failed");

    // The contract: every journal the tortured directory ends up with is
    // export-identical to the uninterrupted reference.
    let mut journals: Vec<_> = std::fs::read_dir(&reference)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .collect();
    journals.sort();
    assert!(!journals.is_empty(), "reference run journaled nothing");
    for name in &journals {
        let a = export(&reference.join(name));
        let b = export(&tortured.join(name));
        assert!(!a.is_empty());
        assert_eq!(
            a,
            b,
            "journal {} diverged after kill-torture",
            name.to_string_lossy()
        );
        // Stronger still: the resumed container itself is byte-identical,
        // torn tail truncated and sequence numbers continued in place.
        assert_eq!(
            std::fs::read(reference.join(name)).unwrap(),
            std::fs::read(tortured.join(name)).unwrap(),
            "raw container {} diverged after kill-torture",
            name.to_string_lossy()
        );
    }

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&tortured);
}

//! # sea-bench — regeneration harness for every table and figure
//!
//! One binary per artifact of the paper's evaluation:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | Table I — simulation throughput per abstraction layer |
//! | `table2` | Table II — setup attributes |
//! | `table3` | Table III — benchmark inputs and characteristics |
//! | `table4` | Table IV — per-component statistical error margins |
//! | `fig3` | Fig 3 — beam FIT rates per benchmark |
//! | `fig4` | Fig 4 — fault-injection effect classification |
//! | `fig5` | Fig 5 — fault-injection FIT rates |
//! | `fig6`–`fig9` | Figs 6–9 — beam/FI FIT ratios per class |
//! | `fig10` | Fig 10 — aggregate comparison overview |
//! | `fit_raw` | §VI — the L1 per-bit raw-FIT measurement |
//! | `counters` | §IV-D — the 7-counter setup cross-check |
//! | `replay` | re-execute a quarantined anomaly deterministically |
//! | `reproduce_all` | everything above, in order |
//!
//! Ablation binaries (`ablation_multibit`, `ablation_unmodeled`,
//! `ablation_cache_scaling`, `ablation_samples`, `ablation_tlb`) cover the
//! design choices DESIGN.md §4 calls out.
//!
//! Every binary accepts `--samples N` (faults/component), `--strikes N`
//! (beam strikes/benchmark), `--seed N`, `--threads N`, `--tiny`
//! (tiny inputs for smoke runs), `--suite A,B,…` (benchmark subset),
//! `--trace-out FILE.jsonl` (capture a structured `sea-trace` event
//! stream, with fault provenance, and print a trace summary at exit)
//! and `--progress` (live per-class progress meter on stderr).
//!
//! Campaign robustness flags (see README "Robustness" and "Durability"):
//! `--journal DIR` writes an append-only outcome journal per workload,
//! `--journal-format bin|jsonl` picks the crash-consistent `.seaj`
//! binary container (default) or plain JSON Lines, `--fsync
//! none|every-n=N|interval-ms=T` sets the journal fsync cadence,
//! `--resume` validates and continues an interrupted journal (truncating
//! a torn tail), `--quarantine FILE` collects panicking runs as
//! replayable anomaly records, and `--run-timeout-ms N` puts a
//! wall-clock watchdog on every run. The `journal` binary exports and
//! audits `.seaj` journals offline.
//!
//! Checkpoint flags (see README "Performance"): `--checkpoint-interval N`
//! captures golden-run epoch checkpoints every ~N cycles (0 = auto) and
//! restores the nearest one instead of re-booting before each injection;
//! `--checkpoint-dir DIR` additionally persists them across invocations;
//! `--fast-path` arms the bit-exact microarchitectural execution fast
//! path (µop cache + translation latches) on every injected machine;
//! `--warp` serves each run's machine from a per-worker warp cursor
//! (amortized detailed prefix execution, byte-identical journals — see
//! README "Performance" and the `bench_warp` binary).
//!
//! Profiling flags (see README "Profiling"): `--profile-out FILE` writes a
//! per-workload attribution report (cycle hotspots + predicted-vs-measured
//! AVF from a profiled golden run), `--chrome-trace FILE.json` renders the
//! captured trace as Chrome trace-event JSON (`chrome://tracing` /
//! Perfetto), and `--prom-out FILE.prom` rewrites a Prometheus
//! text-exposition snapshot of live campaign metrics about once a second.
//!
//! Observability flags (see README "Live monitoring"): `--serve ADDR`
//! starts the embedded HTTP server (`/status`, `/metrics`, `/events`,
//! `/journal/tail`, `/healthz`) for the life of the run without changing a
//! single journal byte; `--stop-at-margin PCT` ends each campaign/session
//! early once every stratum's adjusted 99%-confidence error margin
//! reaches PCT percent; `--convergence-out FILE` writes post-hoc
//! convergence curves (margin vs. sample count at doubling checkpoints)
//! for every campaign.
//! Fleet service (see README "Fleet service"): the `fleet` binary runs
//! the `sea-fleet` daemon (`fleet serve`), its worker processes (`fleet
//! worker --connect ADDR`) and a study-submission client (`fleet submit`).
//! Every campaign binary also installs graceful SIGTERM/SIGINT handling:
//! the signal raises the process-wide stop flag, workers drain, journals
//! flush, and an interrupted run resumes with `--resume`.
//!
//! Criterion microbenchmarks (`cargo bench -p sea-bench`) cover the
//! simulator kernels the tables depend on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sea_core::analysis::TraceSummary;
use sea_core::{
    trace, CampaignResult, Overview, Scale, Study, StudyResult, Workload, WorkloadStudy,
};
use std::path::PathBuf;
use std::sync::Arc;

/// CLI options shared by every regeneration binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// The study configuration.
    pub study: Study,
    /// Benchmarks to include.
    pub suite: Vec<Workload>,
    /// Write post-hoc convergence curves (error margin vs. sample count at
    /// doubling checkpoints) for every campaign to this file.
    pub convergence_out: Option<PathBuf>,
    /// Live tracing attached by `--trace-out` / `--chrome-trace` /
    /// `--serve`; flushes and summarizes when the last clone drops (end of
    /// `main`).
    pub trace: Option<Arc<TraceSession>>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            study: Study::default(),
            suite: Workload::ALL.to_vec(),
            convergence_out: None,
            trace: None,
        }
    }
}

/// A live trace capture: installs the sinks `--trace-out` and/or
/// `--chrome-trace` ask for and enables info-level events across all
/// subsystems for the life of the value. Dropping it flushes the capture:
/// the JSON-Lines file gets a [`trace summary`](TraceSummary) on stderr,
/// and the Chrome file is rendered from the in-memory capture via
/// [`sea_core::profile::chrome_trace`].
pub struct TraceSession {
    jsonl: Option<PathBuf>,
    chrome: Option<(PathBuf, Arc<trace::MemorySink>)>,
    serving: bool,
}

impl std::fmt::Debug for TraceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSession")
            .field("jsonl", &self.jsonl)
            .field("chrome", &self.chrome.as_ref().map(|(p, _)| p))
            .field("serving", &self.serving)
            .finish()
    }
}

impl TraceSession {
    /// Start capturing to a JSON-Lines file, a Chrome trace-event file,
    /// the observability server's `/events` ring (`serve`), or any
    /// combination (truncates existing files). Returns `None` when no
    /// target is requested.
    ///
    /// # Panics
    ///
    /// Panics if the JSON-Lines file cannot be created.
    pub fn start(
        jsonl: Option<PathBuf>,
        chrome: Option<PathBuf>,
        serve: bool,
    ) -> Option<TraceSession> {
        if jsonl.is_none() && chrome.is_none() && !serve {
            return None;
        }
        let mut sinks: Vec<Arc<dyn trace::Sink>> = Vec::new();
        if let Some(path) = &jsonl {
            let sink = trace::JsonlSink::create(path)
                .unwrap_or_else(|e| panic!("--trace-out {}: {e}", path.display()));
            sinks.push(Arc::new(sink));
        }
        let chrome = chrome.map(|path| (path, Arc::new(trace::MemorySink::new())));
        if let Some((_, mem)) = &chrome {
            sinks.push(mem.clone() as Arc<dyn trace::Sink>);
        }
        if serve {
            sinks.push(sea_core::observe::tail_sink() as Arc<dyn trace::Sink>);
        }
        let sink = if sinks.len() == 1 {
            sinks.pop().expect("one sink")
        } else {
            Arc::new(trace::Tee(sinks))
        };
        trace::install_sink(sink);
        trace::set_level_all(trace::Level::Info);
        Some(TraceSession {
            jsonl,
            chrome,
            serving: serve,
        })
    }

    /// Where the JSON-Lines stream is being written, if anywhere.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.jsonl.as_deref()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if self.serving {
            // Stop the observability server first: its workers drain
            // queued connections before exiting, so in-flight /status and
            // /events responses complete against a still-installed sink.
            sea_core::observe::shutdown();
            sea_core::observe::publish_status(None);
            sea_core::observe::publish_metrics(None);
            sea_core::observe::publish_journal(None);
        }
        trace::disable_all();
        trace::shutdown();
        trace::uninstall_sink();
        if let Some((path, mem)) = self.chrome.take() {
            let doc = sea_core::profile::chrome_trace(&mem.take());
            match std::fs::write(&path, doc) {
                Ok(()) => eprintln!("\nchrome trace written to {}", path.display()),
                Err(e) => eprintln!("chrome trace: cannot write {}: {e}", path.display()),
            }
        }
        let Some(jsonl) = &self.jsonl else { return };
        match std::fs::read_to_string(jsonl) {
            Ok(text) => {
                let summary = TraceSummary::from_jsonl(&text);
                eprintln!("\ntrace written to {}", jsonl.display());
                eprint!("{}", summary.render());
            }
            Err(e) => eprintln!("trace: cannot summarize {}: {e}", jsonl.display()),
        }
    }
}

/// Parses the common CLI flags from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on malformed flags.
pub fn parse_options() -> Options {
    // Graceful SIGTERM/SIGINT for every regeneration binary: the signal
    // raises the process-wide stop flag, campaign/beam loops drain their
    // in-flight runs, journals flush, and the run is resumable with
    // `--resume` (README "Robustness").
    sea_fleet::install_stop_signals();
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--samples" => {
                opts.study.samples_per_component = need(i).parse().expect("--samples N");
                i += 2;
            }
            "--strikes" => {
                opts.study.beam_strikes = need(i).parse().expect("--strikes N");
                i += 2;
            }
            "--seed" => {
                opts.study.seed = need(i).parse().expect("--seed N");
                i += 2;
            }
            "--threads" => {
                opts.study.threads = need(i).parse().expect("--threads N");
                i += 2;
            }
            "--tiny" => {
                opts.study.scale = Scale::Tiny;
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--chrome-trace" => {
                opts.study.chrome_trace = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--profile-out" => {
                opts.study.profile_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--prom-out" => {
                opts.study.prom_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--progress" => {
                trace::set_progress(true);
                i += 1;
            }
            "--journal" => {
                opts.study.journal_dir = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--journal-format" => {
                opts.study.journal_format = sea_core::durable::JournalFormat::parse(&need(i))
                    .unwrap_or_else(|e| panic!("--journal-format: {e}"));
                i += 2;
            }
            "--fsync" => {
                opts.study.journal_fsync = sea_core::durable::FsyncPolicy::parse(&need(i))
                    .unwrap_or_else(|e| panic!("--fsync: {e}"));
                i += 2;
            }
            "--resume" => {
                opts.study.resume = true;
                i += 1;
            }
            "--quarantine" => {
                opts.study.quarantine = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--run-timeout-ms" => {
                opts.study.run_wall_ms = need(i).parse().expect("--run-timeout-ms N");
                i += 2;
            }
            "--checkpoint-dir" => {
                opts.study.checkpoint_dir = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--checkpoint-interval" => {
                opts.study.checkpoint_interval =
                    need(i).parse().expect("--checkpoint-interval CYCLES");
                i += 2;
            }
            "--fast-path" => {
                opts.study.fast_path = true;
                i += 1;
            }
            "--warp" => {
                opts.study.warp = true;
                i += 1;
            }
            "--serve" => {
                opts.study.serve = Some(need(i));
                i += 2;
            }
            "--stop-at-margin" => {
                let pct: f64 = need(i).parse().expect("--stop-at-margin PCT");
                assert!(
                    pct > 0.0 && pct < 100.0,
                    "--stop-at-margin wants a percentage in (0, 100)"
                );
                opts.study.stop_at_margin = Some(pct / 100.0);
                i += 2;
            }
            "--convergence-out" => {
                opts.convergence_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--suite" => {
                opts.suite = need(i)
                    .split(',')
                    .map(|name| {
                        Workload::ALL
                            .into_iter()
                            .find(|w| {
                                w.name().eq_ignore_ascii_case(name)
                                    || w.name().replace(' ', "").eq_ignore_ascii_case(name)
                            })
                            .unwrap_or_else(|| panic!("unknown workload `{name}`"))
                    })
                    .collect();
                i += 2;
            }
            other => panic!("unknown flag `{other}` (see sea-bench docs for usage)"),
        }
    }
    opts.trace = TraceSession::start(
        trace_out,
        opts.study.chrome_trace.clone(),
        opts.study.serve.is_some(),
    )
    .map(Arc::new);
    sea_core::profile::set_prom_out(opts.study.prom_out.as_deref());
    opts
}

/// Profiles every workload's golden run and writes the attribution report
/// (cycle hotspots + predicted-vs-measured AVF) to `--profile-out`.
/// `campaigns` supplies injection-measured AVFs where available; workloads
/// without one still get their predicted column. A no-op when
/// `--profile-out` was not given.
pub fn write_profile_report(opts: &Options, campaigns: &[(Workload, &CampaignResult)]) {
    let Some(path) = &opts.study.profile_out else {
        return;
    };
    let mut out = String::new();
    for &w in &opts.suite {
        let Some(profile) = opts.study.profile_workload(w) else {
            eprintln!("profile: golden run for {w} not clean, skipped");
            continue;
        };
        let measured = campaigns.iter().find(|(cw, _)| *cw == w).map(|(_, c)| *c);
        out.push_str(&sea_core::analysis::profile::render_profile(
            w.name(),
            &profile,
            measured,
        ));
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("profile report written to {}", path.display()),
        Err(e) => eprintln!("profile: cannot write {}: {e}", path.display()),
    }
}

/// Writes the post-hoc convergence curves (adjusted error margin vs.
/// sample count at doubling checkpoints, per component) for every campaign
/// to `--convergence-out`. A no-op when the flag was not given.
pub fn write_convergence_report(opts: &Options, campaigns: &[(Workload, &CampaignResult)]) {
    let Some(path) = &opts.convergence_out else {
        return;
    };
    let mut out = String::new();
    for (_, c) in campaigns {
        out.push_str(&sea_core::analysis::render_convergence(c));
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("convergence curves written to {}", path.display()),
        Err(e) => eprintln!("convergence: cannot write {}: {e}", path.display()),
    }
}

/// Runs the full study for the configured suite, printing progress to
/// stderr.
///
/// # Panics
///
/// Panics if a golden run fails (setup bug).
pub fn run_study(opts: &Options) -> StudyResult {
    eprintln!(
        "study: {} benchmarks, {} faults/component, {} beam strikes (seed {:#x})",
        opts.suite.len(),
        opts.study.samples_per_component,
        opts.study.beam_strikes,
        opts.study.seed
    );
    let t0 = std::time::Instant::now();
    let mut workloads: Vec<WorkloadStudy> = Vec::new();
    for &w in &opts.suite {
        let t = std::time::Instant::now();
        workloads.push(opts.study.run_workload(w).expect("workload study"));
        eprintln!("  {w}: {:.1}s", t.elapsed().as_secs_f64());
    }
    let comparisons: Vec<_> = workloads.iter().map(|w| w.comparison.clone()).collect();
    eprintln!("study done in {:.1}s", t0.elapsed().as_secs_f64());
    // Supervision audit goes to stderr so stdout (the artifact itself)
    // stays byte-stable for diffing clean vs resumed runs.
    let sup_rows: Vec<_> = workloads
        .iter()
        .map(|w| {
            (
                w.workload.name().to_string(),
                w.campaign.supervision,
                w.beam.supervision,
            )
        })
        .collect();
    let noteworthy = sup_rows.iter().any(|(_, i, b)| {
        i.quarantined + i.lost + b.quarantined + b.lost > 0
            || i.worker_respawns + b.worker_respawns > 0
            || i.resumed + b.resumed > 0
    });
    if noteworthy {
        eprintln!("\nsupervision summary:");
        eprint!(
            "{}",
            sea_core::analysis::report::supervision_table(&sup_rows)
        );
    }
    // Checkpoint audit: only rendered when a checkpoint policy was active
    // (stderr, like the supervision table, so artifacts stay byte-stable).
    let ckpt_rows: Vec<_> = workloads
        .iter()
        .map(|w| {
            (
                w.workload.name().to_string(),
                w.campaign.golden_cycles,
                w.campaign.checkpoints,
                w.beam.checkpoints,
            )
        })
        .collect();
    if ckpt_rows
        .iter()
        .any(|(_, _, i, b)| i.is_some() || b.is_some())
    {
        eprintln!("\ncheckpoint summary:");
        eprint!(
            "{}",
            sea_core::analysis::report::checkpoint_table(&ckpt_rows)
        );
    }
    // Journal durability audit: rendered when journaling was active and
    // something beyond plain appends happened (resume, torn tail, write
    // retries, or a poisoned writer).
    let journal_rows: Vec<_> = workloads
        .iter()
        .map(|w| {
            (
                w.workload.name().to_string(),
                w.campaign.journal,
                w.beam.journal,
            )
        })
        .collect();
    let journal_noteworthy = journal_rows.iter().any(|(_, i, b)| {
        [i, b]
            .into_iter()
            .flatten()
            .any(|a| a.resumed > 0 || a.torn_bytes > 0 || a.retries > 0 || a.poisoned)
    });
    if journal_noteworthy {
        eprintln!("\njournal summary:");
        eprint!(
            "{}",
            sea_core::analysis::report::journal_table(&journal_rows)
        );
    }
    let res = StudyResult {
        overview: Overview::from_comparisons(&comparisons),
        workloads,
        fit_raw: opts.study.fit_raw,
    };
    let campaigns: Vec<(Workload, &CampaignResult)> = res
        .workloads
        .iter()
        .map(|w| (w.workload, &w.campaign))
        .collect();
    write_profile_report(opts, &campaigns);
    write_convergence_report(opts, &campaigns);
    res
}

/// Shared rendering for the ratio figures (Figs 6–9).
pub mod figures {
    use sea_core::analysis::report::{log_bar, ratio_label};
    use sea_core::{Comparison, StudyResult};

    /// Prints a signed log-scale ratio chart, one row per benchmark.
    pub fn ratio_figure(title: &str, res: &StudyResult, metric: impl Fn(&Comparison) -> f64) {
        println!("{title}");
        println!("(negative ← fault injection higher | beam higher → positive; log scale)\n");
        let rows: Vec<(String, f64)> = res
            .workloads
            .iter()
            .map(|w| (w.comparison.workload.clone(), metric(&w.comparison)))
            .collect();
        let max = rows
            .iter()
            .map(|(_, r)| if r.is_finite() { r.abs() } else { 1000.0 })
            .fold(10.0f64, f64::max);
        let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, r) in &rows {
            let bar = log_bar(*r, max, 30);
            if *r >= 0.0 {
                println!("{name:<name_w$} {:>31}|{bar:<30} {}", "", ratio_label(*r));
            } else {
                println!("{name:<name_w$} {:>31}|{:<30} {}", bar, "", ratio_label(*r));
            }
        }
    }
}

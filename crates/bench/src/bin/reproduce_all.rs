//! Runs the complete reproduction: one study powers Figs 3–10, plus the
//! FIT_raw measurement and Tables I–IV. Output is the material recorded
//! in EXPERIMENTS.md.

use sea_bench::figures::ratio_figure;
use sea_core::analysis::report::{grouped_bars, table};
use sea_core::{setup_rows, FaultClass, MachineConfig, Workload};

fn main() {
    let opts = sea_bench::parse_options();
    println!("=== SEA full reproduction ===\n");

    // ---- Table II / Table III (static) ----
    println!("Table II — setup attributes\n");
    let rows: Vec<Vec<String>> = setup_rows(&MachineConfig::cortex_a9())
        .into_iter()
        .map(|r| vec![r.property.to_string(), r.beam, r.sim])
        .collect();
    println!("{}", table(&["Property", "Beam", "SEA model"], &rows));

    println!("\nTable III — benchmark inputs and characteristics\n");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let m = w.meta();
            vec![
                w.name().into(),
                m.paper_input.into(),
                m.scaled_input.into(),
                m.characteristics.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Benchmark",
                "Paper input",
                "Scaled input",
                "Characteristics"
            ],
            &rows
        )
    );

    // ---- FIT_raw (§VI) ----
    println!("\n--- FIT_raw measurement (Section VI) ---");
    let r = opts
        .study
        .measure_fit_raw(opts.study.beam_strikes.clamp(60, 200));
    println!(
        "measured FIT_raw = {:.3e} per bit (paper: 2.76e-5); {} upsets / {} strikes",
        r.fit_raw_measured, r.detected_upsets, r.strikes
    );

    // ---- The study (Figs 3–10, Table IV) ----
    let res = sea_bench::run_study(&opts);

    println!("\nTable IV — error margins per component (99% confidence)\n");
    let mut per_comp: std::collections::BTreeMap<_, Vec<f64>> = Default::default();
    for w in &res.workloads {
        for c in &w.campaign.per_component {
            per_comp
                .entry(c.component)
                .or_default()
                .push(c.error_margin());
        }
    }
    let rows: Vec<Vec<String>> = sea_core::Component::ALL
        .iter()
        .map(|c| {
            let ms = &per_comp[c];
            vec![
                c.short_name().to_string(),
                format!(
                    "{:.1} %",
                    100.0 * ms.iter().copied().fold(f64::INFINITY, f64::min)
                ),
                format!("{:.1} %", 100.0 * ms.iter().copied().fold(0.0f64, f64::max)),
                format!("{:.1} %", 100.0 * ms.iter().sum::<f64>() / ms.len() as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["Component", "Min Err", "Max Err", "Avg Err"], &rows)
    );

    println!("\nFig 3 — beam FIT rates\n");
    let items: Vec<(String, Vec<f64>)> = res
        .workloads
        .iter()
        .map(|w| {
            (
                w.comparison.workload.clone(),
                vec![
                    w.comparison.beam.sdc,
                    w.comparison.beam.app_crash,
                    w.comparison.beam.sys_crash,
                ],
            )
        })
        .collect();
    println!(
        "{}",
        grouped_bars(
            "beam FIT (per 10^9 h)",
            &items,
            &["SDC", "AppCrash", "SysCrash"],
            40
        )
    );

    println!("\nFig 4 — injection classification (summary: AVF per component)\n");
    let mut rows = Vec::new();
    for w in &res.workloads {
        for c in &w.campaign.per_component {
            rows.push(vec![
                w.comparison.workload.clone(),
                c.component.short_name().to_string(),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::Sdc)),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::AppCrash)),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::SysCrash)),
                format!("{:5.1}%", 100.0 * c.counts.avf()),
            ]);
        }
    }
    println!(
        "{}",
        table(&["Benchmark", "Comp", "SDC", "App", "Sys", "AVF"], &rows)
    );

    println!("\nFig 5 — fault-injection FIT rates\n");
    let items: Vec<(String, Vec<f64>)> = res
        .workloads
        .iter()
        .map(|w| {
            (
                w.comparison.workload.clone(),
                vec![
                    w.comparison.fi.sdc,
                    w.comparison.fi.app_crash,
                    w.comparison.fi.sys_crash,
                ],
            )
        })
        .collect();
    println!(
        "{}",
        grouped_bars(
            "injection FIT (per 10^9 h)",
            &items,
            &["SDC", "AppCrash", "SysCrash"],
            40
        )
    );

    println!();
    ratio_figure("Fig 6 — SDC FIT ratio", &res, |c| {
        c.ratio(FaultClass::Sdc)
    });
    println!();
    ratio_figure("Fig 7 — AppCrash FIT ratio", &res, |c| {
        c.ratio(FaultClass::AppCrash)
    });
    println!();
    ratio_figure("Fig 8 — SysCrash FIT ratio", &res, |c| {
        c.ratio(FaultClass::SysCrash)
    });
    println!();
    ratio_figure("Fig 9 — (SDC+AppCrash) FIT ratio", &res, |c| {
        c.ratio_sdc_app()
    });

    let o = &res.overview;
    println!("\nFig 10 — overview (average FIT across benchmarks)\n");
    let items = vec![
        ("SDC only".to_string(), vec![o.fi_sdc, o.beam_sdc]),
        ("+ AppCrash".to_string(), vec![o.fi_sdc_app, o.beam_sdc_app]),
        (
            "+ SysCrash (total)".to_string(),
            vec![o.fi_total, o.beam_total],
        ),
    ];
    println!(
        "{}",
        grouped_bars("average FIT", &items, &["fault injection", "beam"], 40)
    );
    println!(
        "ratios — SDC: {:.2}x | +AppCrash: {:.2}x | total: {:.2}x   (paper: ~1x | 4.3x | 10.9x)",
        o.sdc_ratio(),
        o.sdc_app_ratio(),
        o.total_ratio()
    );
}

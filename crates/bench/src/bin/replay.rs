//! `replay` — deterministic re-execution of quarantined anomalies.
//!
//! Reads a quarantine file produced by `--quarantine FILE`, rebuilds the
//! recorded workload, and re-runs each anomalous spec under the same
//! panic boundary the campaign used. A deterministic anomaly reproduces
//! its panic (the post-mortems are compared); a flaky one usually
//! classifies normally on replay. Use `--trace-out FILE.jsonl` to capture
//! the full `sea-trace` provenance stream of the replayed run, and
//! `--chrome-trace FILE.json` to render the same capture as Chrome
//! trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! With `--checkpoint-dir DIR` (the same directory a checkpointed
//! campaign persisted to), the replay restores the nearest golden-run
//! checkpoint at or before the anomaly's injection cycle instead of
//! re-running the whole fault-free prefix from reset — restore and reset
//! are bit-equivalent, so the reproduction verdict is unchanged.
//!
//! With `--serve ADDR`, the observability server runs for the life of the
//! replay: `/events` streams the provenance events of each re-executed
//! anomaly live (useful for long checkpoint-less replays).
//!
//! Usage: `replay --quarantine FILE [--index N] [--trace-out FILE]
//! [--chrome-trace FILE] [--checkpoint-dir DIR] [--serve ADDR]`

use sea_core::injection::supervisor::{config_hash, golden_hash};
use sea_core::injection::{
    acquire_golden_and_checkpoints, load_quarantine, run_one_caught, CheckpointPolicy, RunAnomaly,
};
use sea_core::platform::RunLimits;
use sea_core::{Scale, Study, Workload};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    quarantine: PathBuf,
    index: Option<u64>,
    trace: Option<Arc<sea_bench::TraceSession>>,
    checkpoint_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quarantine = None;
    let mut index = None;
    let mut trace_out = None;
    let mut chrome_trace = None;
    let mut checkpoint_dir = None;
    let mut serve: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--quarantine" => {
                quarantine = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--index" => {
                index = Some(need(i).parse().expect("--index N"));
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--chrome-trace" => {
                chrome_trace = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--serve" => {
                serve = Some(need(i));
                i += 2;
            }
            other => panic!("unknown flag `{other}` (usage: replay --quarantine FILE [--index N] [--trace-out FILE] [--chrome-trace FILE] [--checkpoint-dir DIR] [--serve ADDR])"),
        }
    }
    let trace = sea_bench::TraceSession::start(trace_out, chrome_trace, serve.is_some());
    if let Some(addr) = &serve {
        match sea_core::observe::serve(addr) {
            Ok(bound) => eprintln!("observability server on http://{bound}"),
            Err(e) => eprintln!("cannot serve on {addr}: {e}"),
        }
    }
    Args {
        quarantine: quarantine.expect("replay needs --quarantine FILE"),
        index,
        trace: trace.map(Arc::new),
        checkpoint_dir,
    }
}

/// Picks the input scale whose golden output matches the recorded hash;
/// falls back to `Default` (with a warning) when neither matches.
fn detect_scale(w: Workload, recorded: u64) -> Scale {
    for scale in [Scale::Default, Scale::Tiny] {
        if golden_hash(&w.build(scale)) == recorded {
            return scale;
        }
    }
    eprintln!(
        "warning: no input scale reproduces golden hash {recorded:#018x} for {}; \
         replaying at Default scale (results may diverge)",
        w.name()
    );
    Scale::Default
}

fn replay_one(a: &RunAnomaly, checkpoint_dir: Option<&std::path::Path>) {
    println!(
        "replay #{}: {} into {} bit {} @ cycle {} ({})",
        a.index,
        a.workload,
        a.spec.component.short_name(),
        a.spec.bit,
        a.spec.cycle,
        if a.deterministic {
            "deterministic"
        } else {
            "flaky"
        }
    );
    let Some(w) = Workload::ALL.into_iter().find(|w| w.name() == a.workload) else {
        println!("  SKIP: unknown workload `{}`", a.workload);
        return;
    };
    let scale = detect_scale(w, a.golden_hash);
    let built = w.build(scale);
    let study = Study {
        scale,
        seed: a.seed,
        ..Study::default()
    };
    let mut cfg = study.injection_config();
    // Same per-workload subdirectory layout as a checkpointed study run,
    // so `replay --checkpoint-dir` reuses the campaign's persisted set.
    cfg.checkpoints = checkpoint_dir.map(|d| CheckpointPolicy {
        dir: Some(d.join(format!("{}-inject", a.workload.replace(' ', "_")))),
        interval: 0,
    });
    let cfg_hash = config_hash(&cfg);
    if cfg_hash != a.config_hash {
        eprintln!(
            "warning: replay config hash {cfg_hash:#018x} != recorded {:#018x} \
             (non-default campaign configuration?); replay may diverge",
            a.config_hash
        );
    }
    let (golden, ckpts) =
        acquire_golden_and_checkpoints(&built, &cfg, cfg_hash, golden_hash(&built))
            .expect("golden run");
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);
    match run_one_caught(&built, &cfg, ckpts.as_ref(), a.index, a.spec, limits) {
        Ok((out, _sim_cycles)) => {
            println!(
                "  completed normally: class {} (array {:?}, valid {})",
                out.class, out.array, out.was_valid
            );
            if a.deterministic {
                println!("  NOTE: recorded as deterministic but did not reproduce — the");
                println!("  panic depended on state outside the (workload, spec) pair.");
            }
        }
        Err(caught) => {
            let reproduced = caught.message == a.panic_msg;
            println!(
                "  panicked again: {} (panic message {})",
                caught.message,
                if reproduced {
                    "MATCHES record"
                } else {
                    "DIFFERS from record"
                }
            );
            println!("  recorded post-mortem:\n{}", indent(&a.postmortem));
            println!("  replayed post-mortem:\n{}", indent(&caught.postmortem));
            if caught.postmortem == a.postmortem {
                println!("  terminal state reproduced bit-for-bit.");
            }
        }
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let args = parse_args();
    let anomalies = load_quarantine(&args.quarantine)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", args.quarantine.display()));
    let selected: Vec<&RunAnomaly> = anomalies
        .iter()
        .filter(|a| args.index.is_none_or(|i| a.index == i))
        .collect();
    if selected.is_empty() {
        println!(
            "no anomalies{} in {} ({} records total)",
            args.index
                .map_or(String::new(), |i| format!(" with index {i}")),
            args.quarantine.display(),
            anomalies.len()
        );
        return;
    }
    println!(
        "{} anomaly record(s) selected from {}\n",
        selected.len(),
        args.quarantine.display()
    );
    for a in selected {
        replay_one(a, args.checkpoint_dir.as_deref());
        println!();
    }
    drop(args.trace);
}

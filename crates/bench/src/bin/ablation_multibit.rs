//! Ablation — fault-model width: single-bit vs adjacent double-bit vs
//! 4-bit burst injections.
//!
//! The paper (§II-B) lists the single-bit simplification as a source of
//! fault-injection underestimation, since modern technologies see
//! multi-cell upsets. This ablation quantifies the gap on this setup.

use sea_core::analysis::report::table;
use sea_core::injection::{run_campaign, FaultModel};
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let suite = if opts.suite.len() > 3 {
        &opts.suite[..3]
    } else {
        &opts.suite[..]
    };
    let mut rows = Vec::new();
    for &w in suite {
        let built = w.build(opts.study.scale);
        for (name, model) in [
            ("single", FaultModel::SingleBit),
            ("double", FaultModel::DoubleBitAdjacent),
            ("burst4", FaultModel::Burst(4)),
        ] {
            eprintln!("  {w} / {name}...");
            let mut cfg = opts.study.injection_config();
            cfg.fault_model = model;
            let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
            let mut all = sea_core::ClassCounts::default();
            for c in &res.per_component {
                all.masked += c.counts.masked;
                all.sdc += c.counts.sdc;
                all.app_crash += c.counts.app_crash;
                all.sys_crash += c.counts.sys_crash;
            }
            rows.push(vec![
                w.name().to_string(),
                name.to_string(),
                format!("{:.1}%", 100.0 * all.avf()),
                format!("{:.1}%", 100.0 * all.rate(FaultClass::Sdc)),
                format!("{:.1}%", 100.0 * all.rate(FaultClass::AppCrash)),
                format!("{:.1}%", 100.0 * all.rate(FaultClass::SysCrash)),
            ]);
        }
    }
    println!("Ablation — spatial fault model (all components pooled)\n");
    println!(
        "{}",
        table(
            &["benchmark", "model", "AVF", "SDC", "AppCrash", "SysCrash"],
            &rows
        )
    );
    println!("expected: wider faults raise AVF — the single-bit model is a floor,");
    println!("one reason injection under-predicts the beam (paper Fig 1).");
}

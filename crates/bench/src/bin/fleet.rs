//! The fleet service: sharded multi-process campaigns with deterministic
//! merge (see the `sea-fleet` crate docs and README "Fleet service").
//!
//! ```text
//! fleet serve  [--root DIR] [--workers N] [--serve ADDR]
//!              [--watchdog-ms N] [--max-respawns N] [--worker-cmd CMD...]
//! fleet worker --connect ADDR
//! fleet submit --to ADDR (--spec FILE | --spec-json JSON) [--watch]
//! ```
//!
//! `serve` starts the daemon, prints the bound addresses, and schedules
//! studies until SIGTERM/SIGINT. `worker` is what the daemon spawns (one
//! per shard); it can also be started by hand against a remote daemon's
//! worker socket. `submit` POSTs a study spec to a daemon's HTTP surface
//! and optionally polls it to completion.

use sea_core::trace::json::{self, Json};
use sea_fleet::{run_worker, Daemon, DaemonConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  fleet serve  [--root DIR] [--workers N] [--serve ADDR] \
         [--watchdog-ms N] [--max-respawns N] [--worker-cmd CMD...]\n  \
         fleet worker --connect ADDR\n  \
         fleet submit --to ADDR (--spec FILE | --spec-json JSON) [--watch]"
    );
    std::process::exit(2);
}

fn need(args: &[String], i: usize) -> String {
    args.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("flag {} needs a value", args[i]);
            usage();
        })
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("worker") => worker(&args[1..]),
        Some("submit") => submit(&args[1..]),
        _ => usage(),
    }
}

fn serve(args: &[String]) {
    let mut cfg = DaemonConfig {
        serve: Some("127.0.0.1:0".to_string()),
        ..DaemonConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                cfg.root = PathBuf::from(need(args, i));
                i += 2;
            }
            "--workers" => {
                cfg.workers = need(args, i).parse().expect("--workers N");
                i += 2;
            }
            "--serve" => {
                cfg.serve = Some(need(args, i));
                i += 2;
            }
            "--watchdog-ms" => {
                cfg.watchdog_ms = need(args, i).parse().expect("--watchdog-ms N");
                i += 2;
            }
            "--max-respawns" => {
                cfg.max_respawns = need(args, i).parse().expect("--max-respawns N");
                i += 2;
            }
            // Everything after --worker-cmd is the worker command line.
            "--worker-cmd" => {
                cfg.worker_cmd = args[i + 1..].to_vec();
                if cfg.worker_cmd.is_empty() {
                    usage();
                }
                i = args.len();
            }
            _ => usage(),
        }
    }
    let daemon = Daemon::start(cfg).expect("fleet daemon start");
    // One parseable line per address: tests and scripts scrape these.
    println!("fleet worker socket {}", daemon.worker_addr());
    if let Some(http) = daemon.http_addr() {
        println!("fleet http http://{http}/");
    }
    let _ = std::io::stdout().flush();
    daemon.run();
}

fn worker(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                connect = Some(need(args, i));
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(addr) = connect else { usage() };
    if let Err(e) = run_worker(&addr) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

fn http(addr: &str, request_head: &str, body: &str) -> Result<String, std::io::Error> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        conn,
        "{request_head}\r\nHost: sea\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, body)) => Err(std::io::Error::other(format!(
            "{}: {}",
            head.lines().next().unwrap_or("bad response"),
            body.trim()
        ))),
        None => Err(std::io::Error::other("no header terminator")),
    }
}

fn submit(args: &[String]) {
    let mut to: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut watch = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--to" => {
                to = Some(need(args, i));
                i += 2;
            }
            "--spec" => {
                let path = need(args, i);
                spec = Some(std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("--spec {path}: {e}");
                    std::process::exit(1);
                }));
                i += 2;
            }
            "--spec-json" => {
                spec = Some(need(args, i));
                i += 2;
            }
            "--watch" => {
                watch = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    let (Some(addr), Some(spec)) = (to, spec) else {
        usage()
    };
    let ack = http(&addr, "POST /studies HTTP/1.1", spec.trim()).unwrap_or_else(|e| {
        eprintln!("submit failed: {e}");
        std::process::exit(1);
    });
    println!("{ack}");
    if !watch {
        return;
    }
    let id = json::parse(&ack)
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| {
            eprintln!("ack carried no study id: {ack}");
            std::process::exit(1);
        });
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let doc = match http(&addr, &format!("GET /studies/{id} HTTP/1.1"), "") {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{addr}: {e} — retrying");
                continue;
            }
        };
        let Ok(j) = json::parse(&doc) else { continue };
        let state = j.get("state").and_then(Json::as_str).unwrap_or("?");
        eprint!("{}", sea_core::analysis::fleet_summary(&j));
        match state {
            "done" => return,
            "failed" => {
                eprintln!(
                    "error: {}",
                    j.get("error").and_then(Json::as_str).unwrap_or("unknown")
                );
                std::process::exit(1);
            }
            _ => {}
        }
    }
}

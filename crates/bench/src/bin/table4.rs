//! Table IV — min/max/average statistical error margin per component
//! across the workloads, after the paper's p-re-adjustment (99% conf.).

use sea_core::analysis::report::table;
use sea_core::{injection::run_campaign, Component};

fn main() {
    let opts = sea_bench::parse_options();
    let mut per_comp: std::collections::BTreeMap<Component, Vec<f64>> = Default::default();
    let mut campaigns = Vec::new();
    for &w in &opts.suite {
        eprintln!("  {w}...");
        let built = w.build(opts.study.scale);
        let cfg = opts.study.injection_config_for(w);
        let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
        for c in &res.per_component {
            per_comp
                .entry(c.component)
                .or_default()
                .push(c.error_margin());
        }
        campaigns.push((w, res));
    }
    let measured: Vec<_> = campaigns.iter().map(|(w, c)| (*w, c)).collect();
    sea_bench::write_profile_report(&opts, &measured);
    sea_bench::write_convergence_report(&opts, &measured);
    println!(
        "Table IV — error margins per component across {} workloads ({} faults each, 99% confidence)\n",
        opts.suite.len(),
        opts.study.samples_per_component
    );
    let rows: Vec<Vec<String>> = Component::ALL
        .iter()
        .map(|c| {
            let ms = &per_comp[c];
            let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
            let max = ms.iter().copied().fold(0.0f64, f64::max);
            let avg = ms.iter().sum::<f64>() / ms.len() as f64;
            vec![
                c.short_name().to_string(),
                format!("{:.1} %", 100.0 * min),
                format!("{:.1} %", 100.0 * max),
                format!("{:.1} %", 100.0 * avg),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["Component", "Min Err", "Max Err", "Avg Err"], &rows)
    );
    println!("(the paper's 1,000-fault campaigns land between 1.7% and 4.0%;\n run with --samples 1000 for the same regime)");
}

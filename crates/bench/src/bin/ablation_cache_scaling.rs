//! Ablation — cache-capacity scaling vs kernel residency.
//!
//! Runs the residency measurement under the paper-size and the scaled
//! cache hierarchies to show the mechanism the paper's §V-A describes:
//! when the workload cannot fill the caches, kernel state stays resident
//! and System-Crash exposure grows.

use sea_core::analysis::report::table;
use sea_core::beam::measure_kernel_residency;
use sea_core::{MachineConfig, Scale};

fn main() {
    let opts = sea_bench::parse_options();
    let mut rows = Vec::new();
    for &w in &opts.suite {
        let built = w.build(opts.study.scale);
        let mut paper_cfg = opts.study.beam_config();
        paper_cfg.machine = MachineConfig::cortex_a9();
        let mut scaled_cfg = opts.study.beam_config();
        scaled_cfg.machine = MachineConfig::cortex_a9_scaled();
        let fp = measure_kernel_residency(&built, &paper_cfg).expect("residency");
        let fs = measure_kernel_residency(&built, &scaled_cfg).expect("residency");
        let meta = w.meta();
        rows.push(vec![
            w.name().to_string(),
            meta.footprint.to_string(),
            format!("{:.1}%", 100.0 * fp),
            format!("{:.1}%", 100.0 * fs),
        ]);
    }
    println!("Ablation — kernel cache residency vs cache capacity\n");
    println!(
        "{}",
        table(
            &[
                "benchmark",
                "footprint",
                "paper caches (32K/512K)",
                "scaled caches (8K/64K)"
            ],
            &rows
        )
    );
    println!("expected: under scaled caches, large-footprint benchmarks evict the kernel");
    println!("(lower residency) while small ones leave it resident — the Fig 8 gradient.");
    let _ = Scale::Default;
}

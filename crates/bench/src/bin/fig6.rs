//! Fig 6 — SDC FIT comparison between beam and fault injection.
//! Positive bars: beam higher; negative: injection higher (log scale).

use sea_bench::figures::ratio_figure;
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let res = sea_bench::run_study(&opts);
    ratio_figure(
        "Fig 6 — SDC FIT ratio (beam vs fault injection)",
        &res,
        |c| c.ratio(FaultClass::Sdc),
    );
    println!("\nexpected shape: most benchmarks within ±4x; low-SDC benchmarks noisier.");
}

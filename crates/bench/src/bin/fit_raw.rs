//! §VI — the L1 per-bit raw-FIT measurement (the paper's 2.76e-5 value).

fn main() {
    let opts = sea_bench::parse_options();
    let strikes = opts.study.beam_strikes.max(100);
    eprintln!("running the L1 fill/read-back probe with {strikes} sampled strikes...");
    let r = opts.study.measure_fit_raw(strikes);
    println!("FIT_raw measurement (L1 probe under beam)");
    println!("  strikes sampled     : {}", r.strikes);
    println!("  upsets detected     : {}", r.detected_upsets);
    println!("  runs crashed        : {}", r.crashed_runs);
    println!("  fluence represented : {:.3e} n/cm^2", r.fluence);
    println!("  sigma per bit       : {:.3e} cm^2", r.sigma_bit_measured);
    println!("  FIT_raw (measured)  : {:.3e} per bit", r.fit_raw_measured);
    println!("  FIT_raw (paper)     : 2.760e-5 per bit");
    println!(
        "  detection efficiency: {:.2} (tag strikes detect as multi-word upsets)",
        r.efficiency
    );
}

//! Fig 8 — System-Crash FIT comparison between beam and injection.

use sea_bench::figures::ratio_figure;
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let res = sea_bench::run_study(&opts);
    ratio_figure(
        "Fig 8 — SysCrash FIT ratio (beam vs fault injection)",
        &res,
        |c| c.ratio(FaultClass::SysCrash),
    );
    println!("\nexpected shape: beam higher for every benchmark (platform logic +");
    println!("kernel-resident cache exposure); largest for small-footprint workloads.");
    for w in &res.workloads {
        println!(
            "  {:<14} kernel-resident cache fraction: {:.1}%",
            w.comparison.workload,
            100.0 * w.beam.kernel_resident_frac
        );
    }
}

//! Fig 7 — Application-Crash FIT comparison between beam and injection.

use sea_bench::figures::ratio_figure;
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let res = sea_bench::run_study(&opts);
    ratio_figure(
        "Fig 7 — AppCrash FIT ratio (beam vs fault injection)",
        &res,
        |c| c.ratio(FaultClass::AppCrash),
    );
    println!("\nexpected shape: beam consistently higher (unmodeled control latches);");
    println!("largest for small-code benchmarks whose text stays cache-resident.");
}

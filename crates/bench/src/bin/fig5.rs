//! Fig 5 — fault-injection-predicted FIT rates per benchmark
//! (AVF × size × FIT_raw, summed over the six components).

use sea_core::analysis::fi_fit;
use sea_core::analysis::report::grouped_bars;
use sea_core::injection::run_campaign;

fn main() {
    let opts = sea_bench::parse_options();
    let mut items = Vec::new();
    let mut campaigns = Vec::new();
    for &w in &opts.suite {
        eprintln!("  {w}...");
        let built = w.build(opts.study.scale);
        let cfg = opts.study.injection_config_for(w);
        let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
        let fit = fi_fit(&res, opts.study.fit_raw);
        items.push((
            w.name().to_string(),
            vec![fit.sdc, fit.app_crash, fit.sys_crash],
        ));
        campaigns.push((w, res));
    }
    let measured: Vec<_> = campaigns.iter().map(|(w, c)| (*w, c)).collect();
    sea_bench::write_profile_report(&opts, &measured);
    sea_bench::write_convergence_report(&opts, &measured);
    println!(
        "{}",
        grouped_bars(
            "Fig 5 — fault-injection FIT rates per benchmark (failures / 10^9 h)",
            &items,
            &["SDC", "AppCrash", "SysCrash"],
            48,
        )
    );
}

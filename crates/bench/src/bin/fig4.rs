//! Fig 4 — fault-injection effect classification (AVF breakdown) for all
//! benchmarks in all six components.

use sea_core::analysis::report::table;
use sea_core::injection::run_campaign;
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let mut rows = Vec::new();
    let mut campaigns = Vec::new();
    for &w in &opts.suite {
        eprintln!("  {w}...");
        let built = w.build(opts.study.scale);
        let cfg = opts.study.injection_config_for(w);
        let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
        for c in &res.per_component {
            rows.push(vec![
                w.name().to_string(),
                c.component.short_name().to_string(),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::Masked)),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::Sdc)),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::AppCrash)),
                format!("{:5.1}%", 100.0 * c.counts.rate(FaultClass::SysCrash)),
                format!("{:5.1}%", 100.0 * c.counts.avf()),
            ]);
        }
        campaigns.push((w, res));
    }
    let measured: Vec<_> = campaigns.iter().map(|(w, c)| (*w, c)).collect();
    sea_bench::write_profile_report(&opts, &measured);
    sea_bench::write_convergence_report(&opts, &measured);
    println!("Fig 4 — injection effect classification per benchmark & component\n");
    println!(
        "{}",
        table(
            &[
                "Benchmark",
                "Component",
                "Masked",
                "SDC",
                "AppCrash",
                "SysCrash",
                "AVF"
            ],
            &rows
        )
    );
    println!("expected shape: SDCs concentrate in L1D/L2 (data arrays); L1I faults crash;");
    println!("TLB physical targets are highly vulnerable; tag flips mostly benign.");
}

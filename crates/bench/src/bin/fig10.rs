//! Fig 10 — overview: average FIT with progressively added crash classes.

use sea_core::analysis::report::grouped_bars;

fn main() {
    let opts = sea_bench::parse_options();
    let res = sea_bench::run_study(&opts);
    let o = &res.overview;
    let items = vec![
        ("SDC only".to_string(), vec![o.fi_sdc, o.beam_sdc]),
        ("+ AppCrash".to_string(), vec![o.fi_sdc_app, o.beam_sdc_app]),
        (
            "+ SysCrash (total)".to_string(),
            vec![o.fi_total, o.beam_total],
        ),
    ];
    println!(
        "{}",
        grouped_bars(
            "Fig 10 — average FIT across benchmarks, beam vs fault injection",
            &items,
            &["fault injection", "beam"],
            48,
        )
    );
    println!(
        "ratios: SDC {:.2}x | +AppCrash {:.2}x | total {:.2}x",
        o.sdc_ratio(),
        o.sdc_app_ratio(),
        o.total_ratio()
    );
    println!("paper:  SDC ~1x   | +AppCrash 4.3x   | total 10.9x");
    println!("\nthe real FIT rate lies between the two estimates (paper Fig 1/Fig 10);");
    println!("the gap never exceeds one order of magnitude.");
}

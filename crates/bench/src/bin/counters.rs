//! §IV-D — performance-counter cross-check.
//!
//! The paper compares 7 hardware counters between the Zynq board and the
//! gem5 model to argue the setups are equivalent enough ("about 70% of the
//! counters report acceptable deviations", TLB counters worst). With no
//! physical board here, the analogous check compares the *paper-sized*
//! machine against the *scaled campaign* machine on identical binaries:
//! counters that are properties of the program (branches, accesses) must
//! match closely; counters that are properties of the hierarchy (misses)
//! legitimately deviate — the same split the paper reports.

use sea_core::analysis::report::table;
use sea_core::kernel::KernelConfig;
use sea_core::platform::golden_run;
use sea_core::MachineConfig;

fn main() {
    let opts = sea_bench::parse_options();
    let mut rows = Vec::new();
    for &w in &opts.suite {
        let built = w.build(opts.study.scale);
        let a = golden_run(
            MachineConfig::cortex_a9(),
            &built.image,
            &KernelConfig::default(),
            500_000_000,
        )
        .expect("paper-config run");
        let b = golden_run(
            MachineConfig::cortex_a9_scaled(),
            &built.image,
            &KernelConfig::default(),
            500_000_000,
        )
        .expect("scaled-config run");
        assert_eq!(a.output, b.output, "{w}: outputs must be identical");
        for ((name, va), (_, vb)) in a
            .counters
            .paper_seven()
            .iter()
            .zip(b.counters.paper_seven())
        {
            let dev = if *va == 0 && vb == 0 {
                0.0
            } else {
                100.0 * (vb as f64 - *va as f64) / (*va as f64).max(1.0)
            };
            rows.push(vec![
                w.name().to_string(),
                (*name).to_string(),
                va.to_string(),
                vb.to_string(),
                format!("{dev:+.1}%"),
            ]);
        }
    }
    println!("§IV-D — counter comparison: paper-sized vs scaled-campaign machine\n");
    println!(
        "{}",
        table(
            &[
                "benchmark",
                "counter",
                "paper config",
                "scaled config",
                "deviation"
            ],
            &rows
        )
    );
    println!("expected: program-property counters (branch misses within noise) agree;");
    println!("hierarchy-property counters (cache/TLB misses) deviate with capacity —");
    println!("the same acceptable/structural split as the paper's board-vs-gem5 check.");
}

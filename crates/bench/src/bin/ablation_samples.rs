//! Ablation — statistical convergence of the fault-sample size.
//!
//! Reruns one campaign at growing sample counts, showing the Leveugle
//! error margin shrinking toward the paper's 1,000-fault regime and the
//! AVF estimate stabilizing (Table IV's machinery).

use sea_core::analysis::report::table;
use sea_core::injection::run_campaign;
use sea_core::Component;

fn main() {
    let opts = sea_bench::parse_options();
    let w = opts.suite[0];
    let built = w.build(opts.study.scale);
    let mut rows = Vec::new();
    for n in [50u32, 100, 200, 400, 1000] {
        eprintln!("  {n} faults/component...");
        let mut cfg = opts.study.injection_config();
        cfg.samples_per_component = n;
        cfg.components = vec![Component::L1D];
        let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
        let c = res.component(Component::L1D);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", 100.0 * c.counts.avf()),
            format!("±{:.1}%", 100.0 * c.error_margin()),
        ]);
    }
    println!("Ablation — L1D sample-size convergence ({w})\n");
    println!(
        "{}",
        table(&["faults", "AVF estimate", "99% margin"], &rows)
    );
    println!("expected: the margin decays ~1/sqrt(n); 1,000 faults reach the paper's");
    println!("1.7%-4.0% band (Table IV).");
}

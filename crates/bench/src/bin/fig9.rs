//! Fig 9 — SDC + AppCrash FIT comparison (core-only effects).

use sea_bench::figures::ratio_figure;

fn main() {
    let opts = sea_bench::parse_options();
    let res = sea_bench::run_study(&opts);
    ratio_figure(
        "Fig 9 — (SDC + AppCrash) FIT ratio (beam vs fault injection)",
        &res,
        |c| c.ratio_sdc_app(),
    );
    println!("\nexpected shape: tighter than Fig 7 alone — some beam AppCrashes appear");
    println!("as SDCs in injection, and the sum cancels the reclassification.");
}

//! Ablation — TLB virtual tag vs physical target vulnerability.
//!
//! §V-B of the paper: injections into the TLB's physical page (target)
//! cause wrong translations and permissions, while virtual-tag corruption
//! mostly produces harmless re-walks. This ablation separates the two
//! regions of every injected TLB fault.

use sea_core::analysis::report::table;
use sea_core::injection::run_campaign;
use sea_core::Component;

fn main() {
    let opts = sea_bench::parse_options();
    let mut rows = Vec::new();
    for &w in &opts.suite {
        eprintln!("  {w}...");
        let built = w.build(opts.study.scale);
        let mut cfg = opts.study.injection_config();
        cfg.components = vec![Component::ITlb, Component::DTlb];
        cfg.samples_per_component = cfg.samples_per_component.max(200);
        let res = run_campaign(w.name(), &built, &cfg).expect("campaign");
        for c in &res.per_component {
            let tag = c.tag_counts;
            let data_total = c.counts.total() - tag.total();
            let data_nonmasked = (c.counts.total() - c.counts.masked) - (tag.total() - tag.masked);
            let data_avf = if data_total > 0 {
                data_nonmasked as f64 / data_total as f64
            } else {
                0.0
            };
            rows.push(vec![
                w.name().to_string(),
                c.component.short_name().to_string(),
                format!("{:.1}% ({} faults)", 100.0 * tag.avf(), tag.total()),
                format!("{:.1}% ({} faults)", 100.0 * data_avf, data_total),
            ]);
        }
    }
    println!("Ablation — TLB tag vs physical-target AVF\n");
    println!(
        "{}",
        table(
            &["benchmark", "TLB", "tag-region AVF", "target-region AVF"],
            &rows
        )
    );
    println!("expected: the tag region's AVF is near zero (misses → re-walks);");
    println!("the physical target carries the vulnerability (paper §V-B).");
}

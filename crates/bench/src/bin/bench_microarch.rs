//! `bench_microarch` — measures the steps/sec the execution fast path
//! (µop cache + translation latches) gives the detailed machine model and
//! records it as `BENCH_microarch.json`.
//!
//! Two workload regimes, each run to completion with the fast path off and
//! on (same machine, same kernel, same limits — only the memoization
//! differs):
//!
//! 1. **Compute-heavy** (CRC32, default kernel tick): the tight-loop case
//!    the µop cache targets. This is the headline `speedup` field and what
//!    `--require` gates on.
//! 2. **Syscall-heavy** (QSort with the kernel tick driven 8× faster):
//!    the run is dominated by kernel entries/exits, each of which clears
//!    the translation latches — the fast path's worst realistic case. The
//!    µop cache still pays; the latches mostly don't.
//!
//! Every pair of runs is checked bit-identical: same final counters, same
//! terminal outcome, same deep state fingerprint.
//!
//! Usage: `bench_microarch [--reps N] [--tiny] [--out FILE]
//! [--require X]`
//!
//! `--require X` exits nonzero unless the compute-heavy speedup is ≥ X
//! (CI smokes `--require 1.3`, non-blocking).

use sea_core::kernel::KernelConfig;
use sea_core::microarch::{FastPathConfig, MachineConfig};
use sea_core::platform::{boot, run, RunLimits, RunOutcome};
use sea_core::trace::json::ObjWriter;
use sea_core::workloads::BuiltWorkload;
use sea_core::{Scale, Workload};
use std::time::Instant;

struct Args {
    reps: u32,
    scale: Scale,
    out: std::path::PathBuf,
    require: f64,
}

fn parse_args() -> Args {
    let mut a = Args {
        reps: 5,
        // Full-scale inputs by default: tiny runs finish in ~1 ms of wall
        // time and the measurement drowns in timer noise and cold-boot
        // transients.
        scale: Scale::Default,
        out: std::path::PathBuf::from("BENCH_microarch.json"),
        require: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--reps" => {
                a.reps = need(i).parse().expect("--reps N");
                i += 2;
            }
            "--out" => {
                a.out = need(i).into();
                i += 2;
            }
            "--require" => {
                a.require = need(i).parse().expect("--require X");
                i += 2;
            }
            "--tiny" => {
                a.scale = Scale::Tiny;
                i += 1;
            }
            other => panic!(
                "unknown flag `{other}` (usage: bench_microarch [--reps N] \
                 [--tiny] [--out FILE] [--require X])"
            ),
        }
    }
    a
}

/// One timed arm: a full run from boot to terminal state. Boot is
/// excluded from the timing (it is identical either way); the clock covers
/// exactly the stepped execution.
struct Timed {
    wall_s: f64,
    instructions: u64,
    outcome: RunOutcome,
    fingerprint: u64,
    counters: sea_core::microarch::Counters,
    uop_hit_rate: f64,
    latch_hits: u64,
    line_hits: u64,
}

impl Timed {
    fn finish(
        wall_s: f64,
        outcome: RunOutcome,
        sys: &sea_core::microarch::System<sea_core::platform::Board>,
    ) -> Timed {
        let stats = sys.fastpath_stats().unwrap_or_default();
        let uop_total = stats.uop_hits + stats.uop_misses;
        Timed {
            wall_s,
            instructions: sys.cpu.counters.instructions,
            outcome,
            fingerprint: sys.state_fingerprint_deep(),
            counters: sys.cpu.counters,
            uop_hit_rate: stats.uop_hits as f64 / (uop_total.max(1)) as f64,
            latch_hits: stats.latch_hits,
            line_hits: stats.line_hits,
        }
    }
}

fn run_once(
    machine: MachineConfig,
    built: &BuiltWorkload,
    kernel: &KernelConfig,
    limits: RunLimits,
    fast: bool,
) -> (
    f64,
    RunOutcome,
    sea_core::microarch::System<sea_core::platform::Board>,
) {
    let (mut sys, _) = boot(machine, &built.image, kernel).expect("boot");
    if fast {
        sys.fastpath_enable(FastPathConfig::default());
    }
    let t = Instant::now();
    let outcome = run(&mut sys, limits);
    (t.elapsed().as_secs_f64(), outcome, sys)
}

/// Times both arms over `reps` slow/fast rep *pairs*, interleaved so a
/// host frequency or thermal drift during the measurement biases both
/// arms alike instead of whichever arm ran last. The simulator is
/// deterministic, so every rep of an arm is the same run — the best
/// (minimum) rep wall time per arm is the least noisy estimate of its
/// true cost.
fn measure(
    machine: MachineConfig,
    built: &BuiltWorkload,
    kernel: &KernelConfig,
    limits: RunLimits,
    reps: u32,
) -> (Timed, Timed) {
    let mut slow_wall = f64::INFINITY;
    let mut fast_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let (w, slow_out, slow_sys) = run_once(machine, built, kernel, limits, false);
        slow_wall = slow_wall.min(w);
        let (w, fast_out, fast_sys) = run_once(machine, built, kernel, limits, true);
        fast_wall = fast_wall.min(w);
        last = Some((slow_out, slow_sys, fast_out, fast_sys));
    }
    let (slow_out, slow_sys, fast_out, fast_sys) = last.expect("reps >= 1");
    (
        Timed::finish(slow_wall, slow_out, &slow_sys),
        Timed::finish(fast_wall, fast_out, &fast_sys),
    )
}

/// Runs one workload regime fast-off/fast-on, checks bit-identity, and
/// writes its fields into the JSON object. Returns the speedup.
fn bench_case(
    name: &str,
    workload: Workload,
    kernel: &KernelConfig,
    args: &Args,
    w: &mut ObjWriter,
) -> f64 {
    let reps = args.reps;
    let machine = MachineConfig::cortex_a9_scaled();
    let built = workload.build(args.scale);
    // Size the watchdog off an untimed sighting run.
    let (mut probe, _) = boot(machine, &built.image, kernel).expect("boot");
    let sighting = run(
        &mut probe,
        RunLimits::from_golden(500_000_000, kernel.tick_period),
    );
    let golden_cycles = probe.cycles();
    assert!(
        matches!(sighting, RunOutcome::Exited { code: 0, .. }),
        "{name}: sighting run did not exit cleanly: {sighting:?}"
    );
    let limits = RunLimits::from_golden(golden_cycles, kernel.tick_period);

    eprintln!("bench_microarch: {name} ({workload}), {reps} interleaved slow/fast rep pairs…");
    let (slow, fast) = measure(machine, &built, kernel, limits, reps);

    // The transparency contract: memoization changes wall time only.
    assert_eq!(slow.outcome, fast.outcome, "{name}: outcome diverged");
    assert_eq!(slow.counters, fast.counters, "{name}: counters diverged");
    assert_eq!(
        slow.fingerprint, fast.fingerprint,
        "{name}: final machine state diverged"
    );

    let slow_rate = slow.instructions as f64 / slow.wall_s.max(1e-9);
    let fast_rate = fast.instructions as f64 / fast.wall_s.max(1e-9);
    let speedup = fast_rate / slow_rate.max(1e-9);
    w.u64_field(&format!("{name}_cycles"), golden_cycles)
        .u64_field(&format!("{name}_instructions"), slow.instructions)
        .f64_field(&format!("{name}_slow_steps_per_s"), slow_rate)
        .f64_field(&format!("{name}_fast_steps_per_s"), fast_rate)
        .f64_field(&format!("{name}_speedup"), speedup)
        .f64_field(&format!("{name}_uop_hit_rate"), fast.uop_hit_rate)
        .u64_field(&format!("{name}_latch_hits"), fast.latch_hits)
        .u64_field(&format!("{name}_line_hits"), fast.line_hits);
    println!(
        "{name} ({}): {:.0} → {:.0} steps/s  ({speedup:.2}x, µop hit rate {:.1}%, {} latch hits)",
        workload.name(),
        slow_rate,
        fast_rate,
        100.0 * fast.uop_hit_rate,
        fast.latch_hits,
    );
    speedup
}

fn main() {
    let args = parse_args();
    let mut w = ObjWriter::new();
    w.str_field("bench", "microarch").str_field(
        "scale",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
        },
    );

    // Compute-heavy: CRC32's tight byte loop under the default kernel.
    let compute = bench_case(
        "compute",
        Workload::Crc32,
        &KernelConfig::default(),
        &args,
        &mut w,
    );

    // Syscall-heavy: QSort with the timer tick 8× faster, so the run is
    // dominated by kernel entries/exits (each clears the latches).
    let busy_kernel = KernelConfig {
        tick_period: KernelConfig::default().tick_period / 8,
        ..KernelConfig::default()
    };
    let syscall = bench_case("syscall", Workload::Qsort, &busy_kernel, &args, &mut w);

    let json = w.finish();
    std::fs::write(&args.out, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));
    println!("written to {}", args.out.display());

    if args.require > 0.0 && compute < args.require {
        eprintln!(
            "FAIL: compute-heavy speedup {compute:.2}x below the required {:.2}x \
             (syscall-heavy was {syscall:.2}x)",
            args.require
        );
        std::process::exit(1);
    }
}

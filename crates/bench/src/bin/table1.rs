//! Table I — simulation throughput of different abstraction-layer models.
//!
//! Reproduces the mechanism behind the paper's Table I with this repo's
//! own layers: native host execution ("Software"), the atomic functional
//! model ("Architecture") and the detailed microarchitectural model
//! ("Microarchitecture"). The RTL row is not reproducible here (no RTL
//! model exists in this repo, exactly as none existed in the paper's gem5
//! setup) and is reported from the paper.

use sea_core::analysis::report::table;
use sea_core::workloads::{Scale, Workload};
use sea_core::{kernel::KernelConfig, platform::golden_run, MachineConfig};

fn measure(machine: MachineConfig) -> f64 {
    let built = Workload::MatMul.build(Scale::Default);
    let t0 = std::time::Instant::now();
    let g = golden_run(machine, &built.image, &KernelConfig::default(), 500_000_000).unwrap();
    g.cycles as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let _ = sea_bench::parse_options();
    // Native: the host runs the same matrix multiply directly.
    let a = sea_core::workloads::input::random_floats(1, 24 * 24);
    let b = sea_core::workloads::input::random_floats(2, 24 * 24);
    let t0 = std::time::Instant::now();
    let mut sink = 0f32;
    let reps = 2000;
    for _ in 0..reps {
        let c = sea_core::workloads::bench::matmul::reference(&a, &b, 24);
        sink += c[0];
    }
    std::hint::black_box(sink);
    // ~8 host "cycles" of work per MAC is immaterial; report ops/sec as a
    // cycles/sec stand-in the way Table I compares orders of magnitude.
    let native = (reps * 24 * 24 * 24 * 2) as f64 / t0.elapsed().as_secs_f64();

    let atomic = measure(MachineConfig::cortex_a9().atomic());
    let detailed = measure(MachineConfig::cortex_a9());

    let fmt = |v: f64| format!("{v:.2e}");
    println!("Table I — performance of different abstraction-layer models\n");
    println!(
        "{}",
        table(
            &[
                "Abstraction layer",
                "Model",
                "cycles/sec (measured)",
                "paper (gem5 era)"
            ],
            &[
                vec![
                    "Software (native)".into(),
                    "host CPU".into(),
                    fmt(native),
                    "2e9".into()
                ],
                vec![
                    "Architecture".into(),
                    "SEA atomic model".into(),
                    fmt(atomic),
                    "2e7".into()
                ],
                vec![
                    "Microarchitecture".into(),
                    "SEA detailed model".into(),
                    fmt(detailed),
                    "2e5".into()
                ],
                vec![
                    "RTL".into(),
                    "NCSIM (paper-reported; no RTL model in this repo)".into(),
                    "-".into(),
                    "6e2".into()
                ],
            ],
        )
    );
    println!("ordering check: native > atomic > detailed, as in the paper.");
}

//! Table II — summary of setup attributes (beam platform vs simulator).

use sea_core::analysis::report::table;
use sea_core::{setup_rows, MachineConfig};

fn main() {
    let opts = sea_bench::parse_options();
    println!("Table II — summary of setup attributes\n");
    let rows: Vec<Vec<String>> = setup_rows(&MachineConfig::cortex_a9())
        .into_iter()
        .map(|r| vec![r.property.to_string(), r.beam, r.sim])
        .collect();
    println!("{}", table(&["Property", "Beam", "SEA model"], &rows));
    println!("* see the paper's Table II caveats (pipeline resemblance; disabled 2nd core).");
    let m = opts.study.machine;
    println!(
        "\ncampaign profile runs the uniformly scaled machine: L1 {} KB, L2 {} KB\n(paired with the scaled inputs; see DESIGN.md §1 and EXPERIMENTS.md)",
        m.l1d.size_bytes / 1024,
        m.l2.size_bytes / 1024
    );
}

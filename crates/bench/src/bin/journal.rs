//! `journal` — offline export and audit of campaign journals.
//!
//! The campaigns write crash-consistent binary `.seaj` journals by
//! default (see README "Durability"). This binary works on those files
//! without running anything:
//!
//! * `journal export FILE` — decode a `.seaj` journal to its lossless
//!   JSON-Lines form on stdout (byte-identical to what the same campaign
//!   would have written with `--journal-format jsonl`). A JSONL journal
//!   passes through unchanged, so the command is format-agnostic.
//! * `journal audit FILE` — print the journal's identity header, record
//!   count, valid byte length, and torn-tail state, then exit 0 if the
//!   valid prefix is resumable and 1 if the file is corrupt beyond its
//!   header.
//!
//! Usage: `journal export|audit FILE`

use sea_core::durable::{self, SeajError};
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match argv.as_slice() {
        [cmd, path] if cmd == "export" || cmd == "audit" => (cmd.as_str(), path),
        _ => {
            eprintln!("usage: journal export|audit FILE");
            return ExitCode::from(2);
        }
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("journal: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        "export" => export(path, &bytes),
        _ => audit(path, &bytes),
    }
}

fn export(path: &str, bytes: &[u8]) -> ExitCode {
    let jsonl = if bytes.starts_with(&durable::SEAJ_MAGIC) {
        match durable::export_jsonl(bytes) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("journal: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Already JSONL: emit the complete-line prefix so a torn tail
        // never leaks a partial record into the export.
        bytes[..durable::jsonl_tail_offset(bytes)].to_vec()
    };
    let mut out = std::io::stdout().lock();
    if out.write_all(&jsonl).is_err() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn audit(path: &str, bytes: &[u8]) -> ExitCode {
    if !bytes.starts_with(&durable::SEAJ_MAGIC) {
        let valid = durable::jsonl_tail_offset(bytes);
        let torn = bytes.len() - valid;
        println!("format:      jsonl");
        println!(
            "lines:       {}",
            bytes[..valid].iter().filter(|&&b| b == b'\n').count()
        );
        println!("valid bytes: {valid}");
        println!("torn bytes:  {torn}");
        return ExitCode::SUCCESS;
    }
    let scan = match durable::scan(bytes) {
        Ok(s) => s,
        Err(e @ (SeajError::NotSeaj | SeajError::Version(_) | SeajError::CorruptHeader(_))) => {
            eprintln!("journal: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("format:      seaj v{}", durable::SEAJ_VERSION);
    match std::str::from_utf8(scan.header)
        .ok()
        .and_then(|h| sea_core::trace::json::parse(h).ok())
    {
        Some(header) => {
            for key in ["kind", "workload", "seed", "cfg", "golden", "total"] {
                if let Some(v) = header.get(key) {
                    let rendered = v
                        .as_str()
                        .map(str::to_string)
                        .or_else(|| v.as_u64().map(|n| n.to_string()))
                        .unwrap_or_else(|| format!("{v:?}"));
                    println!("{key:<12} {rendered}");
                }
            }
        }
        None => println!("header:      (opaque, {} bytes)", scan.header.len()),
    }
    println!("records:     {}", scan.records.len());
    println!("last seq:    {}", scan.last_seq);
    println!("valid bytes: {}", scan.valid_len);
    println!("torn bytes:  {}", scan.torn_bytes);
    if scan.torn_bytes > 0 {
        println!("state:       torn tail (resume will truncate and continue)");
    } else {
        println!("state:       clean");
    }
    ExitCode::SUCCESS
}

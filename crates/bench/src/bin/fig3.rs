//! Fig 3 — beam FIT rates (SDC / AppCrash / SysCrash) per benchmark.

use sea_core::analysis::report::grouped_bars;
use sea_core::beam::run_session;
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let mut items = Vec::new();
    for &w in &opts.suite {
        eprintln!("  {w}...");
        let built = w.build(opts.study.scale);
        let cfg = opts.study.beam_config_for(w);
        let r = run_session(w.name(), &built, &cfg, opts.study.beam_strikes).expect("session");
        items.push((
            w.name().to_string(),
            vec![
                r.fit(FaultClass::Sdc),
                r.fit(FaultClass::AppCrash),
                r.fit(FaultClass::SysCrash),
            ],
        ));
    }
    // Beam-only artifact: no injection-measured AVF to compare against, so
    // the report carries the predicted column alone.
    sea_bench::write_profile_report(&opts, &[]);
    println!(
        "{}",
        grouped_bars(
            "Fig 3 — beam FIT rates per benchmark (failures / 10^9 h)",
            &items,
            &["SDC", "AppCrash", "SysCrash"],
            48,
        )
    );
    println!("expected shape: SysCrash dominates for most benchmarks; FFT/Qsort lean AppCrash.");
}

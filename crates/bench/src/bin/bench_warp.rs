//! `bench_warp` — measures the two-tier execution engine and records it
//! as `BENCH_warp.json`.
//!
//! Two measurements:
//!
//! 1. **Prefix tier** (the headline `prefix_speedup`, what `--require`
//!    gates on): steps/sec of the functional warp tier (fused basic-block
//!    traces, atomic memory) against detailed stepping over the same
//!    fault-free prefix of the same booted machine. This is the raw cost
//!    ratio between the two tiers.
//! 2. **End-to-end campaign** (`campaign_speedup`): a small
//!    checkpoint-sparse injection campaign with the warp cursor off and
//!    on. The cursor amortizes detailed prefix execution across each
//!    worker's cycle-sorted run block, so the campaign spends its time on
//!    post-injection suffixes instead of re-simulating prefixes. Both
//!    arms must produce identical per-component tallies — the bit-exact
//!    contract — which this binary asserts.
//!
//! Usage: `bench_warp [--reps N] [--tiny] [--samples N] [--out FILE]
//! [--require X]`
//!
//! `--require X` exits nonzero unless `prefix_speedup` ≥ X (CI smokes
//! `--require 5.0`, non-blocking).

use sea_core::injection::{run_campaign, CampaignConfig, WarpPolicy};
use sea_core::kernel::KernelConfig;
use sea_core::microarch::{StepOutcome, WarpConfig};
use sea_core::platform::{boot, run, RunLimits, RunOutcome};
use sea_core::trace::json::ObjWriter;
use sea_core::{MachineConfig, Scale, Workload};
use std::time::Instant;

struct Args {
    reps: u32,
    scale: Scale,
    samples: u32,
    out: std::path::PathBuf,
    require: f64,
}

fn parse_args() -> Args {
    let mut a = Args {
        reps: 5,
        // Full-scale inputs by default; tiny runs drown in timer noise.
        scale: Scale::Default,
        samples: 8,
        out: std::path::PathBuf::from("BENCH_warp.json"),
        require: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--reps" => {
                a.reps = need(i).parse().expect("--reps N");
                i += 2;
            }
            "--samples" => {
                a.samples = need(i).parse().expect("--samples N");
                i += 2;
            }
            "--out" => {
                a.out = need(i).into();
                i += 2;
            }
            "--require" => {
                a.require = need(i).parse().expect("--require X");
                i += 2;
            }
            "--tiny" => {
                a.scale = Scale::Tiny;
                i += 1;
            }
            other => panic!(
                "unknown flag `{other}` (usage: bench_warp [--reps N] [--tiny] \
                 [--samples N] [--out FILE] [--require X])"
            ),
        }
    }
    a
}

/// Prefix-tier measurement: detailed `step()` vs `run_warp` over the same
/// step budget from the same boot, interleaved reps, min wall per arm.
fn bench_prefix(workload: Workload, args: &Args, w: &mut ObjWriter) -> f64 {
    let machine = MachineConfig::cortex_a9_scaled();
    let kernel = KernelConfig::default();
    let built = workload.build(args.scale);

    // Sighting run: how many instructions the whole workload retires.
    let (mut probe, _) = boot(machine, &built.image, &kernel).expect("boot");
    let out = run(
        &mut probe,
        RunLimits::from_golden(500_000_000, kernel.tick_period),
    );
    assert!(
        matches!(out, RunOutcome::Exited { code: 0, .. }),
        "sighting run did not exit cleanly: {out:?}"
    );
    // Time half the run's steps: safely inside the fault-free prefix on
    // both tiers even though their cycle clocks drift apart.
    let budget = probe.cpu.counters.instructions / 2;

    eprintln!(
        "bench_warp: prefix ({workload}), {} interleaved rep pairs…",
        args.reps
    );
    let mut detailed_wall = f64::INFINITY;
    let mut warp_wall = f64::INFINITY;
    let mut warp_stats = None;
    for _ in 0..args.reps.max(1) {
        let (mut sys, _) = boot(machine, &built.image, &kernel).expect("boot");
        let t = Instant::now();
        for _ in 0..budget {
            sys.step();
        }
        detailed_wall = detailed_wall.min(t.elapsed().as_secs_f64());

        let (mut sys, _) = boot(machine, &built.image, &kernel).expect("boot");
        sys.warp_enable(WarpConfig::default());
        let t = Instant::now();
        assert_eq!(sys.run_warp(budget), StepOutcome::Executed);
        warp_wall = warp_wall.min(t.elapsed().as_secs_f64());
        warp_stats = sys.warp_stats();
    }
    let stats = warp_stats.expect("warp armed");
    let detailed_rate = budget as f64 / detailed_wall.max(1e-9);
    let warp_rate = budget as f64 / warp_wall.max(1e-9);
    let speedup = warp_rate / detailed_rate.max(1e-9);
    let lookups = stats.block_hits + stats.block_misses;
    let hit_rate = stats.block_hits as f64 / lookups.max(1) as f64;
    w.u64_field("prefix_steps", budget)
        .f64_field("prefix_detailed_steps_per_s", detailed_rate)
        .f64_field("prefix_warp_steps_per_s", warp_rate)
        .f64_field("prefix_speedup", speedup)
        .f64_field("prefix_block_hit_rate", hit_rate)
        .u64_field("prefix_trace_flushes", stats.flushes);
    println!(
        "prefix ({}): {:.0} → {:.0} steps/s  ({speedup:.2}x, block hit rate {:.1}%)",
        workload.name(),
        detailed_rate,
        warp_rate,
        100.0 * hit_rate,
    );
    speedup
}

/// End-to-end measurement: a checkpoint-sparse campaign, cursor off vs
/// on. Asserts identical tallies (the bit-exact contract) and returns the
/// wall-clock speedup.
fn bench_campaign(workload: Workload, args: &Args, w: &mut ObjWriter) -> f64 {
    let built = workload.build(args.scale);
    let cfg = |warp: bool| CampaignConfig {
        machine: MachineConfig::cortex_a9_scaled(),
        samples_per_component: args.samples,
        threads: 1,
        warp: warp.then(WarpPolicy::default),
        ..CampaignConfig::default()
    };
    eprintln!(
        "bench_warp: campaign ({workload}), {} samples/component, {} rep pairs…",
        args.samples, args.reps
    );
    let mut off_wall = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    let mut runs = 0;
    for _ in 0..args.reps.max(1) {
        let t = Instant::now();
        let off = run_campaign(workload.name(), &built, &cfg(false)).expect("campaign");
        off_wall = off_wall.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let on = run_campaign(workload.name(), &built, &cfg(true)).expect("campaign");
        on_wall = on_wall.min(t.elapsed().as_secs_f64());

        // The contract the `warp-equivalence` CI job holds at the journal
        // byte level: cursor clones change wall time, never outcomes.
        assert_eq!(
            off.per_component, on.per_component,
            "warp cursor changed campaign outcomes"
        );
        runs = on.total_injections();
    }
    let speedup = off_wall / on_wall.max(1e-9);
    w.u64_field("campaign_runs", runs)
        .f64_field("campaign_detailed_wall_s", off_wall)
        .f64_field("campaign_warp_wall_s", on_wall)
        .f64_field("campaign_speedup", speedup);
    println!(
        "campaign ({}): {off_wall:.2}s → {on_wall:.2}s  ({speedup:.2}x, {runs} runs)",
        workload.name(),
    );
    speedup
}

fn main() {
    let args = parse_args();
    let mut w = ObjWriter::new();
    w.str_field("bench", "warp").str_field(
        "scale",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
        },
    );

    let prefix = bench_prefix(Workload::Crc32, &args, &mut w);
    let campaign = bench_campaign(Workload::Crc32, &args, &mut w);

    let json = w.finish();
    std::fs::write(&args.out, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));
    println!("written to {}", args.out.display());

    if args.require > 0.0 && prefix < args.require {
        eprintln!(
            "FAIL: prefix speedup {prefix:.2}x below the required {:.2}x \
             (campaign speedup was {campaign:.2}x)",
            args.require
        );
        std::process::exit(1);
    }
}

//! `bench_snapshot` — measures the wall-clock speedup checkpoint/restore
//! gives injection runs and records it as `BENCH_snapshot.json`.
//!
//! Two measurements:
//!
//! 1. **Campaign**: the same full campaign twice — every run booted from
//!    reset, then with golden-run epoch checkpoints restored before each
//!    injection — verifying identical classifications (the sea-snapshot
//!    determinism contract). Injection cycles are uniform over the whole
//!    run here, so half the simulated work is post-injection suffix that
//!    no checkpoint can skip; the speedup ceiling is 2×.
//! 2. **Hot path**: injected runs whose cycles land in the second half of
//!    the golden run (median injection cycle = 75% — the "median ≥ half
//!    the golden run" regime where prefix sharing pays), from reset vs.
//!    from the nearest checkpoint, outcome-checked pairwise. This is the
//!    headline `speedup` field and what `--require` gates on.
//!
//! Usage: `bench_snapshot [--samples N] [--workload NAME] [--seed N]
//! [--interval CYCLES] [--out FILE] [--require X]`
//!
//! `--require X` exits nonzero unless the hot-path speedup is ≥ X
//! (CI gates on `--require 2`).

use sea_core::injection::{run_campaign, run_one, CampaignConfig, CheckpointPolicy, InjectionSpec};
use sea_core::microarch::Component;
use sea_core::platform::{golden_run_with_checkpoints, RunLimits};
use sea_core::trace::json::ObjWriter;
use sea_core::{Scale, Workload};
use std::time::Instant;

/// Deterministic spec sampler (xorshift64*) — sea-bench deliberately has
/// no RNG dependency of its own.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

struct Args {
    samples: u32,
    workload: Workload,
    seed: u64,
    interval: u64,
    out: std::path::PathBuf,
    require: f64,
}

fn parse_args() -> Args {
    let mut a = Args {
        samples: 40,
        workload: Workload::Crc32,
        seed: 0x5EA0_0C40,
        // Tiny-scale golden runs are ~50k cycles; 2048-cycle epochs keep
        // the residual prefix (the cycles re-stepped after a restore)
        // under ~2% of the run. Pass 0 for the recorder's auto interval.
        interval: 2048,
        out: std::path::PathBuf::from("BENCH_snapshot.json"),
        require: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--samples" => a.samples = need(i).parse().expect("--samples N"),
            "--seed" => a.seed = need(i).parse().expect("--seed N"),
            "--interval" => a.interval = need(i).parse().expect("--interval CYCLES"),
            "--out" => a.out = need(i).into(),
            "--require" => a.require = need(i).parse().expect("--require X"),
            "--workload" => {
                let name = need(i);
                a.workload = Workload::ALL
                    .into_iter()
                    .find(|w| w.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| panic!("unknown workload `{name}`"));
            }
            other => panic!(
                "unknown flag `{other}` (usage: bench_snapshot [--samples N] \
                 [--workload NAME] [--seed N] [--interval CYCLES] [--out FILE] [--require X])"
            ),
        }
        i += 2;
    }
    a
}

fn main() {
    let args = parse_args();
    let built = args.workload.build(Scale::Tiny);
    // Single-threaded so the two timings compare simulator work, not
    // scheduler noise.
    let cfg = CampaignConfig {
        samples_per_component: args.samples,
        seed: args.seed,
        threads: 1,
        ..CampaignConfig::default()
    };

    // --- Measurement 1: the full campaign, uniform injection cycles. ---
    eprintln!(
        "bench_snapshot: {} × {} injections/component, from reset…",
        args.workload, args.samples
    );
    let t0 = Instant::now();
    let reset = run_campaign(args.workload.name(), &built, &cfg).expect("reset campaign");
    let campaign_reset_wall = t0.elapsed().as_secs_f64();

    eprintln!("bench_snapshot: same campaign with checkpoint restore…");
    let mut ckpt_cfg = cfg.clone();
    ckpt_cfg.checkpoints = Some(CheckpointPolicy {
        dir: None,
        interval: args.interval,
    });
    let t1 = Instant::now();
    let ckpt = run_campaign(args.workload.name(), &built, &ckpt_cfg).expect("checkpoint campaign");
    let campaign_ckpt_wall = t1.elapsed().as_secs_f64();

    // The determinism contract: restore changes nothing but the clock.
    assert_eq!(
        reset.per_component, ckpt.per_component,
        "checkpointed campaign diverged from the reset campaign"
    );
    let campaign_stats = ckpt.checkpoints.expect("checkpointing was on");
    let campaign_speedup = campaign_reset_wall / campaign_ckpt_wall.max(1e-9);

    // --- Measurement 2: the hot path at median injection cycle ≥ half. ---
    let probe = sea_core::microarch::System::new(cfg.machine, sea_core::microarch::NullDevice);
    let (golden, ckpts) = golden_run_with_checkpoints(
        cfg.machine,
        &built.image,
        &cfg.kernel,
        cfg.golden_budget_cycles,
        args.interval,
    )
    .expect("golden run");
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);
    let mut rng = XorShift(args.seed | 1);
    let n = (args.samples as usize * Component::ALL.len()).max(1);
    let mut specs: Vec<InjectionSpec> = (0..n)
        .map(|i| {
            let component = Component::ALL[i % Component::ALL.len()];
            InjectionSpec {
                component,
                bit: rng.next() % probe.component_bits(component),
                // Uniform over the second half: median = 75% of the run.
                cycle: golden.cycles / 2 + rng.next() % golden.cycles.div_ceil(2),
            }
        })
        .collect();
    specs.sort_by_key(|s| s.cycle);

    eprintln!("bench_snapshot: {n} late-half injections, from reset…");
    let t2 = Instant::now();
    let out_reset: Vec<_> = specs
        .iter()
        .map(|&s| run_one(&built, &cfg, None, s, limits))
        .collect();
    let hot_reset_wall = t2.elapsed().as_secs_f64();
    eprintln!("bench_snapshot: same injections from the nearest checkpoint…");
    let t3 = Instant::now();
    let out_ckpt: Vec<_> = specs
        .iter()
        .map(|&s| run_one(&built, &cfg, Some(&ckpts), s, limits))
        .collect();
    let hot_ckpt_wall = t3.elapsed().as_secs_f64();
    assert_eq!(out_reset, out_ckpt, "restore path diverged from reset path");
    let hot_stats = ckpts.stats();
    let speedup = hot_reset_wall / hot_ckpt_wall.max(1e-9);
    let median_cycle = specs[specs.len() / 2].cycle;

    let mut w = ObjWriter::new();
    w.str_field("bench", "snapshot")
        .str_field("workload", args.workload.name())
        .str_field("scale", "tiny")
        .u64_field("golden_cycles", golden.cycles)
        // Hot path (median injection cycle ≥ half the golden run).
        .u64_field("injections", n as u64)
        .u64_field("median_injection_cycle", median_cycle)
        .f64_field(
            "median_cycle_frac",
            median_cycle as f64 / golden.cycles.max(1) as f64,
        )
        .f64_field("reset_wall_s", hot_reset_wall)
        .f64_field("checkpoint_wall_s", hot_ckpt_wall)
        .f64_field("speedup", speedup)
        .u64_field("epochs", ckpts.len() as u64)
        .u64_field("restores", hot_stats.restores)
        .u64_field("prefix_cycles_saved", hot_stats.prefix_cycles_saved)
        // Full campaign, uniform cycles (speedup ceiling 2×: half the
        // work is post-injection suffix).
        .u64_field("campaign_injections", reset.total_injections())
        .f64_field("campaign_reset_wall_s", campaign_reset_wall)
        .f64_field("campaign_checkpoint_wall_s", campaign_ckpt_wall)
        .f64_field("campaign_speedup", campaign_speedup)
        .u64_field("campaign_epochs", campaign_stats.epochs)
        .u64_field(
            "campaign_prefix_cycles_saved",
            campaign_stats.prefix_cycles_saved,
        );
    let json = w.finish();
    std::fs::write(&args.out, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));

    println!(
        "{}: golden {} cycles, {} epoch checkpoints",
        args.workload.name(),
        golden.cycles,
        ckpts.len(),
    );
    println!(
        "campaign (uniform cycles, {} injections): {:.3}s → {:.3}s  ({:.2}x, {} prefix cycles saved)",
        reset.total_injections(),
        campaign_reset_wall,
        campaign_ckpt_wall,
        campaign_speedup,
        campaign_stats.prefix_cycles_saved,
    );
    println!(
        "hot path (median cycle {:.0}% of run, {} injections): {:.3}s → {:.3}s  ({:.2}x, {} prefix cycles saved)",
        100.0 * median_cycle as f64 / golden.cycles.max(1) as f64,
        n,
        hot_reset_wall,
        hot_ckpt_wall,
        speedup,
        hot_stats.prefix_cycles_saved,
    );
    println!("written to {}", args.out.display());

    if args.require > 0.0 && speedup < args.require {
        eprintln!(
            "FAIL: hot-path speedup {speedup:.2}x below the required {:.2}x",
            args.require
        );
        std::process::exit(1);
    }
}

//! Ablation — unmodeled-platform cross-section sweep.
//!
//! Sweeps the PL-bridge (SysCrash) cross-section to show how the beam's
//! System-Crash excess (Fig 8) tracks the unmodeled-logic assumption, and
//! that SDC rates are insensitive to it.

use sea_core::analysis::report::table;
use sea_core::beam::{fit_to_sigma, run_session};
use sea_core::FaultClass;

fn main() {
    let opts = sea_bench::parse_options();
    let w = opts.suite[0];
    let built = w.build(opts.study.scale);
    let mut rows = Vec::new();
    for fit_sys in [0.0, 13.0, 26.0, 52.0, 104.0] {
        let mut cfg = opts.study.beam_config();
        cfg.unmodeled.sigma_syscrash = fit_to_sigma(fit_sys);
        let r = run_session(w.name(), &built, &cfg, opts.study.beam_strikes).expect("session");
        rows.push(vec![
            format!("{fit_sys:.0}"),
            format!("{:.2}", r.fit(FaultClass::Sdc)),
            format!("{:.2}", r.fit(FaultClass::AppCrash)),
            format!("{:.2}", r.fit(FaultClass::SysCrash)),
            format!("{:.2}", r.total_fit()),
        ]);
    }
    println!("Ablation — unmodeled platform logic sweep ({w})\n");
    println!(
        "{}",
        table(
            &[
                "sigma_sys (FIT)",
                "beam SDC",
                "beam AppCrash",
                "beam SysCrash",
                "beam total"
            ],
            &rows
        )
    );
    println!("expected: SysCrash tracks the sweep ~linearly; SDC stays flat —");
    println!("the beam/injection SysCrash gap is a platform property, not a core one.");
}

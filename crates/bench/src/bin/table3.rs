//! Table III — inputs and characteristics of the 13 benchmarks.

use sea_core::analysis::report::table;
use sea_core::Workload;

fn main() {
    let _ = sea_bench::parse_options();
    println!("Table III — benchmark inputs and characteristics\n");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let m = w.meta();
            vec![
                w.name().to_string(),
                m.paper_input.to_string(),
                m.scaled_input.to_string(),
                m.characteristics.to_string(),
                m.footprint.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Benchmark",
                "Paper input",
                "Scaled input",
                "Characteristics",
                "Footprint"
            ],
            &rows
        )
    );
}

//! End-to-end supervision tests: panic isolation, quarantine + replay,
//! journal resume, and worker respawn on a tiny workload.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use sea_durable::RECORD_OVERHEAD;
use sea_injection::supervisor::journal_file;
use sea_injection::{
    load_quarantine, run_campaign, run_one_caught, CampaignConfig, CampaignError, InjectionSpec,
    JournalFormat, JournalSpec,
};
use sea_microarch::Component;
use sea_workloads::{Scale, Workload};

/// A fresh scratch directory under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_supervisor_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cfg() -> CampaignConfig {
    CampaignConfig {
        samples_per_component: 4,
        components: vec![Component::RegFile, Component::L1D],
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn deterministic_panic_hook(index: u64, _spec: &InjectionSpec) {
    if index == 3 {
        panic!("induced deterministic panic at index 3");
    }
}

#[test]
fn panicking_run_is_quarantined_and_the_campaign_completes() {
    let dir = scratch("quarantine");
    let qfile = dir.join("anomalies.jsonl");
    let w = Workload::Crc32.build(Scale::Tiny);
    let mut cfg = tiny_cfg();
    cfg.supervisor.panic_hook = Some(deterministic_panic_hook);
    cfg.supervisor.quarantine = Some(qfile.clone());

    let res = run_campaign("CRC32", &w, &cfg).unwrap();

    // Seven of eight runs classified; the eighth is an anomaly, not a
    // crash of the whole campaign.
    assert_eq!(res.total_injections(), 7);
    assert_eq!(res.anomalies.len(), 1);
    let a = &res.anomalies[0];
    assert_eq!(a.index, 3);
    assert!(a.deterministic, "every attempt panicked");
    assert_eq!(a.attempts, cfg.supervisor.max_attempts);
    assert!(a.panic_msg.contains("induced deterministic panic"));
    assert!(
        a.postmortem.contains("state_fingerprint="),
        "postmortem carries the architectural fingerprint:\n{}",
        a.postmortem
    );
    assert_eq!(res.supervision.quarantined, 1);
    assert_eq!(res.supervision.flaky_recovered, 0);
    assert_eq!(res.supervision.completed, 7);

    // The quarantine file round-trips the anomaly (replay's input).
    let loaded = load_quarantine(&qfile).unwrap();
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0].index, a.index);
    assert_eq!(loaded[0].spec, a.spec);
    assert_eq!(loaded[0].panic_msg, a.panic_msg);
    assert_eq!(loaded[0].postmortem, a.postmortem);

    // Deterministic replay: the same (workload, config, spec) reproduces
    // the panic and the terminal machine state.
    let golden =
        sea_platform::golden_run(cfg.machine, &w.image, &cfg.kernel, cfg.golden_budget_cycles)
            .unwrap();
    let limits = sea_platform::RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);
    let caught = run_one_caught(&w, &cfg, None, loaded[0].index, loaded[0].spec, limits)
        .expect_err("deterministic anomaly must panic again");
    assert_eq!(caught.message, a.panic_msg);
    assert_eq!(caught.postmortem, a.postmortem, "terminal state reproduced");

    let _ = fs::remove_dir_all(&dir);
}

static FLAKY_FIRED: AtomicBool = AtomicBool::new(false);

fn flaky_panic_hook(index: u64, _spec: &InjectionSpec) {
    if index == 5 && !FLAKY_FIRED.swap(true, Ordering::SeqCst) {
        panic!("induced flaky panic at index 5");
    }
}

#[test]
fn flaky_panic_recovers_on_retry_and_still_leaves_a_record() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let mut cfg = tiny_cfg();
    cfg.supervisor.panic_hook = Some(flaky_panic_hook);

    let res = run_campaign("CRC32", &w, &cfg).unwrap();

    // The retry produced a classification, so no run is missing…
    assert_eq!(res.total_injections(), 8);
    // …but the anomaly is still on the record, marked non-deterministic.
    assert_eq!(res.anomalies.len(), 1);
    assert!(!res.anomalies[0].deterministic);
    assert_eq!(res.supervision.flaky_recovered, 1);
    assert_eq!(res.supervision.quarantined, 1);
}

#[test]
fn resumed_campaign_reproduces_the_uninterrupted_result() {
    let dir = scratch("resume");
    let w = Workload::Crc32.build(Scale::Tiny);

    // Reference: the same campaign with no journal at all.
    let reference = run_campaign("CRC32", &w, &tiny_cfg()).unwrap();

    // A clean journaled run (binary .seaj by default), which we then cut
    // mid-record to simulate a kill during an append: keep four complete
    // records plus a 7-byte torn fragment of the fifth.
    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec::new(dir.clone()));
    run_campaign("CRC32", &w, &cfg).unwrap();
    let jpath = journal_file(&dir, "inject", "CRC32", JournalFormat::Binary);
    let clean = fs::read(&jpath).unwrap();
    let scan = sea_durable::scan(&clean).unwrap();
    assert_eq!(scan.records.len(), 8, "8 outcome records");
    assert_eq!(scan.torn_bytes, 0);
    let tail: usize = scan.records[4..]
        .iter()
        .map(|r| r.len() + RECORD_OVERHEAD)
        .sum();
    let cut = scan.valid_len - tail + 7;
    fs::write(&jpath, &clean[..cut]).unwrap();

    // Resume: the torn fragment is truncated, the four journaled runs are
    // skipped, and the rest re-simulated.
    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..JournalSpec::new(dir.clone())
    });
    let resumed = run_campaign("CRC32", &w, &cfg).unwrap();

    assert_eq!(resumed.supervision.resumed, 4);
    assert_eq!(resumed.supervision.completed, 8);
    assert_eq!(resumed.per_component, reference.per_component);
    assert_eq!(resumed.anomalies, reference.anomalies);
    assert_eq!(resumed.golden_cycles, reference.golden_cycles);
    let audit = resumed.journal.expect("journal audit");
    assert_eq!(audit.resumed, 4);
    assert_eq!(audit.appended, 4);
    assert_eq!(audit.torn_bytes, 7);
    assert!(!audit.poisoned);

    // Crash consistency: the resumed journal is byte-identical to the
    // uninterrupted one.
    assert_eq!(fs::read(&jpath).unwrap(), clean);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resumed_jsonl_campaign_truncates_the_torn_tail_too() {
    let dir = scratch("resume_jsonl");
    let w = Workload::Crc32.build(Scale::Tiny);
    let jsonl = JournalSpec {
        format: JournalFormat::Jsonl,
        ..JournalSpec::new(dir.clone())
    };

    let mut cfg = tiny_cfg();
    cfg.journal = Some(jsonl.clone());
    run_campaign("CRC32", &w, &cfg).unwrap();
    let jpath = journal_file(&dir, "inject", "CRC32", JournalFormat::Jsonl);
    let clean = fs::read(&jpath).unwrap();
    let text = std::str::from_utf8(&clean).unwrap();
    assert_eq!(text.lines().count(), 9, "header + 8 outcomes:\n{text}");
    // Keep the header, four complete lines, and half of the fifth.
    let cut = text.match_indices('\n').nth(4).map(|(i, _)| i + 1).unwrap() + 4;
    fs::write(&jpath, &clean[..cut]).unwrap();

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..jsonl
    });
    let resumed = run_campaign("CRC32", &w, &cfg).unwrap();

    assert_eq!(resumed.supervision.resumed, 4);
    assert_eq!(resumed.supervision.completed, 8);
    let audit = resumed.journal.expect("journal audit");
    assert_eq!(audit.resumed, 4);
    assert_eq!(audit.torn_bytes, 4);
    assert_eq!(fs::read(&jpath).unwrap(), clean);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_recovers_the_prefix_before_a_flipped_record_byte() {
    let dir = scratch("bitflip");
    let w = Workload::Crc32.build(Scale::Tiny);

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec::new(dir.clone()));
    run_campaign("CRC32", &w, &cfg).unwrap();
    let jpath = journal_file(&dir, "inject", "CRC32", JournalFormat::Binary);
    let clean = fs::read(&jpath).unwrap();
    let scan = sea_durable::scan(&clean).unwrap();
    // Flip a byte inside the sixth record's payload: the record CRC must
    // stop the walk there, and resume keeps the five records before it.
    let tail: usize = scan.records[5..]
        .iter()
        .map(|r| r.len() + RECORD_OVERHEAD)
        .sum();
    let mut corrupt = clean.clone();
    let victim = scan.valid_len - tail + RECORD_OVERHEAD / 2;
    corrupt[victim] ^= 0x01;
    fs::write(&jpath, &corrupt).unwrap();

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..JournalSpec::new(dir.clone())
    });
    let resumed = run_campaign("CRC32", &w, &cfg).unwrap();

    assert_eq!(resumed.supervision.resumed, 5);
    assert_eq!(resumed.supervision.completed, 8);
    let audit = resumed.journal.expect("journal audit");
    assert!(audit.torn_bytes > 0, "the corrupt suffix was truncated");
    assert_eq!(fs::read(&jpath).unwrap(), clean);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_an_empty_journal_restarts_cleanly() {
    let dir = scratch("empty");
    let w = Workload::Crc32.build(Scale::Tiny);
    let jpath = journal_file(&dir, "inject", "CRC32", JournalFormat::Binary);
    fs::write(&jpath, b"").unwrap();

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..JournalSpec::new(dir.clone())
    });
    let res = run_campaign("CRC32", &w, &cfg).unwrap();
    assert_eq!(res.supervision.resumed, 0);
    assert_eq!(res.supervision.completed, 8);
    let audit = res.journal.expect("journal audit");
    assert_eq!(audit.appended, 8);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_file_that_is_not_a_seaj_journal() {
    let dir = scratch("notseaj");
    let w = Workload::Crc32.build(Scale::Tiny);
    let jpath = journal_file(&dir, "inject", "CRC32", JournalFormat::Binary);
    fs::write(&jpath, b"this is not a journal, it is a text file\n").unwrap();

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..JournalSpec::new(dir.clone())
    });
    match run_campaign("CRC32", &w, &cfg) {
        Err(CampaignError::Journal(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("corrupt"), "actionable error: {msg}");
        }
        other => panic!("expected a journal corruption error, got {other:?}"),
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_journal_from_a_different_campaign() {
    let dir = scratch("mismatch");
    let w = Workload::Crc32.build(Scale::Tiny);

    let mut cfg = tiny_cfg();
    cfg.journal = Some(JournalSpec::new(dir.clone()));
    run_campaign("CRC32", &w, &cfg).unwrap();

    // Same journal, different seed: the spec sequence would not line up,
    // so the header check must refuse to resume.
    let mut cfg = tiny_cfg();
    cfg.seed ^= 1;
    cfg.journal = Some(JournalSpec {
        resume: true,
        ..JournalSpec::new(dir.clone())
    });
    match run_campaign("CRC32", &w, &cfg) {
        Err(CampaignError::Journal(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("seed"), "mismatch names the field: {msg}");
        }
        other => panic!("expected a journal header error, got {other:?}"),
    }

    let _ = fs::remove_dir_all(&dir);
}

static WORKER_KILLED: AtomicBool = AtomicBool::new(false);

fn kill_worker_once(_worker: usize, _index: u64) {
    if !WORKER_KILLED.swap(true, Ordering::SeqCst) {
        panic!("induced worker death");
    }
}

#[test]
fn dead_worker_is_respawned_and_no_run_is_lost() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let mut cfg = tiny_cfg();
    cfg.threads = 2;
    cfg.supervisor.worker_hook = Some(kill_worker_once);

    let res = run_campaign("CRC32", &w, &cfg).unwrap();

    assert_eq!(res.total_injections(), 8, "the in-flight run was requeued");
    assert_eq!(res.supervision.worker_respawns, 1);
    assert_eq!(res.supervision.lost, 0);
    assert!(res.anomalies.is_empty(), "a worker death is not an anomaly");
}

//! The execution-fast-path correctness bar at the campaign level: arming
//! the µop cache + translation latches must never change what a campaign
//! computes — every injected run classifies identically, and a journaled
//! campaign produces byte-identical journal files.
//!
//! (The microarchitectural half of this bar — step-for-step lockstep of
//! counters and deep state fingerprints under flips in every component —
//! lives in `sea-microarch/tests/fastpath.rs`.)

use proptest::prelude::*;
use sea_injection::{
    run_campaign, run_one, CampaignConfig, CheckpointPolicy, InjectionSpec, JournalSpec,
};
use sea_microarch::Component;
use sea_platform::{golden_run, GoldenRun, RunLimits};
use sea_workloads::{BuiltWorkload, Scale, Workload};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_fast_eq_{}_{}", name, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cfg() -> CampaignConfig {
    CampaignConfig {
        samples_per_component: 5,
        // Fetch state, translation state, and the L2 (which holds cached
        // page-table lines after hardware walks) — the arrays the fast
        // path memoizes across.
        components: vec![Component::L1I, Component::DTlb, Component::L2],
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// Shared golden run for the property tests (booting per-case would
/// dominate the suite's runtime).
fn fixture() -> &'static (BuiltWorkload, GoldenRun) {
    static FIXTURE: OnceLock<(BuiltWorkload, GoldenRun)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = Workload::Crc32.build(Scale::Tiny);
        let cfg = tiny_cfg();
        let golden = golden_run(cfg.machine, &w.image, &cfg.kernel, cfg.golden_budget_cycles)
            .expect("tiny golden run");
        (w, golden)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random fault — any component, any bit, any strike cycle —
    /// classifies identically with the fast path on and off, down to the
    /// struck array and line-validity metadata.
    #[test]
    fn random_faults_classify_identically(
        which in 0usize..Component::ALL.len(),
        bit_frac in 0.0f64..1.0,
        cycle_frac in 0.0f64..1.0,
    ) {
        let (w, golden) = fixture();
        let slow = tiny_cfg();
        let fast = CampaignConfig { fast_path: true, ..tiny_cfg() };
        let component = Component::ALL[which];
        let bits = sea_microarch::System::new(slow.machine, sea_microarch::NullDevice)
            .component_bits(component);
        let spec = InjectionSpec {
            component,
            bit: ((bits as f64 * bit_frac) as u64).min(bits - 1),
            cycle: ((golden.cycles as f64 * cycle_frac) as u64).min(golden.cycles - 1),
        };
        let limits = RunLimits::from_golden(golden.cycles, slow.kernel.tick_period);
        let a = run_one(w, &slow, None, spec, limits);
        let b = run_one(w, &fast, None, spec, limits);
        prop_assert_eq!(a, b, "fast/slow outcome mismatch for {:?}", spec);
    }
}

#[test]
fn fastpath_campaign_journal_is_byte_identical_to_slow_campaign() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let slow_dir = scratch("slow");
    let fast_dir = scratch("fast");

    let mut slow = tiny_cfg();
    slow.journal = Some(JournalSpec::new(slow_dir.clone()));
    let a = run_campaign("CRC32", &w, &slow).unwrap();

    let mut fast = tiny_cfg();
    fast.fast_path = true;
    fast.journal = Some(JournalSpec::new(fast_dir.clone()));
    let b = run_campaign("CRC32", &w, &fast).unwrap();

    // Identical classifications and tallies…
    assert_eq!(a.per_component, b.per_component);
    assert_eq!(a.golden_cycles, b.golden_cycles);
    // …and byte-identical journals (same config hash: `fast_path` is a
    // runtime-only knob, like `threads` and `checkpoints`).
    let ja = fs::read(slow_dir.join("crc32.inject.seaj")).unwrap();
    let jb = fs::read(fast_dir.join("crc32.inject.seaj")).unwrap();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "fast-path journal differs from slow-path journal");

    let _ = fs::remove_dir_all(&slow_dir);
    let _ = fs::remove_dir_all(&fast_dir);
}

#[test]
fn fastpath_composes_with_checkpoint_restore() {
    // The fast path must arm correctly on machines restored from
    // checkpoints, not just on freshly booted ones.
    let w = Workload::MatMul.build(Scale::Tiny);

    let plain = tiny_cfg();
    let a = run_campaign("MatMul", &w, &plain).unwrap();

    let mut both = tiny_cfg();
    both.fast_path = true;
    both.checkpoints = Some(CheckpointPolicy {
        dir: None,
        interval: 10_000,
    });
    let b = run_campaign("MatMul", &w, &both).unwrap();
    let stats = b.checkpoints.expect("checkpointing was on");
    assert!(stats.restores > 0, "no injection restored a checkpoint");

    assert_eq!(a.per_component, b.per_component);
}

//! End-to-end injection-campaign smoke tests on a tiny workload.

use sea_injection::{run_campaign, run_one, CampaignConfig, InjectionSpec};
use sea_microarch::Component;
use sea_platform::{FaultClass, RunLimits};
use sea_workloads::{Scale, Workload};

fn tiny_cfg(samples: u32) -> CampaignConfig {
    CampaignConfig {
        samples_per_component: samples,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_over_all_components_produces_all_counts() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = tiny_cfg(25);
    let res = run_campaign("CRC32", &w, &cfg).unwrap();
    assert_eq!(res.per_component.len(), 6);
    assert_eq!(res.total_injections(), 25 * 6);
    for c in &res.per_component {
        assert_eq!(c.counts.total(), 25);
        assert!(c.counts.avf() <= 1.0);
        assert!(c.error_margin() > 0.0 && c.error_margin() < 1.0);
    }
    // Injections must produce at least some non-masked outcomes somewhere.
    let non_masked: u64 = res
        .per_component
        .iter()
        .map(|c| c.counts.total() - c.counts.masked)
        .sum();
    assert!(
        non_masked > 0,
        "150 injections with zero effect is implausible"
    );
}

#[test]
fn campaigns_are_deterministic_for_a_fixed_seed() {
    let w = Workload::MatMul.build(Scale::Tiny);
    let cfg = CampaignConfig {
        samples_per_component: 10,
        components: vec![Component::RegFile, Component::L1D],
        ..CampaignConfig::default()
    };
    let a = run_campaign("MatMul", &w, &cfg).unwrap();
    let b = run_campaign("MatMul", &w, &cfg).unwrap();
    for (x, y) in a.per_component.iter().zip(&b.per_component) {
        assert_eq!(x.counts, y.counts);
    }
}

#[test]
fn directed_injection_into_dead_register_is_masked() {
    // r11 high bit very late in the run: the value is dead; must be masked.
    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = tiny_cfg(1);
    let limits = RunLimits {
        max_cycles: 50_000_000,
        tick_window: 250_000,
        wall_ms: 0,
    };
    // Bit in the FP bank (s31), never used by CRC32.
    let spec = InjectionSpec {
        component: Component::RegFile,
        bit: (16 + 31) * 32 + 7,
        cycle: 60_000,
    };
    let out = run_one(&w, &cfg, None, spec, limits);
    assert_eq!(out.class, FaultClass::Masked);
}

#[test]
fn directed_injection_into_live_crc_accumulator_corrupts_output() {
    // CRC32 keeps its running CRC in r4 for the whole main loop; flipping
    // any bit of r4 mid-loop must surface as an SDC.
    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = tiny_cfg(1);
    let g = sea_platform::golden_run(cfg.machine, &w.image, &cfg.kernel, 100_000_000).unwrap();
    let limits = RunLimits {
        max_cycles: 50_000_000,
        tick_window: 250_000,
        wall_ms: 0,
    };
    // Strike in the middle of the CRC loop.
    let spec = InjectionSpec {
        component: Component::RegFile,
        bit: 4 * 32 + 13,
        cycle: g.cycles / 2,
    };
    let out = run_one(&w, &cfg, None, spec, limits);
    assert_eq!(
        out.class,
        FaultClass::Sdc,
        "live CRC register flip must corrupt the result"
    );
}

#[test]
fn tlb_tag_flips_are_mostly_benign() {
    // §V-B: virtual-tag corruption mostly causes re-walks, not failures.
    let w = Workload::Qsort.build(Scale::Tiny);
    let cfg = CampaignConfig {
        samples_per_component: 120,
        components: vec![Component::DTlb],
        ..CampaignConfig::default()
    };
    let res = run_campaign("Qsort", &w, &cfg).unwrap();
    let c = res.component(Component::DTlb);
    // Tag-region injections: VPN bits 20..40 of each 64-bit entry.
    if c.tag_counts.total() >= 10 {
        let tag_avf = c.tag_counts.avf();
        let all_avf = c.counts.avf();
        assert!(
            tag_avf <= all_avf + 0.05,
            "tag AVF {tag_avf} should not exceed overall {all_avf}"
        );
    }
}

#[test]
fn injection_during_kernel_boot_is_handled() {
    // cycle 0: the flip lands before the kernel's first instruction; the
    // campaign machinery must classify it like any other run.
    let w = Workload::MatMul.build(Scale::Tiny);
    let cfg = tiny_cfg(1);
    let limits = RunLimits {
        max_cycles: 50_000_000,
        tick_window: 250_000,
        wall_ms: 0,
    };
    for component in Component::ALL {
        let spec = InjectionSpec {
            component,
            bit: 0,
            cycle: 0,
        };
        let out = run_one(&w, &cfg, None, spec, limits);
        // Any class is acceptable; the point is totality (no panic/hang).
        let _ = out.class;
    }
}

#[test]
fn injection_at_last_bit_of_every_component() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = tiny_cfg(1);
    let g = sea_platform::golden_run(cfg.machine, &w.image, &cfg.kernel, 100_000_000).unwrap();
    let limits = RunLimits::from_golden(g.cycles, cfg.kernel.tick_period);
    let probe = sea_microarch::System::new(cfg.machine, sea_microarch::NullDevice);
    for component in Component::ALL {
        let bits = probe.component_bits(component);
        let spec = InjectionSpec {
            component,
            bit: bits - 1,
            cycle: g.cycles - 1,
        };
        let out = run_one(&w, &cfg, None, spec, limits);
        // A flip at the very end of the run is almost always masked, and
        // must never wedge the harness.
        let _ = out.class;
    }
}

#[test]
fn multibit_models_flip_more_state() {
    use sea_injection::FaultModel;
    // A burst across a live register must behave like (at least) the
    // single-bit case; here we just pin totality + determinism.
    let w = Workload::MatMul.build(Scale::Tiny);
    let mut cfg = tiny_cfg(1);
    cfg.fault_model = FaultModel::Burst(8);
    let g = sea_platform::golden_run(cfg.machine, &w.image, &cfg.kernel, 100_000_000).unwrap();
    let limits = RunLimits::from_golden(g.cycles, cfg.kernel.tick_period);
    let spec = InjectionSpec {
        component: Component::RegFile,
        bit: 4 * 32,
        cycle: g.cycles / 3,
    };
    let a = run_one(&w, &cfg, None, spec, limits);
    let b = run_one(&w, &cfg, None, spec, limits);
    assert_eq!(a.class, b.class, "multi-bit runs must be deterministic");
}

#[test]
fn traced_campaign_emits_provenance_records() {
    let _guard = sea_trace::test_lock();
    let mem = std::sync::Arc::new(sea_trace::MemorySink::new());
    sea_trace::install_sink(mem.clone());
    sea_trace::set_level_all(sea_trace::Level::Info);

    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = CampaignConfig {
        samples_per_component: 4,
        components: vec![
            sea_microarch::Component::RegFile,
            sea_microarch::Component::L1D,
        ],
        threads: 2,
        ..CampaignConfig::default()
    };
    run_campaign("CRC32", &w, &cfg).unwrap();

    sea_trace::disable_all();
    sea_trace::flush_thread();
    sea_trace::uninstall_sink();
    let events = mem.take();
    let prov: Vec<_> = events
        .iter()
        .filter(|e| e.name == "injection.provenance")
        .collect();
    assert_eq!(
        prov.len(),
        8,
        "one provenance record per injection; got {}",
        prov.len()
    );
    let ends = events
        .iter()
        .filter(|e| e.name == "platform.run_end")
        .count();
    assert!(ends >= 8, "worker run_end events missing: {ends}");
    assert!(events.iter().any(|e| e.name == "injection.worker"));
}

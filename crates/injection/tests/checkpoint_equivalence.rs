//! The sea-snapshot correctness bar: restoring a checkpoint and running
//! forward must be bit-identical to running from reset, and a checkpointed
//! campaign must produce byte-identical journals and identical results to
//! a from-reset campaign.

use sea_injection::{run_campaign, CampaignConfig, CheckpointPolicy, JournalSpec};
use sea_microarch::Component;
use sea_platform::{boot, golden_run_with_checkpoints};
use sea_workloads::{Scale, Workload};
use std::fs;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_ckpt_eq_{}_{}", name, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cfg() -> CampaignConfig {
    CampaignConfig {
        samples_per_component: 6,
        components: vec![Component::RegFile, Component::L1D, Component::DTlb],
        threads: 1,
        ..CampaignConfig::default()
    }
}

#[test]
fn restore_then_run_is_bit_identical_to_run_from_reset() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let cfg = tiny_cfg();
    let (golden, ckpts) = golden_run_with_checkpoints(
        cfg.machine,
        &w.image,
        &cfg.kernel,
        cfg.golden_budget_cycles,
        10_000,
    )
    .unwrap();
    assert!(!ckpts.is_empty());

    // A target cycle past at least one non-zero checkpoint.
    let target = golden.cycles * 2 / 3;
    let mut restored = ckpts
        .restore_at(target)
        .expect("checkpoint at or before target");
    assert!(restored.cycles() <= target);
    let mut reset = boot(cfg.machine, &w.image, &cfg.kernel).unwrap().0;
    while restored.cycles() < target {
        restored.step();
    }
    while reset.cycles() < target {
        reset.step();
    }
    assert_eq!(
        restored.state_fingerprint_deep(),
        reset.state_fingerprint_deep(),
        "restore-then-run diverged from run-from-reset at cycle {target}"
    );
    // And they stay in lockstep past the restore point.
    for _ in 0..5_000 {
        restored.step();
        reset.step();
    }
    assert_eq!(
        restored.state_fingerprint_deep(),
        reset.state_fingerprint_deep()
    );
}

#[test]
fn checkpointed_campaign_journal_is_byte_identical_to_reset_campaign() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let plain_dir = scratch("plain");
    let ckpt_dir = scratch("ckpt");

    let mut plain = tiny_cfg();
    plain.journal = Some(JournalSpec::new(plain_dir.clone()));
    let a = run_campaign("CRC32", &w, &plain).unwrap();
    assert!(a.checkpoints.is_none());

    let mut ckpt = tiny_cfg();
    ckpt.journal = Some(JournalSpec::new(ckpt_dir.clone()));
    ckpt.checkpoints = Some(CheckpointPolicy {
        dir: None,
        interval: 10_000,
    });
    let b = run_campaign("CRC32", &w, &ckpt).unwrap();
    let stats = b.checkpoints.expect("checkpointing was on");
    assert!(stats.epochs > 0);
    assert!(stats.restores > 0, "no injection restored a checkpoint");
    assert!(stats.prefix_cycles_saved > 0);

    // Same classifications, same per-component tallies…
    assert_eq!(a.per_component, b.per_component);
    // …and the journals agree byte for byte.
    let ja = fs::read(plain_dir.join("crc32.inject.seaj")).unwrap();
    let jb = fs::read(ckpt_dir.join("crc32.inject.seaj")).unwrap();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "checkpointed journal differs from reset journal");

    let _ = fs::remove_dir_all(&plain_dir);
    let _ = fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn persisted_checkpoints_are_reloaded_and_give_identical_results() {
    let w = Workload::MatMul.build(Scale::Tiny);
    let dir = scratch("persist");
    let mut cfg = tiny_cfg();
    cfg.checkpoints = Some(CheckpointPolicy {
        dir: Some(dir.clone()),
        interval: 10_000,
    });

    // First run captures during the golden run and persists.
    let a = run_campaign("MatMul", &w, &cfg).unwrap();
    let files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "seackpt"))
        .collect();
    assert_eq!(
        files.len() as u64,
        a.checkpoints.unwrap().epochs,
        "one .seackpt file per epoch"
    );

    // Second run loads the persisted set instead of re-capturing, and
    // classifies every injection identically.
    let b = run_campaign("MatMul", &w, &cfg).unwrap();
    assert_eq!(a.per_component, b.per_component);
    assert_eq!(a.checkpoints.unwrap().epochs, b.checkpoints.unwrap().epochs);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_persisted_checkpoint_degrades_to_recapture_not_panic() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let ckpt_dir = scratch("corrupt_ckpt");
    let ref_dir = scratch("corrupt_ref");
    let jour_dir = scratch("corrupt_jour");

    // Reference: checkpoint-less campaign journal.
    let mut reference = tiny_cfg();
    reference.journal = Some(JournalSpec::new(ref_dir.clone()));
    let a = run_campaign("CRC32", &w, &reference).unwrap();

    // Persist a checkpoint set, then flip one byte mid-file: the section
    // CRC must catch it on reload.
    let mut cfg = tiny_cfg();
    cfg.checkpoints = Some(CheckpointPolicy {
        dir: Some(ckpt_dir.clone()),
        interval: 10_000,
    });
    run_campaign("CRC32", &w, &cfg).unwrap();
    let victim = fs::read_dir(&ckpt_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seackpt"))
        .expect("a persisted .seackpt");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&victim, bytes).unwrap();

    // The corrupted set is rejected with a warning, re-captured from the
    // golden run, and the campaign's journal still matches the
    // checkpoint-less reference byte for byte.
    cfg.journal = Some(JournalSpec::new(jour_dir.clone()));
    let b = run_campaign("CRC32", &w, &cfg).unwrap();
    assert_eq!(a.per_component, b.per_component);
    assert!(b.checkpoints.unwrap().epochs > 0);
    let ja = fs::read(ref_dir.join("crc32.inject.seaj")).unwrap();
    let jb = fs::read(jour_dir.join("crc32.inject.seaj")).unwrap();
    assert_eq!(ja, jb, "degraded-path journal differs from reference");

    let _ = fs::remove_dir_all(&ckpt_dir);
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&jour_dir);
}

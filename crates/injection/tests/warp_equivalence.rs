//! The two-tier execution engine's correctness bar at the campaign level:
//! arming the warp cursor (`CampaignConfig::warp`) must never change what
//! a campaign computes — every injected run classifies identically, and a
//! journaled campaign produces byte-identical journal files.
//!
//! (The functional warp tier's own bar — architectural lockstep with
//! detailed stepping across SMC, mode changes and TLB flushes — lives in
//! `sea-microarch/tests/warp.rs`. This file holds the handoff bar: a
//! machine cloned off the fault-free cursor is *bit-exact* detailed
//! state, indistinguishable from stepping a fresh boot to the same
//! cycle.)

use proptest::prelude::*;
use sea_injection::{
    run_campaign, run_one, CampaignConfig, CheckpointPolicy, InjectionSpec, JournalSpec, WarpPolicy,
};
use sea_microarch::Component;
use sea_platform::{boot, golden_run, GoldenRun, RunLimits};
use sea_workloads::{BuiltWorkload, Scale, Workload};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sea_warp_eq_{}_{}", name, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cfg() -> CampaignConfig {
    CampaignConfig {
        samples_per_component: 5,
        components: vec![Component::RegFile, Component::L1D, Component::DTlb],
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn warp_cfg() -> CampaignConfig {
    CampaignConfig {
        warp: Some(WarpPolicy::default()),
        ..tiny_cfg()
    }
}

/// Shared golden run for the property tests (booting per-case would
/// dominate the suite's runtime).
fn fixture() -> &'static (BuiltWorkload, GoldenRun) {
    static FIXTURE: OnceLock<(BuiltWorkload, GoldenRun)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = Workload::Crc32.build(Scale::Tiny);
        let cfg = tiny_cfg();
        let golden = golden_run(cfg.machine, &w.image, &cfg.kernel, cfg.golden_budget_cycles)
            .expect("tiny golden run");
        (w, golden)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The cursor mechanism in miniature: a fault-free machine advanced to
    /// cycle `c` (fast path armed, as the cursor always runs), cloned, and
    /// stepped on to cycle `n` is deep-fingerprint-identical to a fresh
    /// boot stepped straight to `n`. The workload's prefix crosses SVC
    /// mode changes and timer ticks, so the clone point can land anywhere
    /// around them.
    #[test]
    fn cursor_clone_then_detailed_matches_pure_detailed_stepping(
        c_frac in 0.0f64..1.0,
        n_frac in 0.0f64..1.0,
    ) {
        let (w, golden) = fixture();
        let cfg = tiny_cfg();
        let c = ((golden.cycles as f64 * c_frac.min(n_frac)) as u64).min(golden.cycles - 1);
        let n = ((golden.cycles as f64 * c_frac.max(n_frac)) as u64).min(golden.cycles - 1);

        let mut pure = boot(cfg.machine, &w.image, &cfg.kernel).unwrap().0;
        while pure.cycles() < n {
            pure.step();
        }

        let mut cursor = boot(cfg.machine, &w.image, &cfg.kernel).unwrap().0;
        cursor.fastpath_enable(sea_microarch::FastPathConfig::default());
        while cursor.cycles() < c {
            cursor.step();
        }
        let mut handed_off = cursor.clone();
        handed_off.fastpath_disable();
        while handed_off.cycles() < n {
            handed_off.step();
        }

        prop_assert_eq!(
            pure.state_fingerprint_deep(),
            handed_off.state_fingerprint_deep(),
            "cursor clone diverged: clone at {}, target {}", c, n
        );
    }

    /// Any random fault — any component, any bit, any strike cycle —
    /// classifies identically with the warp cursor on and off.
    #[test]
    fn random_faults_classify_identically(
        which in 0usize..Component::ALL.len(),
        bit_frac in 0.0f64..1.0,
        cycle_frac in 0.0f64..1.0,
    ) {
        let (w, golden) = fixture();
        let detailed = tiny_cfg();
        let warp = warp_cfg();
        let component = Component::ALL[which];
        let bits = sea_microarch::System::new(detailed.machine, sea_microarch::NullDevice)
            .component_bits(component);
        let spec = InjectionSpec {
            component,
            bit: ((bits as f64 * bit_frac) as u64).min(bits - 1),
            cycle: ((golden.cycles as f64 * cycle_frac) as u64).min(golden.cycles - 1),
        };
        let limits = RunLimits::from_golden(golden.cycles, detailed.kernel.tick_period);
        let a = run_one(w, &detailed, None, spec, limits);
        let b = run_one(w, &warp, None, spec, limits);
        prop_assert_eq!(a, b, "warp/detailed outcome mismatch for {:?}", spec);
    }
}

#[test]
fn warp_campaign_journal_is_byte_identical_to_detailed_campaign() {
    let w = Workload::Crc32.build(Scale::Tiny);
    let detailed_dir = scratch("detailed");
    let warp_dir = scratch("warp");

    let mut detailed = tiny_cfg();
    detailed.journal = Some(JournalSpec::new(detailed_dir.clone()));
    let a = run_campaign("CRC32", &w, &detailed).unwrap();

    let handoffs_before = sea_injection::warp::WARP_HANDOFFS.get();
    let mut warp = warp_cfg();
    warp.journal = Some(JournalSpec::new(warp_dir.clone()));
    let b = run_campaign("CRC32", &w, &warp).unwrap();
    assert!(
        sea_injection::warp::WARP_HANDOFFS.get() > handoffs_before,
        "warp cursor never served a machine"
    );

    // Identical classifications and tallies…
    assert_eq!(a.per_component, b.per_component);
    assert_eq!(a.golden_cycles, b.golden_cycles);
    // …and byte-identical journals (same config hash: `warp` is a
    // runtime-only knob, like `fast_path`, `threads` and `checkpoints`).
    let ja = fs::read(detailed_dir.join("crc32.inject.seaj")).unwrap();
    let jb = fs::read(warp_dir.join("crc32.inject.seaj")).unwrap();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "warp journal differs from detailed journal");

    let _ = fs::remove_dir_all(&detailed_dir);
    let _ = fs::remove_dir_all(&warp_dir);
}

#[test]
fn warp_composes_with_checkpoint_restore() {
    // Cursors jump forward through checkpoints (a cursor behind the
    // nearest epoch is discarded in favour of a restore), so the two
    // mechanisms must agree when armed together.
    let w = Workload::MatMul.build(Scale::Tiny);

    let plain = tiny_cfg();
    let a = run_campaign("MatMul", &w, &plain).unwrap();

    let mut both = warp_cfg();
    both.checkpoints = Some(CheckpointPolicy {
        dir: None,
        interval: 10_000,
    });
    let b = run_campaign("MatMul", &w, &both).unwrap();

    assert_eq!(a.per_component, b.per_component);
}

#[test]
fn max_advance_zero_degrades_to_the_plain_path() {
    // A policy that never lets the cursor run degrades every handoff to
    // the ordinary restore/boot path — same outcomes, no cursor traffic.
    let w = Workload::Crc32.build(Scale::Tiny);

    let a = run_campaign("CRC32", &w, &tiny_cfg()).unwrap();
    let mut capped = tiny_cfg();
    capped.warp = Some(WarpPolicy { max_advance: 0 });
    let b = run_campaign("CRC32", &w, &capped).unwrap();

    assert_eq!(a.per_component, b.per_component);
}

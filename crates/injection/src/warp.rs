//! The warp cursor: two-tier prefix execution for injection campaigns.
//!
//! Campaign wall-clock is dominated by the fault-free prefix — every run
//! must land on the golden path at its strike cycle before the flip, and
//! with sparse (or no) checkpoints that means re-simulating the same
//! prefix over and over. The microarch warp tier (fused-trace functional
//! execution) cannot serve that prefix directly: its timing and residency
//! are approximate, and campaign journals are a *byte-exact* contract.
//!
//! The cursor closes the gap with the determinism contract instead: each
//! worker thread keeps one long-lived fault-free machine — the **cursor**
//! — pinned to the golden path. Specs are cycle-sorted and workers claim
//! contiguous ascending index blocks, so across a block the cursor only
//! ever moves *forward*; reaching the next strike cycle costs the delta
//! from the previous one, not the whole prefix. The run's machine is then
//! a clone of the cursor at the strike cycle (the "handoff"): by the
//! restore/reset bit-equivalence contract (PR 3, `checkpoint_equivalence`)
//! that clone is indistinguishable from a machine stepped from reset, so
//! verdicts — and journal bytes — are identical with the cursor on or off
//! (held by the `warp_equivalence` tests and the CI `warp-equivalence`
//! job). The cursor always runs with the execution fast path armed; the
//! fast path is itself bit-transparent, and the clone drops it when the
//! campaign did not ask for it.
//!
//! Checkpoints compose rather than compete: when an epoch lies *ahead* of
//! the cursor (first run of a block, or a cross-epoch jump), the cursor
//! re-seeds from the nearest checkpoint at or before the target and
//! advances from there.

use std::cell::RefCell;

use sea_microarch::{FastPathStats, System};
use sea_platform::{boot, Board, CheckpointSet};
use sea_trace::Counter;
use sea_workloads::BuiltWorkload;

use crate::campaign::CampaignConfig;
use crate::supervisor::{config_hash, golden_hash};

/// Runs handed a cursor clone instead of a fresh restore/boot.
pub static WARP_HANDOFFS: Counter = Counter::new("campaign.warp_handoffs");
/// Cursors discarded and re-seeded (target behind the cursor, a checkpoint
/// ahead of it, or a different campaign on the same thread).
pub static WARP_CURSOR_RESETS: Counter = Counter::new("campaign.warp_cursor_resets");
/// Fault-free prefix cycles the cursor saved: on each handoff, how far the
/// cursor already was past the cycle a fresh machine would have started at
/// (the nearest checkpoint, or reset).
pub static WARP_PREFIX_CYCLES_SAVED: Counter = Counter::new("campaign.warp_prefix_cycles_saved");
/// Detailed cycles actually stepped on cursors to reach strike cycles.
pub static WARP_ADVANCE_CYCLES: Counter = Counter::new("campaign.warp_advance_cycles");

/// Fetched words decoded from the µop cache across all injected runs.
pub static FASTPATH_UOP_HITS: Counter = Counter::new("campaign.fastpath_uop_hits");
/// Fetched words that ran the full decoder across all injected runs.
pub static FASTPATH_UOP_MISSES: Counter = Counter::new("campaign.fastpath_uop_misses");
/// Translations served by a page latch across all injected runs.
pub static FASTPATH_LATCH_HITS: Counter = Counter::new("campaign.fastpath_latch_hits");
/// L1 accesses served by a line latch across all injected runs.
pub static FASTPATH_LINE_HITS: Counter = Counter::new("campaign.fastpath_line_hits");

/// Folds one finished run's fast-path activity into the process-wide
/// campaign counters. `before` is the stats the machine arrived with —
/// a cursor clone inherits the cursor's lifetime counters, so only the
/// delta belongs to this run.
pub(crate) fn bank_fastpath_delta(before: Option<FastPathStats>, after: Option<FastPathStats>) {
    let Some(a) = after else { return };
    let b = before.unwrap_or_default();
    FASTPATH_UOP_HITS.add(a.uop_hits.saturating_sub(b.uop_hits));
    FASTPATH_UOP_MISSES.add(a.uop_misses.saturating_sub(b.uop_misses));
    FASTPATH_LATCH_HITS.add(a.latch_hits.saturating_sub(b.latch_hits));
    FASTPATH_LINE_HITS.add(a.line_hits.saturating_sub(b.line_hits));
}

/// How a campaign uses the warp cursor. Carried on
/// [`CampaignConfig::warp`](crate::CampaignConfig::warp); the default is
/// right for every workload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WarpPolicy {
    /// Upper bound on the cycles a cursor advances for one run. A run
    /// whose strike cycle is further ahead bypasses the cursor (plain
    /// restore/boot) instead of dragging it across a huge gap another
    /// worker's block will never revisit. `u64::MAX` = never bypass.
    pub max_advance: u64,
}

impl Default for WarpPolicy {
    fn default() -> WarpPolicy {
        WarpPolicy {
            max_advance: u64::MAX,
        }
    }
}

/// One worker thread's fault-free machine, pinned to the golden path of
/// the campaign identified by `key`.
struct Cursor {
    key: (u64, u64),
    sys: System<Board>,
}

thread_local! {
    static CURSOR: RefCell<Option<Cursor>> = const { RefCell::new(None) };
}

/// Drop this thread's cursor (tests and fleet workers switching studies;
/// a stale cursor would also just be re-seeded by the key check).
pub fn reset_cursor() {
    CURSOR.with(|slot| *slot.borrow_mut() = None);
}

/// Nearest checkpoint epoch at or before `cycle` — the position a fresh
/// [`machine_toward`](crate::campaign) machine would start at.
fn baseline(ckpts: Option<&CheckpointSet>, cycle: u64) -> u64 {
    ckpts.map_or(0, |c| {
        let e = c.epochs();
        let k = e.partition_point(|&x| x <= cycle);
        if k == 0 {
            0
        } else {
            e[k - 1]
        }
    })
}

/// A machine on the golden path at (or just past the step straddling)
/// `cycle`, served from this worker's cursor. Returns `None` when the
/// policy says this run should bypass the cursor.
pub(crate) fn cursor_machine_toward(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    ckpts: Option<&CheckpointSet>,
    cycle: u64,
    policy: &WarpPolicy,
) -> Option<System<Board>> {
    let key = (config_hash(cfg), golden_hash(workload));
    let base = baseline(ckpts, cycle);
    CURSOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        // A cursor is reusable when it belongs to this campaign, has not
        // passed the target, and no checkpoint lies strictly ahead of it
        // (restoring would be cheaper than whatever stepping remains).
        let reusable = matches!(&*slot, Some(c)
            if c.key == key && c.sys.cycles() <= cycle && c.sys.cycles() >= base);
        if !reusable {
            if slot.take().is_some() {
                WARP_CURSOR_RESETS.inc();
            }
            if cycle.saturating_sub(base) > policy.max_advance {
                return None;
            }
            let mut sys = match ckpts.and_then(|c| c.restore_at(cycle)) {
                Some(sys) => sys,
                None => {
                    boot(cfg.machine, &workload.image, &cfg.kernel)
                        .expect("boot succeeded for the golden run, must succeed here")
                        .0
                }
            };
            // Always armed on the cursor: the fast path is bit-transparent
            // and the cursor exists purely to go fast.
            sys.fastpath_enable(sea_microarch::FastPathConfig::default());
            *slot = Some(Cursor { key, sys });
        }
        let cursor = slot.as_mut().expect("cursor seeded above");
        let start = cursor.sys.cycles();
        if cycle - start > policy.max_advance {
            return None;
        }
        // Advance the cursor itself to the strike cycle — this is the work
        // every subsequent run of this worker's block gets for free.
        while cursor.sys.cycles() < cycle {
            cursor.sys.step();
        }
        WARP_ADVANCE_CYCLES.add(cursor.sys.cycles() - start);
        WARP_PREFIX_CYCLES_SAVED.add(start.saturating_sub(base));
        WARP_HANDOFFS.inc();
        let mut sys = cursor.sys.clone();
        if cfg.fast_path {
            // The clone inherits the cursor's armed fast path — exactly
            // what `machine_toward` would have armed, already warm.
        } else {
            sys.fastpath_disable();
        }
        Some(sys)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_bypasses() {
        assert_eq!(WarpPolicy::default().max_advance, u64::MAX);
    }

    #[test]
    fn baseline_picks_nearest_epoch_at_or_before() {
        assert_eq!(baseline(None, 1234), 0);
    }
}

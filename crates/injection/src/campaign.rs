//! Statistical fault-injection campaigns (the GeFIN equivalent, §IV-C).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sea_kernel::KernelConfig;
use sea_microarch::{ArrayKind, Component, MachineConfig, System};
use sea_platform::{
    boot, classify, golden_run, run, ClassCounts, FaultClass, GoldenRun, RunLimits,
};
use sea_trace::{event, Level, Progress, Subsystem};
use sea_workloads::BuiltWorkload;

/// Class-name labels for progress meters, index-aligned with
/// [`FaultClass::ALL`].
pub const CLASS_LABELS: [&str; 4] = ["masked", "sdc", "app", "sys"];

/// Index of a class within [`FaultClass::ALL`] / [`CLASS_LABELS`].
pub fn class_index(class: FaultClass) -> usize {
    FaultClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class in ALL")
}

/// The spatial fault model of a strike.
///
/// The paper (§II-B) notes that real strikes in recent technologies can
/// upset multiple adjacent cells, while injection campaigns typically use
/// the simplified single-bit model — one of the sources of uncertainty in
/// Fig 1. The multi-bit variants let campaigns quantify that gap (see the
/// `ablation_multibit` bench binary).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultModel {
    /// Classic single-bit transient (the paper's campaigns).
    SingleBit,
    /// Two adjacent bits upset by one strike.
    DoubleBitAdjacent,
    /// A burst of `n` adjacent bits (clamped to the component's end).
    Burst(u8),
}

impl FaultModel {
    /// Number of bits this model flips.
    pub fn width(self) -> u64 {
        match self {
            FaultModel::SingleBit => 1,
            FaultModel::DoubleBitAdjacent => 2,
            FaultModel::Burst(n) => n.max(1) as u64,
        }
    }
}

/// One planned injection: a transient fault at (`component`, `bit`),
/// struck at `cycle`. The number of upset bits starting at `bit` is set by
/// the campaign's [`FaultModel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectionSpec {
    /// Target component.
    pub component: Component,
    /// Flat bit index within the component.
    pub bit: u64,
    /// Injection time in cycles from reset.
    pub cycle: u64,
}

/// Outcome of one injection run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectionOutcome {
    /// The injected fault.
    pub spec: InjectionSpec,
    /// Which array the bit landed in (data/tag/state).
    pub array: ArrayKind,
    /// Whether the struck entry/line held valid state.
    pub was_valid: bool,
    /// Effect classification.
    pub class: FaultClass,
}

/// Per-component campaign results.
#[derive(Clone, Debug)]
pub struct ComponentResult {
    /// The component.
    pub component: Component,
    /// SRAM bits of the component (the statistical population).
    pub bits: u64,
    /// Class tallies.
    pub counts: ClassCounts,
    /// Tallies restricted to faults that landed in tag arrays (for the
    /// paper's TLB tag-vs-target analysis, §V-B).
    pub tag_counts: ClassCounts,
    /// Every raw outcome, in execution order.
    pub outcomes: Vec<InjectionOutcome>,
}

impl ComponentResult {
    /// Achieved error margin at 99% confidence after the paper's
    /// `p`-re-adjustment.
    pub fn error_margin(&self) -> f64 {
        crate::stats::adjusted_error_margin(
            self.bits,
            self.counts.total(),
            crate::stats::Z_99,
            self.counts.avf(),
        )
    }
}

/// Full campaign result for one workload.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Workload display name.
    pub workload: String,
    /// Golden (fault-free) run data.
    pub golden_cycles: u64,
    /// Per-component results, in [`Component::ALL`] order.
    pub per_component: Vec<ComponentResult>,
}

impl CampaignResult {
    /// Result for one component.
    pub fn component(&self, c: Component) -> &ComponentResult {
        self.per_component
            .iter()
            .find(|r| r.component == c)
            .expect("component present")
    }

    /// Total injections across components.
    pub fn total_injections(&self) -> u64 {
        self.per_component.iter().map(|r| r.counts.total()).sum()
    }
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Kernel/boot parameters.
    pub kernel: KernelConfig,
    /// Faults per component (the paper uses 1,000).
    pub samples_per_component: u32,
    /// Components to target (default: all six).
    pub components: Vec<Component>,
    /// RNG seed — campaigns are fully reproducible.
    pub seed: u64,
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
    /// Spatial fault model (default: single bit, as in the paper).
    pub fault_model: FaultModel,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            // The uniformly scaled configuration pairs with the scaled
            // benchmark inputs (DESIGN.md §1): it preserves the paper's
            // footprint-to-capacity ratios, which drive the kernel-cache-
            // residency effects behind the System-Crash analysis.
            machine: MachineConfig::cortex_a9_scaled(),
            kernel: KernelConfig::default(),
            samples_per_component: 150,
            components: Component::ALL.to_vec(),
            seed: 0xDEFA_0001,
            threads: 0,
            fault_model: FaultModel::SingleBit,
        }
    }
}

/// Campaign-level error.
#[derive(Debug)]
pub enum CampaignError {
    /// The fault-free run failed; the workload/setup is broken.
    Golden(sea_platform::GoldenError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Golden(e) => write!(f, "golden run failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Runs one injected execution: boots a fresh machine, advances it to
/// `spec.cycle`, flips the bit, and runs to a terminal state.
pub fn run_one(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    spec: InjectionSpec,
    limits: RunLimits,
) -> InjectionOutcome {
    let (mut sys, _) = boot(cfg.machine, &workload.image, &cfg.kernel)
        .expect("boot succeeded for the golden run, must succeed here");
    // Phase 1: fault-free prefix (no terminal event can fire before the
    // golden run's end, and spec.cycle < golden cycles).
    while sys.cycles() < spec.cycle {
        sys.step();
    }
    let bits = sys.component_bits(spec.component);
    // Arm a provenance probe only when someone is listening — the probe adds
    // a per-step drain to the run.
    let provenance = sea_trace::enabled(Subsystem::Injection, Level::Info);
    let site = if provenance {
        sys.flip_bit_probed(spec.component, spec.bit)
    } else {
        sys.flip_bit(spec.component, spec.bit)
    };
    // Multi-bit models upset the adjacent cells of the same array. A strike
    // starting near the array's last cell wraps onto the first cells (the
    // flat bit index is a ring), so every model always flips its full
    // width — previously the out-of-range remainder was silently dropped,
    // under-injecting boundary strikes.
    for extra in 1..cfg.fault_model.width() {
        let b = (spec.bit + extra) % bits;
        sys.flip_bit(spec.component, b);
        event!(Subsystem::Injection, Level::Debug, "injection.multibit";
               cycle = spec.cycle;
               "component" => site.component.short_name(),
               "bit" => b,
               "wrapped" => b < spec.bit);
    }
    // Phase 2: run to a terminal state under the watchdog.
    let outcome = run(&mut sys, limits);
    let class = classify(&outcome, &workload.golden);
    if let Some(probe) = sys.take_probe() {
        probe.emit_record(&class.to_string(), sys.cycles());
    }
    InjectionOutcome {
        spec,
        array: site.array,
        was_valid: site.was_valid,
        class,
    }
}

/// Runs a full statistical campaign for one workload.
///
/// ```no_run
/// use sea_injection::{run_campaign, CampaignConfig};
/// use sea_workloads::{Scale, Workload};
///
/// # fn main() -> Result<(), sea_injection::CampaignError> {
/// let built = Workload::Qsort.build(Scale::Default);
/// let result = run_campaign("Qsort", &built, &CampaignConfig::default())?;
/// for c in &result.per_component {
///     println!("{}: AVF {:.1}% ±{:.1}%",
///         c.component, 100.0 * c.counts.avf(), 100.0 * c.error_margin());
/// }
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails only if the fault-free run does not complete cleanly.
pub fn run_campaign(
    name: &str,
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let golden: GoldenRun = golden_run(cfg.machine, &workload.image, &cfg.kernel, 500_000_000)
        .map_err(CampaignError::Golden)?;
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);

    // Pre-generate all specs deterministically.
    let probe = System::new(cfg.machine, sea_microarch::NullDevice);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut specs: Vec<InjectionSpec> = Vec::new();
    for &component in &cfg.components {
        let bits = probe.component_bits(component);
        for _ in 0..cfg.samples_per_component {
            specs.push(InjectionSpec {
                component,
                bit: rng.gen_range(0..bits),
                cycle: rng.gen_range(0..golden.cycles),
            });
        }
    }

    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<InjectionOutcome>> = Mutex::new(Vec::with_capacity(specs.len()));
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let campaign_span = sea_trace::span(Subsystem::Injection, Level::Info, "injection.campaign");
    let progress = Progress::new(format!("inject {name}"), specs.len() as u64, &CLASS_LABELS);
    crossbeam::scope(|scope| {
        let (next, outcomes, specs) = (&next, &outcomes, &specs);
        for worker in 0..threads.min(specs.len().max(1)) {
            let progress = &progress;
            scope.spawn(move |_| {
                let started = std::time::Instant::now();
                let mut runs = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let out = run_one(workload, cfg, specs[i], limits);
                    progress.record(Some(class_index(out.class)));
                    runs += 1;
                    outcomes.lock().push(out);
                }
                let secs = started.elapsed().as_secs_f64();
                event!(Subsystem::Injection, Level::Info, "injection.worker";
                       "worker" => worker,
                       "runs" => runs,
                       "secs" => secs,
                       "runs_per_sec" => if secs > 0.0 { runs as f64 / secs } else { 0.0 });
                // Flush before the closure returns: the scope join can
                // complete before this thread's TLS destructors run, so the
                // drop-time ring flush may race with sink teardown.
                sea_trace::flush_thread();
            });
        }
    })
    .expect("campaign worker panicked");
    let (done, secs) = progress.finish();
    if let Some(mut s) = campaign_span {
        s.field("workload", name.to_string());
        s.field("runs", done);
        s.field(
            "runs_per_sec",
            if secs > 0.0 { done as f64 / secs } else { 0.0 },
        );
        s.field("workers", threads.min(specs.len().max(1)));
    }

    let all = outcomes.into_inner();
    let mut per_component = Vec::new();
    for &component in &cfg.components {
        let bits = probe.component_bits(component);
        let mut counts = ClassCounts::default();
        let mut tag_counts = ClassCounts::default();
        let mut outs = Vec::new();
        for o in all.iter().filter(|o| o.spec.component == component) {
            counts.add(o.class);
            if o.array == ArrayKind::Tag {
                tag_counts.add(o.class);
            }
            outs.push(*o);
        }
        per_component.push(ComponentResult {
            component,
            bits,
            counts,
            tag_counts,
            outcomes: outs,
        });
    }

    Ok(CampaignResult {
        workload: name.to_string(),
        golden_cycles: golden.cycles,
        per_component,
    })
}

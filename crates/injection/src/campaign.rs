//! Statistical fault-injection campaigns (the GeFIN equivalent, §IV-C).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sea_kernel::KernelConfig;
use sea_microarch::{ArrayKind, Component, MachineConfig, System};
use sea_platform::{
    boot, classify, golden_run, golden_run_with_checkpoints, run, Board, CheckpointSet,
    CheckpointStats, ClassCounts, FaultClass, GoldenRun, RunLimits,
};
use sea_snapshot::CheckpointMeta;
use sea_trace::json::{Json, ObjWriter};
use sea_trace::{event, Histogram, Level, Progress, Subsystem};
use sea_workloads::BuiltWorkload;

use std::sync::Arc;

use crate::convergence::ConvergenceTracker;
use crate::supervisor::{
    attempt_run, config_hash, golden_hash, journal_file, open_journal, run_supervised_until,
    Journal, JournalAudit, JournalError, JournalHeader, JournalSpec, PoolStats, Quarantine,
    RunAnomaly, RunIdentity, RunVerdict, SupervisorConfig,
};

/// Class-name labels for progress meters, index-aligned with
/// [`FaultClass::ALL`].
pub const CLASS_LABELS: [&str; 4] = ["masked", "sdc", "app", "sys"];

/// Cycles actually simulated per injection run (the post-restore suffix).
/// Feeds the work-weighted ETA and the Prometheus campaign snapshot.
static RUN_SIM_CYCLES: Histogram = Histogram::new("inject.run_sim_cycles");

/// Record one run's simulated-cycle count into the process-wide
/// [`RUN_SIM_CYCLES`] histogram. `run_campaign` does this itself; callers
/// that drive [`CampaignPlan::run_index`] directly (the fleet worker) use
/// this so their telemetry histograms match the supervised path.
pub fn record_run_cycles(cycles: u64) {
    RUN_SIM_CYCLES.record(cycles);
}

/// Snapshot of the process-wide per-run simulated-cycle histogram, for
/// telemetry push and cross-process merge.
pub fn run_cycles_snapshot() -> sea_trace::HistSnapshot {
    RUN_SIM_CYCLES.snapshot()
}

/// Index of a class within [`FaultClass::ALL`] / [`CLASS_LABELS`].
pub fn class_index(class: FaultClass) -> usize {
    FaultClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class in ALL")
}

/// The spatial fault model of a strike.
///
/// The paper (§II-B) notes that real strikes in recent technologies can
/// upset multiple adjacent cells, while injection campaigns typically use
/// the simplified single-bit model — one of the sources of uncertainty in
/// Fig 1. The multi-bit variants let campaigns quantify that gap (see the
/// `ablation_multibit` bench binary).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultModel {
    /// Classic single-bit transient (the paper's campaigns).
    SingleBit,
    /// Two adjacent bits upset by one strike.
    DoubleBitAdjacent,
    /// A burst of `n` adjacent bits (clamped to the component's end).
    Burst(u8),
}

impl FaultModel {
    /// Number of bits this model flips.
    pub fn width(self) -> u64 {
        match self {
            FaultModel::SingleBit => 1,
            FaultModel::DoubleBitAdjacent => 2,
            FaultModel::Burst(n) => n.max(1) as u64,
        }
    }
}

/// One planned injection: a transient fault at (`component`, `bit`),
/// struck at `cycle`. The number of upset bits starting at `bit` is set by
/// the campaign's [`FaultModel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectionSpec {
    /// Target component.
    pub component: Component,
    /// Flat bit index within the component.
    pub bit: u64,
    /// Injection time in cycles from reset.
    pub cycle: u64,
}

/// Outcome of one injection run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectionOutcome {
    /// The injected fault.
    pub spec: InjectionSpec,
    /// Which array the bit landed in (data/tag/state).
    pub array: ArrayKind,
    /// Whether the struck entry/line held valid state.
    pub was_valid: bool,
    /// Effect classification.
    pub class: FaultClass,
}

/// Per-component campaign results.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentResult {
    /// The component.
    pub component: Component,
    /// SRAM bits of the component (the statistical population).
    pub bits: u64,
    /// Class tallies.
    pub counts: ClassCounts,
    /// Tallies restricted to faults that landed in tag arrays (for the
    /// paper's TLB tag-vs-target analysis, §V-B).
    pub tag_counts: ClassCounts,
    /// Every raw outcome, in spec-index order (deterministic across thread
    /// interleavings).
    pub outcomes: Vec<InjectionOutcome>,
}

impl ComponentResult {
    /// Achieved error margin at 99% confidence after the paper's
    /// `p`-re-adjustment.
    pub fn error_margin(&self) -> f64 {
        crate::stats::adjusted_error_margin(
            self.bits,
            self.counts.total(),
            crate::stats::Z_99,
            self.counts.avf(),
        )
    }
}

/// What the supervisor observed while running a campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Runs with a classified outcome (including resumed ones).
    pub completed: u64,
    /// Runs skipped because a resumed journal already recorded them.
    pub resumed: u64,
    /// Anomalies recorded (panicking runs, deterministic or flaky).
    pub quarantined: u64,
    /// Anomalies that recovered on retry (flaky panics).
    pub flaky_recovered: u64,
    /// Worker threads respawned after dying mid-campaign.
    pub worker_respawns: u32,
    /// Runs abandoned entirely (kept killing workers outside the per-run
    /// panic boundary even after the respawn budget was spent).
    pub lost: u64,
}

/// Full campaign result for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignResult {
    /// Workload display name.
    pub workload: String,
    /// Golden (fault-free) run data.
    pub golden_cycles: u64,
    /// Per-component results, in [`Component::ALL`] order.
    pub per_component: Vec<ComponentResult>,
    /// Anomalies (panicking runs) captured by the supervisor, in
    /// spec-index order.
    pub anomalies: Vec<RunAnomaly>,
    /// Supervision counters.
    pub supervision: SupervisionStats,
    /// Checkpoint usage (None when checkpointing was disabled).
    pub checkpoints: Option<CheckpointStats>,
    /// Journal write-side audit (None when journaling was disabled).
    pub journal: Option<JournalAudit>,
}

impl CampaignResult {
    /// Result for one component.
    pub fn component(&self, c: Component) -> &ComponentResult {
        self.per_component
            .iter()
            .find(|r| r.component == c)
            .expect("component present")
    }

    /// Total injections across components.
    pub fn total_injections(&self) -> u64 {
        self.per_component.iter().map(|r| r.counts.total()).sum()
    }
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Kernel/boot parameters.
    pub kernel: KernelConfig,
    /// Faults per component (the paper uses 1,000).
    pub samples_per_component: u32,
    /// Components to target (default: all six).
    pub components: Vec<Component>,
    /// RNG seed — campaigns are fully reproducible.
    pub seed: u64,
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
    /// Spatial fault model (default: single bit, as in the paper).
    pub fault_model: FaultModel,
    /// Cycle budget for the fault-free reference run.
    pub golden_budget_cycles: u64,
    /// Supervision policy: panic isolation, retry, quarantine, respawn.
    pub supervisor: SupervisorConfig,
    /// Outcome journal location and resume behavior (None = no journal).
    pub journal: Option<JournalSpec>,
    /// Checkpoint/restore policy (None = every run boots from reset).
    ///
    /// A runtime-only knob, like `threads`: it changes how fast a campaign
    /// runs, never what it computes, so it is excluded from the campaign
    /// configuration hash and a journal written either way is byte-identical.
    pub checkpoints: Option<CheckpointPolicy>,
    /// Arm the execution fast path (µop cache + translation latches) on
    /// every injected run's machine.
    ///
    /// Like `checkpoints`, a runtime-only speed knob: the fast path is
    /// bit-for-bit transparent (identical counters, verdicts and journal
    /// bytes — held by the `fastpath_equivalence` tests and the CI
    /// `fastpath-equivalence` job), so it is excluded from the campaign
    /// configuration hash.
    pub fast_path: bool,
    /// Serve live observability (`/status`, `/metrics`, `/events`, …) on
    /// this address while the campaign runs (e.g. `"127.0.0.1:9100"`).
    ///
    /// Observation is read-only by construction — providers snapshot the
    /// campaign's atomics — so this is a runtime-only knob excluded from
    /// the configuration hash, and the outcome journal stays
    /// byte-identical with it on or off (CI-enforced by `observe-smoke`).
    pub serve: Option<String>,
    /// Stop injecting once every targeted component's *adjusted* 99%
    /// error margin (§IV-C) is at or below this fraction (e.g. `0.04`).
    ///
    /// Runs already completed keep their journal lines: with one worker
    /// thread the early-stopped journal is an exact byte-prefix of the
    /// full-sample journal, and resuming it without the stop completes
    /// the campaign. Excluded from the configuration hash for exactly
    /// that resume path.
    pub stop_at_margin: Option<f64>,
    /// Two-tier prefix execution: serve each run's machine from a
    /// per-worker warp cursor (see [`crate::warp`]) instead of
    /// re-simulating the fault-free prefix from the nearest checkpoint
    /// (or reset) every time.
    ///
    /// Like `checkpoints` and `fast_path`, a runtime-only speed knob: the
    /// cursor clone is bit-equivalent to a from-reset machine by the
    /// determinism contract, so verdicts and journal bytes are identical
    /// with it on or off (held by the `warp_equivalence` tests and the CI
    /// `warp-equivalence` job) and it is excluded from the campaign
    /// configuration hash.
    pub warp: Option<crate::warp::WarpPolicy>,
}

/// How a campaign checkpoints and restores the fault-free prefix.
#[derive(Clone, Debug, Default)]
pub struct CheckpointPolicy {
    /// Persist checkpoints here and reuse matching ones on the next run
    /// (None = keep them in memory for this campaign only).
    pub dir: Option<std::path::PathBuf>,
    /// Initial epoch interval in cycles (0 = auto). The recorder adapts
    /// the stride to the golden run's actual length either way.
    pub interval: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            // The uniformly scaled configuration pairs with the scaled
            // benchmark inputs (DESIGN.md §1): it preserves the paper's
            // footprint-to-capacity ratios, which drive the kernel-cache-
            // residency effects behind the System-Crash analysis.
            machine: MachineConfig::cortex_a9_scaled(),
            kernel: KernelConfig::default(),
            samples_per_component: 150,
            components: Component::ALL.to_vec(),
            seed: 0xDEFA_0001,
            threads: 0,
            fault_model: FaultModel::SingleBit,
            golden_budget_cycles: 500_000_000,
            supervisor: SupervisorConfig::default(),
            journal: None,
            checkpoints: None,
            fast_path: false,
            serve: None,
            stop_at_margin: None,
            warp: None,
        }
    }
}

/// Campaign-level error.
#[derive(Debug)]
pub enum CampaignError {
    /// The fault-free run failed; the workload/setup is broken.
    Golden(sea_platform::GoldenError),
    /// The outcome journal could not be opened or does not match this
    /// campaign.
    Journal(JournalError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Golden(e) => write!(f, "golden run failed: {e}"),
            CampaignError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A machine ready to run toward `cycle`: the nearest checkpoint at or
/// before the injection cycle when a set is available, a from-reset boot
/// otherwise. Restore and reset are bit-equivalent by the determinism
/// contract (held by the `checkpoint_equivalence` tests), so which path is
/// taken never changes an outcome.
pub(crate) fn machine_toward(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    ckpts: Option<&CheckpointSet>,
    cycle: u64,
) -> System<Board> {
    if let Some(policy) = &cfg.warp {
        if let Some(sys) = crate::warp::cursor_machine_toward(workload, cfg, ckpts, cycle, policy) {
            return sys;
        }
    }
    let mut sys = match ckpts.and_then(|c| c.restore_at(cycle)) {
        Some(sys) => sys,
        None => {
            boot(cfg.machine, &workload.image, &cfg.kernel)
                .expect("boot succeeded for the golden run, must succeed here")
                .0
        }
    };
    if cfg.fast_path {
        // Armed cold on both the restore and the reset path (restored
        // machines never carry fast-path state — it is not snapshotted).
        sys.fastpath_enable(sea_microarch::FastPathConfig::default());
    }
    sys
}

/// Runs one injected execution: boots a fresh machine (or restores the
/// nearest checkpoint), advances it to `spec.cycle`, flips the bit, and
/// runs to a terminal state.
pub fn run_one(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    ckpts: Option<&CheckpointSet>,
    spec: InjectionSpec,
    limits: RunLimits,
) -> InjectionOutcome {
    let mut sys = machine_toward(workload, cfg, ckpts, spec.cycle);
    inject_and_run(&mut sys, workload, cfg, spec, limits)
}

/// The injection body shared by [`run_one`] and the supervised path
/// (`supervisor::run_one_caught`, which boots outside the panic boundary
/// so the machine survives an unwind for the post-mortem).
pub(crate) fn inject_and_run(
    sys: &mut System<Board>,
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    spec: InjectionSpec,
    limits: RunLimits,
) -> InjectionOutcome {
    let fastpath_before = sys.fastpath_stats();
    // Phase 1: fault-free prefix (no terminal event can fire before the
    // golden run's end, and spec.cycle < golden cycles).
    while sys.cycles() < spec.cycle {
        sys.step();
    }
    let bits = sys.component_bits(spec.component);
    // Arm a provenance probe only when someone is listening — the probe adds
    // a per-step drain to the run.
    let provenance = sea_trace::enabled(Subsystem::Injection, Level::Info);
    let site = if provenance {
        sys.flip_bit_probed(spec.component, spec.bit)
    } else {
        sys.flip_bit(spec.component, spec.bit)
    };
    // Multi-bit models upset the adjacent cells of the same array. A strike
    // starting near the array's last cell wraps onto the first cells (the
    // flat bit index is a ring), so every model always flips its full
    // width — previously the out-of-range remainder was silently dropped,
    // under-injecting boundary strikes.
    for extra in 1..cfg.fault_model.width() {
        let b = (spec.bit + extra) % bits;
        sys.flip_bit(spec.component, b);
        event!(Subsystem::Injection, Level::Debug, "injection.multibit";
               cycle = spec.cycle;
               "component" => site.component.short_name(),
               "bit" => b,
               "wrapped" => b < spec.bit);
    }
    // Phase 2: run to a terminal state under the watchdog.
    let outcome = run(sys, limits);
    let class = classify(&outcome, &workload.golden);
    crate::warp::bank_fastpath_delta(fastpath_before, sys.fastpath_stats());
    if let Some(probe) = sys.take_probe() {
        probe.emit_record(&class.to_string(), sys.cycles());
    }
    InjectionOutcome {
        spec,
        array: site.array,
        was_valid: site.was_valid,
        class,
    }
}

/// Serializes one completed run as a journal entry line. Public because
/// fleet shard workers must write byte-identical lines to what a
/// single-process campaign journals — this function *is* the byte contract
/// the deterministic merge relies on.
pub fn verdict_line(i: u64, v: &RunVerdict) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("i", i);
    match (&v.outcome, &v.anomaly) {
        (Some(o), anomaly) => {
            w.str_field("class", &o.class.to_string())
                .str_field("array", o.array.name())
                .bool_field("valid", o.was_valid);
            if anomaly.is_some() {
                // Flaky: panicked, then a retry succeeded. The outcome is
                // authoritative; the anomaly lives in the quarantine file.
                w.bool_field("flaky", true);
            }
        }
        (None, Some(a)) => {
            w.bool_field("anomaly", true)
                .bool_field("deterministic", a.deterministic)
                .u64_field("attempts", a.attempts as u64)
                .str_field("panic", &a.panic_msg);
        }
        (None, None) => unreachable!("attempt_run yields an outcome or an anomaly"),
    }
    w.finish()
}

/// Decodes one journal entry back into a completed-run record. The spec is
/// regenerated from the seed, so only the index and the classification
/// travel through the journal.
fn decode_entry(
    j: &Json,
    specs: &[InjectionSpec],
    id: &RunIdentity,
) -> Option<(usize, Option<InjectionOutcome>, Option<RunAnomaly>)> {
    let i = j.get("i")?.as_u64()? as usize;
    let spec = *specs.get(i)?;
    if j.get("anomaly").and_then(Json::as_bool) == Some(true) {
        let anomaly = RunAnomaly {
            index: i as u64,
            spec,
            workload: id.workload.clone(),
            seed: id.seed,
            config_hash: id.config_hash,
            golden_hash: id.golden_hash,
            attempts: j.get("attempts")?.as_u64()? as u32,
            deterministic: j.get("deterministic")?.as_bool()?,
            panic_msg: j.get("panic")?.as_str()?.to_string(),
            // The snapshot lives in the quarantine file, not the journal.
            postmortem: String::new(),
        };
        Some((i, None, Some(anomaly)))
    } else {
        let outcome = InjectionOutcome {
            spec,
            array: ArrayKind::from_name(j.get("array")?.as_str()?)?,
            was_valid: j.get("valid")?.as_bool()?,
            class: FaultClass::from_name(j.get("class")?.as_str()?)?,
        };
        Some((i, Some(outcome), None))
    }
}

/// Generates the campaign's deterministic spec sequence (shared with the
/// `replay` binary, which must regenerate the exact sequence from the
/// seed).
pub fn generate_specs(cfg: &CampaignConfig, golden_cycles: u64) -> Vec<InjectionSpec> {
    let probe = System::new(cfg.machine, sea_microarch::NullDevice);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut specs: Vec<InjectionSpec> = Vec::new();
    for &component in &cfg.components {
        let bits = probe.component_bits(component);
        for _ in 0..cfg.samples_per_component {
            specs.push(InjectionSpec {
                component,
                bit: rng.gen_range(0..bits),
                cycle: rng.gen_range(0..golden_cycles),
            });
        }
    }
    // Order by injection cycle (stable, so equal cycles keep their seeded
    // draw order). The *set* of specs is untouched — the RNG draws above
    // are already made — but cycle order gives checkpointed campaigns
    // restore locality: a worker claiming a contiguous index block keeps
    // re-cloning the same hot checkpoint instead of hopping across epochs.
    specs.sort_by_key(|s| s.cycle);
    specs
}

/// Renders the live campaign state as a Prometheus text-exposition
/// document. Rewritten (atomically, throttled) to the `--prom-out` target
/// while a campaign runs, so a textfile collector or plain `watch cat`
/// gives a live dashboard of a long campaign.
fn prom_snapshot(progress: &Progress, tracker: &ConvergenceTracker) -> String {
    let mut w = sea_profile::PromWriter::new();
    w.gauge(
        "sea_campaign_runs_done",
        "Injection runs completed this session.",
        progress.done() as f64,
    );
    w.gauge(
        "sea_campaign_runs_per_sec",
        "Current campaign throughput.",
        progress.runs_per_sec(),
    );
    for (label, count) in CLASS_LABELS.iter().zip(progress.class_counts()) {
        w.counter(
            &format!("sea_campaign_class_{label}_total"),
            "Runs classified into this fault-effect class.",
            count,
        );
    }
    let (saves, restores, prefix_saved) = sea_platform::snapshot_metrics();
    w.counter("sea_checkpoint_saves_total", "Checkpoints captured.", saves);
    w.counter(
        "sea_checkpoint_restores_total",
        "Injection runs started from a restored checkpoint.",
        restores,
    );
    w.counter(
        "sea_checkpoint_prefix_cycles_saved_total",
        "Fault-free prefix cycles skipped by checkpoint restores.",
        prefix_saved,
    );
    w.histogram(
        "sea_campaign_run_sim_cycles",
        "Cycles simulated per injection run (post-restore suffix).",
        &RUN_SIM_CYCLES.snapshot(),
    );
    w.counter(
        "sea_warp_handoffs_total",
        "Runs served from a warp-cursor clone.",
        crate::warp::WARP_HANDOFFS.get(),
    );
    w.counter(
        "sea_warp_cursor_resets_total",
        "Warp cursors discarded and re-seeded.",
        crate::warp::WARP_CURSOR_RESETS.get(),
    );
    w.counter(
        "sea_warp_prefix_cycles_saved_total",
        "Fault-free prefix cycles skipped by warp-cursor handoffs.",
        crate::warp::WARP_PREFIX_CYCLES_SAVED.get(),
    );
    w.counter(
        "sea_warp_advance_cycles_total",
        "Detailed cycles stepped on warp cursors toward strike cycles.",
        crate::warp::WARP_ADVANCE_CYCLES.get(),
    );
    w.counter(
        "sea_fastpath_uop_hits_total",
        "Fetched words decoded from the µop cache during injected runs.",
        crate::warp::FASTPATH_UOP_HITS.get(),
    );
    w.counter(
        "sea_fastpath_uop_misses_total",
        "Fetched words fully decoded during injected runs.",
        crate::warp::FASTPATH_UOP_MISSES.get(),
    );
    w.counter(
        "sea_fastpath_latch_hits_total",
        "Translations served by page latches during injected runs.",
        crate::warp::FASTPATH_LATCH_HITS.get(),
    );
    w.counter(
        "sea_fastpath_line_hits_total",
        "L1 accesses served by line latches during injected runs.",
        crate::warp::FASTPATH_LINE_HITS.get(),
    );
    crate::convergence::prom_append(&mut w, tracker);
    w.finish()
}

/// The deterministic execution plan of a campaign: golden run (plus any
/// checkpoints), run limits, the seeded spec sequence, identity hashes,
/// and quarantine — everything needed to execute an arbitrary spec index
/// exactly as a single-process campaign would.
///
/// [`run_campaign`] builds one and drains it through the supervised pool;
/// fleet shard workers build the *same* plan independently in their own
/// process (same workload + config ⇒ same hashes, same golden run, same
/// spec sequence) and execute only the index blocks the daemon grants
/// them, which is what makes the merged shard journals byte-identical to
/// a single-process run.
pub struct CampaignPlan<'a> {
    workload: &'a BuiltWorkload,
    cfg: &'a CampaignConfig,
    golden: GoldenRun,
    ckpts: Option<CheckpointSet>,
    limits: RunLimits,
    specs: Vec<InjectionSpec>,
    id: RunIdentity,
    quarantine: Option<Quarantine>,
    stratum_of: Vec<usize>,
}

impl<'a> CampaignPlan<'a> {
    /// Builds the plan: golden reference run (reusing persisted
    /// checkpoints when the policy allows), run limits, and the
    /// deterministic spec sequence.
    ///
    /// # Errors
    ///
    /// Fails when the golden run does not complete cleanly or the
    /// quarantine file cannot be opened.
    pub fn new(
        name: &str,
        workload: &'a BuiltWorkload,
        cfg: &'a CampaignConfig,
    ) -> Result<Self, CampaignError> {
        let chash = config_hash(cfg);
        let ghash = golden_hash(workload);
        let (golden, ckpts) = acquire_golden_and_checkpoints(workload, cfg, chash, ghash)?;
        let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period)
            .with_wall_ms(cfg.supervisor.run_wall_ms);
        let specs = generate_specs(cfg, golden.cycles);
        let stratum_of = specs
            .iter()
            .map(|s| {
                cfg.components
                    .iter()
                    .position(|&c| c == s.component)
                    .unwrap_or(usize::MAX)
            })
            .collect();
        let quarantine = match &cfg.supervisor.quarantine {
            Some(path) => Some(
                Quarantine::open(path).map_err(|e| CampaignError::Journal(JournalError::Io(e)))?,
            ),
            None => None,
        };
        Ok(CampaignPlan {
            workload,
            cfg,
            golden,
            ckpts,
            limits,
            specs,
            id: RunIdentity {
                workload: name.to_string(),
                seed: cfg.seed,
                config_hash: chash,
                golden_hash: ghash,
            },
            quarantine,
            stratum_of,
        })
    }

    /// Cycles of the fault-free reference run.
    pub fn golden_cycles(&self) -> u64 {
        self.golden.cycles
    }

    /// The deterministic, cycle-sorted spec sequence.
    pub fn specs(&self) -> &[InjectionSpec] {
        &self.specs
    }

    /// Total planned runs (`specs().len()`).
    pub fn total(&self) -> u64 {
        self.specs.len() as u64
    }

    /// Identity hashes stamped onto journals and anomaly records.
    pub fn identity(&self) -> &RunIdentity {
        &self.id
    }

    /// Checkpoints acquired for this plan (None with checkpointing off).
    pub fn checkpoints(&self) -> Option<&CheckpointSet> {
        self.ckpts.as_ref()
    }

    /// Convergence stratum of spec `i`: the index of its component within
    /// `cfg.components` (`usize::MAX` if somehow absent).
    pub fn stratum_of(&self, i: u64) -> usize {
        self.stratum_of[i as usize]
    }

    /// The journal identity header every process sharing this plan writes
    /// — shard journals carry the full-campaign `total`, so identity
    /// validation and the deterministic merge work across processes.
    pub fn header(&self) -> JournalHeader {
        JournalHeader {
            kind: "inject",
            workload: self.id.workload.clone(),
            seed: self.id.seed,
            config_hash: self.id.config_hash,
            golden_hash: self.id.golden_hash,
            ckpt: CheckpointMeta::provenance(self.id.config_hash, self.id.golden_hash),
            total: self.total(),
        }
    }

    /// Executes spec `i` under the full supervision policy (panic
    /// isolation, bounded retry, quarantine).
    pub fn run_index(&self, i: u64) -> RunVerdict {
        attempt_run(
            self.workload,
            self.cfg,
            &self.id,
            self.ckpts.as_ref(),
            i,
            self.specs[i as usize],
            self.limits,
            self.quarantine.as_ref(),
        )
    }
}

/// Runs a full statistical campaign for one workload.
///
/// ```no_run
/// use sea_injection::{run_campaign, CampaignConfig};
/// use sea_workloads::{Scale, Workload};
///
/// # fn main() -> Result<(), sea_injection::CampaignError> {
/// let built = Workload::Qsort.build(Scale::Default);
/// let result = run_campaign("Qsort", &built, &CampaignConfig::default())?;
/// for c in &result.per_component {
///     println!("{}: AVF {:.1}% ±{:.1}%",
///         c.component, 100.0 * c.counts.avf(), 100.0 * c.error_margin());
/// }
/// # Ok(())
/// # }
/// ```
///
/// Runs execute under the campaign supervisor: a simulator panic is
/// captured per-run (with bounded retry and quarantine) instead of
/// aborting the campaign, and with [`CampaignConfig::journal`] set,
/// completed runs are journaled so an interrupted campaign can resume.
///
/// # Errors
///
/// Fails if the fault-free run does not complete cleanly, or if a resumed
/// journal does not match this campaign.
pub fn run_campaign(
    name: &str,
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let plan = CampaignPlan::new(name, workload, cfg)?;
    let probe = System::new(cfg.machine, sea_microarch::NullDevice);
    let specs = plan.specs();
    let id = plan.identity();

    // Journal: open (or resume, skipping already-completed runs).
    let mut outcome_by_idx: Vec<Option<InjectionOutcome>> = vec![None; specs.len()];
    let mut anomalies: Vec<RunAnomaly> = Vec::new();
    let mut done = vec![false; specs.len()];
    let mut resumed = 0u64;
    let journal: Option<Journal> = match &cfg.journal {
        Some(spec) => {
            // The header is stamped whether or not checkpointing is on
            // (the provenance value is interval-independent), so
            // checkpointed and from-reset campaigns write byte-identical
            // journals.
            let header = plan.header();
            let (journal, entries) = open_journal(spec, &header).map_err(CampaignError::Journal)?;
            for e in &entries {
                let Some((i, outcome, anomaly)) = decode_entry(e, specs, id) else {
                    continue;
                };
                if done[i] {
                    continue;
                }
                done[i] = true;
                resumed += 1;
                outcome_by_idx[i] = outcome;
                anomalies.extend(anomaly);
            }
            Some(journal)
        }
        None => None,
    };
    let pending: Vec<u64> = (0..specs.len() as u64)
        .filter(|&i| !done[i as usize])
        .collect();

    // Running per-component margins (§IV-C live): one stratum per targeted
    // component, seeded with any resumed outcomes so a resumed campaign's
    // margins start where the journal left them.
    let tracker = Arc::new(ConvergenceTracker::with_strata(
        crate::stats::Z_99,
        cfg.components
            .iter()
            .map(|&c| (c.short_name().to_string(), probe.component_bits(c))),
    ));
    for (i, o) in outcome_by_idx.iter().enumerate() {
        if let Some(o) = o {
            tracker.record(plan.stratum_of(i as u64), o.class);
        }
    }

    // Expected cost of a run: the golden suffix it must simulate after
    // restoring the nearest checkpoint at or before its strike cycle (the
    // whole run, from reset, when no checkpoints exist). Seeds the
    // work-weighted ETA so restored short-suffix runs don't make the meter
    // wildly optimistic about the from-reset stragglers.
    let epochs = plan.checkpoints().map(|c| c.epochs());
    let expected_work = |cycle: u64| -> u64 {
        let restored = epochs.as_ref().map_or(0, |e| {
            let k = e.partition_point(|&c| c <= cycle);
            if k == 0 {
                0
            } else {
                e[k - 1]
            }
        });
        plan.golden_cycles().saturating_sub(restored)
    };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let campaign_span = sea_trace::span(Subsystem::Injection, Level::Info, "injection.campaign");
    let progress = Arc::new(Progress::new(
        format!("inject {name}"),
        pending.len() as u64,
        &CLASS_LABELS,
    ));
    progress.set_total_work(
        pending
            .iter()
            .map(|&i| expected_work(specs[i as usize].cycle))
            .sum(),
    );

    // Publish the observability providers unconditionally — they are
    // read-only closures over the campaign's atomics, pulled only when an
    // HTTP request actually arrives. The server itself starts only with
    // `serve` set, so a serverless campaign does no extra work.
    {
        let progress = progress.clone();
        let tracker = tracker.clone();
        let workload_name = id.workload.clone();
        let planned = pending.len() as u64;
        let stop_at = cfg.stop_at_margin;
        let tier = if cfg.warp.is_some() {
            "\"warp\""
        } else {
            "\"detailed\""
        };
        sea_observe::publish_status(Some(Arc::new(move || {
            crate::convergence::status_document(
                "inject",
                &workload_name,
                planned,
                resumed,
                &progress,
                &tracker,
                stop_at,
                &[("tier", tier.to_string())],
            )
        })));
    }
    {
        let progress = progress.clone();
        let tracker = tracker.clone();
        sea_observe::publish_metrics(Some(Arc::new(move || prom_snapshot(&progress, &tracker))));
    }
    match &cfg.journal {
        Some(spec) => sea_observe::publish_journal(Some(&journal_file(
            &spec.dir,
            "inject",
            &id.workload,
            spec.format,
        ))),
        None => sea_observe::publish_journal(None),
    }
    if let Some(addr) = &cfg.serve {
        match sea_observe::serve(addr) {
            Ok(bound) => event!(Subsystem::Injection, Level::Info, "observe.serving";
                   "addr" => bound.to_string(),
                   "workload" => id.workload.clone()),
            Err(e) => event!(Subsystem::Injection, Level::Warn, "observe.serve_failed";
                   "addr" => addr.clone(),
                   "error" => e.to_string()),
        }
    }

    // Stop early on statistical convergence, on a poisoned journal (once a
    // write fault has exhausted its retries, running on would only produce
    // unjournaled, unresumable work), or on a process-wide stop request
    // (SIGTERM/SIGINT drain, fleet daemon-initiated shutdown) — in every
    // case workers finish their in-flight run and the journal stays a
    // valid resumable prefix.
    let margin_stop = cfg.stop_at_margin.map(|m| {
        let tracker = tracker.clone();
        move || tracker.converged(m)
    });
    let journal_ref = journal.as_ref();
    let stop_pred: Box<dyn Fn() -> bool + Sync + '_> = Box::new(move || {
        crate::supervisor::stop_requested()
            || journal_ref.is_some_and(|j| j.poisoned())
            || margin_stop.as_ref().is_some_and(|f| f())
    });
    let stop_ref: Option<&(dyn Fn() -> bool + Sync)> = Some(&*stop_pred);
    let (fresh, pool): (Vec<(u64, RunVerdict)>, PoolStats) = run_supervised_until(
        &pending,
        threads,
        &cfg.supervisor,
        Subsystem::Injection,
        "injection.worker",
        stop_ref,
        |i| {
            let verdict = plan.run_index(i);
            if let Some(j) = &journal {
                j.append(&verdict_line(i, &verdict));
            }
            progress.record(verdict.outcome.as_ref().map(|o| class_index(o.class)));
            progress.record_work(verdict.sim_cycles);
            RUN_SIM_CYCLES.record(verdict.sim_cycles);
            // The tracker records *after* the journal append: any sample
            // that trips the stop predicate already has its journal line,
            // keeping the early-stopped journal a prefix of the full run.
            if let Some(o) = &verdict.outcome {
                tracker.record(plan.stratum_of(i), o.class);
            }
            sea_profile::prom_flush(false, || prom_snapshot(&progress, &tracker));
            verdict
        },
    );
    let (done_runs, secs) = progress.finish();
    // Final flushes (the ~1 Hz throttle can swallow the last interval):
    // the Prometheus snapshot, forced, and this thread's trace ring so the
    // campaign's closing events reach the `/events` tail promptly.
    sea_profile::prom_flush(true, || prom_snapshot(&progress, &tracker));
    let journal_poisoned = journal.as_ref().is_some_and(|j| j.poisoned());
    if journal_poisoned {
        event!(Subsystem::Injection, Level::Error, "injection.journal_poisoned_abort";
               "workload" => id.workload.clone(),
               "done" => done_runs,
               "planned" => pending.len() as u64);
    } else if pool.stopped && crate::supervisor::stop_requested() {
        event!(Subsystem::Injection, Level::Info, "injection.stop_drained";
               "workload" => id.workload.clone(),
               "done" => done_runs,
               "planned" => pending.len() as u64);
    } else if pool.stopped {
        event!(Subsystem::Injection, Level::Info, "injection.early_stop";
               "workload" => id.workload.clone(),
               "done" => done_runs,
               "planned" => pending.len() as u64,
               "max_adjusted_margin" => tracker.max_adjusted_margin());
    }
    sea_trace::flush_thread();
    if let Some(mut s) = campaign_span {
        s.field("workload", name.to_string());
        s.field("runs", done_runs);
        s.field(
            "runs_per_sec",
            if secs > 0.0 {
                done_runs as f64 / secs
            } else {
                0.0
            },
        );
        s.field("workers", pool.workers);
        s.field("resumed", resumed);
    }

    for (i, v) in fresh {
        outcome_by_idx[i as usize] = v.outcome;
        anomalies.extend(v.anomaly);
    }
    anomalies.sort_by_key(|a| a.index);

    let mut per_component = Vec::new();
    for &component in &cfg.components {
        let bits = probe.component_bits(component);
        let mut counts = ClassCounts::default();
        let mut tag_counts = ClassCounts::default();
        let mut outs = Vec::new();
        for o in outcome_by_idx
            .iter()
            .flatten()
            .filter(|o| o.spec.component == component)
        {
            counts.add(o.class);
            if o.array == ArrayKind::Tag {
                tag_counts.add(o.class);
            }
            outs.push(*o);
        }
        per_component.push(ComponentResult {
            component,
            bits,
            counts,
            tag_counts,
            outcomes: outs,
        });
    }

    let completed = outcome_by_idx.iter().flatten().count() as u64;
    let supervision = SupervisionStats {
        completed,
        resumed,
        quarantined: anomalies.len() as u64,
        flaky_recovered: anomalies.iter().filter(|a| !a.deterministic).count() as u64,
        worker_respawns: pool.respawns,
        lost: pool.lost.len() as u64,
    };
    if supervision.quarantined > 0 || supervision.lost > 0 || supervision.worker_respawns > 0 {
        event!(Subsystem::Injection, Level::Warn, "injection.supervision";
               "workload" => name.to_string(),
               "quarantined" => supervision.quarantined,
               "flaky_recovered" => supervision.flaky_recovered,
               "worker_respawns" => supervision.worker_respawns,
               "lost" => supervision.lost);
    }

    // One summary event per campaign (not per run — the counters are
    // process-wide monotone): which execution tier served the prefix, and
    // what the cursor bought. The trace-summary tool renders these as its
    // tier-residency section.
    event!(Subsystem::Injection, Level::Info, "injection.tier";
           "workload" => name.to_string(),
           "tier" => if cfg.warp.is_some() { "warp" } else { "detailed" },
           "warp_handoffs" => crate::warp::WARP_HANDOFFS.get(),
           "warp_cursor_resets" => crate::warp::WARP_CURSOR_RESETS.get(),
           "warp_prefix_cycles_saved" => crate::warp::WARP_PREFIX_CYCLES_SAVED.get(),
           "warp_advance_cycles" => crate::warp::WARP_ADVANCE_CYCLES.get(),
           "fastpath_uop_hits" => crate::warp::FASTPATH_UOP_HITS.get(),
           "fastpath_uop_misses" => crate::warp::FASTPATH_UOP_MISSES.get());

    let ckpt_stats = plan.checkpoints().map(|c| c.stats());
    if let Some(s) = ckpt_stats {
        event!(Subsystem::Injection, Level::Info, "injection.checkpoints";
               "workload" => name.to_string(),
               "epochs" => s.epochs,
               "restores" => s.restores,
               "prefix_cycles_saved" => s.prefix_cycles_saved,
               "golden_cycles" => plan.golden_cycles());
    }

    // Make the tail durable before handing the result back, whatever the
    // fsync policy chose to defer.
    if let Some(j) = &journal {
        j.sync();
    }
    let journal_audit = journal.as_ref().map(Journal::audit);

    Ok(CampaignResult {
        workload: name.to_string(),
        golden_cycles: plan.golden_cycles(),
        per_component,
        anomalies,
        supervision,
        checkpoints: ckpt_stats,
        journal: journal_audit,
    })
}

/// Runs the golden reference, wiring in the checkpoint policy: with
/// checkpointing off this is exactly [`golden_run`]; with it on, epoch
/// checkpoints are captured during the run (or, when a persistence
/// directory already holds checkpoints with matching provenance, loaded
/// from disk instead of re-captured). A stale or foreign directory is
/// never trusted — it is re-captured and overwritten.
///
/// Public because `sea-beam` sessions share the same golden-run +
/// checkpoint acquisition (with their own provenance hashes).
pub fn acquire_golden_and_checkpoints(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    chash: u64,
    ghash: u64,
) -> Result<(GoldenRun, Option<CheckpointSet>), CampaignError> {
    let Some(policy) = &cfg.checkpoints else {
        let golden = golden_run(
            cfg.machine,
            &workload.image,
            &cfg.kernel,
            cfg.golden_budget_cycles,
        )
        .map_err(CampaignError::Golden)?;
        return Ok((golden, None));
    };
    if let Some(dir) = policy.dir.as_deref().filter(|d| d.is_dir()) {
        match CheckpointSet::load_dir(dir, chash, ghash) {
            Ok(set) if !set.is_empty() => {
                let golden = golden_run(
                    cfg.machine,
                    &workload.image,
                    &cfg.kernel,
                    cfg.golden_budget_cycles,
                )
                .map_err(CampaignError::Golden)?;
                return Ok((golden, Some(set)));
            }
            Ok(_) => {}
            Err(e) => {
                event!(Subsystem::Injection, Level::Warn, "injection.checkpoint_dir_rejected";
                       "dir" => dir.display().to_string(),
                       "error" => e.to_string());
            }
        }
    }
    let (golden, set) = golden_run_with_checkpoints(
        cfg.machine,
        &workload.image,
        &cfg.kernel,
        cfg.golden_budget_cycles,
        policy.interval,
    )
    .map_err(CampaignError::Golden)?;
    if let Some(dir) = &policy.dir {
        if let Err(e) = set.persist(dir, chash, ghash) {
            event!(Subsystem::Injection, Level::Warn, "injection.checkpoint_persist_failed";
                   "dir" => dir.display().to_string(),
                   "error" => e.to_string());
        }
    }
    Ok((golden, Some(set)))
}

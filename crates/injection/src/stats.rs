//! Statistical fault sampling (Leveugle et al., DATE 2009), as used by the
//! paper to size its campaigns (§IV-C) and report Table IV.

/// z-score for 99% confidence (the paper's level).
pub const Z_99: f64 = 2.5758;
/// z-score for 95% confidence.
pub const Z_95: f64 = 1.9600;

/// Required sample size for a population of `population` bits, target
/// error margin `e`, confidence `z`, and initial failure-probability
/// estimate `p` (the paper starts from the worst case `p = 0.5`).
///
/// `n = N / (1 + e²(N-1) / (z²·p(1-p)))`
pub fn sample_size(population: u64, e: f64, z: f64, p: f64) -> u64 {
    let n = population as f64;
    (n / (1.0 + e * e * (n - 1.0) / (z * z * p * (1.0 - p)))).ceil() as u64
}

/// Error margin achieved by `n` samples out of `population`, at confidence
/// `z` and failure probability `p`:
///
/// `e = z · sqrt(p(1-p)/n · (N-n)/(N-1))`
pub fn error_margin(population: u64, n: u64, z: f64, p: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let nn = population as f64;
    let fpc = if nn > 1.0 {
        (nn - n as f64) / (nn - 1.0)
    } else {
        0.0
    };
    z * (p * (1.0 - p) / n as f64 * fpc.max(0.0)).sqrt()
}

/// The paper's post-campaign re-adjustment (§IV-C): after measuring the
/// AVF, replace the worst-case `p = 0.5` by the measured value *shifted by
/// the initial margin toward 0.5* (conservative), and recompute the margin.
/// This tightened the paper's margins to the 1.7%–4% range of Table IV.
pub fn adjusted_error_margin(population: u64, n: u64, z: f64, measured_avf: f64) -> f64 {
    let e0 = error_margin(population, n, z, 0.5);
    // Shift toward 0.5 by the initial margin; p(1-p) is monotone toward
    // 0.5, so this is the conservative end of the confidence interval.
    let p = if measured_avf < 0.5 {
        (measured_avf + e0).min(0.5)
    } else {
        (measured_avf - e0).max(0.5)
    };
    error_margin(population, n, z, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_about_one_thousand() {
        // §IV-C: 1,000 faults ↔ ~4% margin at 99% confidence, p = 0.5,
        // for the large populations of the cache arrays.
        let bits = 512 * 1024 * 8u64;
        let n = sample_size(bits, 0.0408, Z_99, 0.5);
        assert!((950..=1050).contains(&n), "n = {n}");
        let e = error_margin(bits, 1000, Z_99, 0.5);
        assert!((0.039..=0.042).contains(&e), "e = {e}");
    }

    #[test]
    fn margin_shrinks_with_more_samples_and_small_p() {
        let bits = 1u64 << 22;
        assert!(error_margin(bits, 2000, Z_99, 0.5) < error_margin(bits, 1000, Z_99, 0.5));
        assert!(error_margin(bits, 1000, Z_99, 0.1) < error_margin(bits, 1000, Z_99, 0.5));
    }

    #[test]
    fn adjustment_reproduces_table_iv_range() {
        // With 1,000 samples, measured AVFs between ~2% and 50% must give
        // margins within the paper's 1.7%–4.0% span.
        let bits = 32 * 1024 * 8u64;
        for avf in [0.02, 0.1, 0.3, 0.5] {
            let e = adjusted_error_margin(bits, 1000, Z_99, avf);
            assert!((0.010..=0.041).contains(&e), "avf {avf} → e {e}");
        }
        // Small AVFs tighten the margin below the worst case.
        assert!(
            adjusted_error_margin(bits, 1000, Z_99, 0.02) < error_margin(bits, 1000, Z_99, 0.5)
        );
    }

    #[test]
    fn finite_population_correction_caps_at_population() {
        assert_eq!(error_margin(100, 100, Z_99, 0.5), 0.0);
        assert!(error_margin(100, 0, Z_99, 0.5) >= 1.0);
    }
}

//! Running statistical-convergence tracking (§IV-C): sequential per-class
//! estimates that make the paper's Table IV error margins live numbers
//! while a campaign executes, instead of a post-hoc report.
//!
//! A [`ConvergenceTracker`] holds one stratum per injection target (the
//! paper samples each structure independently) and is updated lock-free by
//! campaign workers. Two margins are tracked per stratum:
//!
//! * the **worst-case margin** `error_margin(N, n, z, 0.5)` — provably
//!   monotone non-increasing in `n` (property-tested below), the number a
//!   progress display should trend on;
//! * the **adjusted margin** `adjusted_error_margin(N, n, z, avf)` — the
//!   paper's tightened §IV-C estimate, which drives `--stop-at-margin`.
//!   It is *not* monotone: early observations swing the measured AVF, so
//!   it may transiently widen before converging.

use crate::stats::{adjusted_error_margin, error_margin};
use sea_platform::FaultClass;
use sea_trace::json::ObjWriter;
use sea_trace::Progress;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::campaign::{class_index, CLASS_LABELS};
use crate::supervisor::supervisor_health;

struct Stratum {
    label: String,
    population: u64,
    counts: [AtomicU64; 4],
}

/// Point-in-time view of one stratum, for `/status` and reports.
#[derive(Clone, Debug)]
pub struct StratumSnapshot {
    /// Stratum label (component name, or `beam` for beam sessions).
    pub label: String,
    /// Sampled population size in bits (drives the finite-population
    /// correction).
    pub population: u64,
    /// Per-class sample counts, index-aligned with
    /// [`crate::CLASS_LABELS`].
    pub counts: [u64; 4],
    /// Total samples observed so far.
    pub samples: u64,
    /// Running AVF estimate (fraction of non-masked samples).
    pub avf: f64,
    /// Worst-case margin at `p = 0.5` — monotone non-increasing.
    pub worst_margin: f64,
    /// The paper's adjusted margin at the running AVF.
    pub adjusted_margin: f64,
}

impl StratumSnapshot {
    /// Per-class observed rates, index-aligned with
    /// [`crate::CLASS_LABELS`].
    pub fn rates(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        if self.samples > 0 {
            for (slot, count) in out.iter_mut().zip(self.counts) {
                *slot = count as f64 / self.samples as f64;
            }
        }
        out
    }
}

/// Lock-free running margins over a set of strata. See the module docs
/// for the worst-case vs. adjusted distinction.
pub struct ConvergenceTracker {
    z: f64,
    strata: Vec<Stratum>,
}

impl ConvergenceTracker {
    /// A tracker at confidence `z` over `(label, population_bits)` strata,
    /// in reporting order.
    pub fn with_strata(z: f64, strata: impl IntoIterator<Item = (String, u64)>) -> Self {
        ConvergenceTracker {
            z,
            strata: strata
                .into_iter()
                .map(|(label, population)| Stratum {
                    label,
                    population,
                    counts: Default::default(),
                })
                .collect(),
        }
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// True when no strata are registered (then nothing can converge).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Record one classified sample for stratum `idx`. Out-of-range
    /// strata are ignored (mirrors [`sea_trace::Progress::record`]).
    pub fn record(&self, idx: usize, class: FaultClass) {
        if let Some(s) = self.strata.get(idx) {
            s.counts[class_index(class)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Samples observed so far for stratum `idx`.
    pub fn samples(&self, idx: usize) -> u64 {
        self.strata.get(idx).map_or(0, |s| {
            s.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        })
    }

    fn snap_one(&self, s: &Stratum) -> StratumSnapshot {
        let counts: [u64; 4] = std::array::from_fn(|i| s.counts[i].load(Ordering::Relaxed));
        let samples: u64 = counts.iter().sum();
        let avf = if samples > 0 {
            (samples - counts[0]) as f64 / samples as f64
        } else {
            0.0
        };
        StratumSnapshot {
            label: s.label.clone(),
            population: s.population,
            counts,
            samples,
            avf,
            // A margin is a bound on a proportion: cap at 1.0. The raw
            // formula exceeds 1.0 for tiny n (z·0.5/√1 ≈ 1.29), which
            // would also break monotonicity against the n = 0 sentinel.
            worst_margin: error_margin(s.population, samples, self.z, 0.5).min(1.0),
            adjusted_margin: adjusted_error_margin(s.population, samples, self.z, avf).min(1.0),
        }
    }

    /// Point-in-time view of every stratum, in registration order.
    pub fn snapshot(&self) -> Vec<StratumSnapshot> {
        self.strata.iter().map(|s| self.snap_one(s)).collect()
    }

    /// Largest adjusted margin across strata (1.0 before any samples);
    /// the campaign has converged when this drops to the requested
    /// threshold.
    pub fn max_adjusted_margin(&self) -> f64 {
        self.strata
            .iter()
            .map(|s| self.snap_one(s).adjusted_margin)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True when every stratum's adjusted margin is at or below
    /// `threshold`. An empty tracker never converges (there is nothing to
    /// estimate), and a stratum with zero samples holds margin 1.0.
    pub fn converged(&self, threshold: f64) -> bool {
        !self.is_empty()
            && self
                .strata
                .iter()
                .all(|s| self.snap_one(s).adjusted_margin <= threshold)
    }

    /// Render one aligned ASCII status table (label, n, AVF, margins) —
    /// shared by reports and the example watcher.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "stratum            n       AVF   margin(p=0.5)   margin(adj)   classes\n",
        );
        for s in self.snapshot() {
            out.push_str(&format!(
                "  {:<14} {:>6}   {:>6.4}   {:>12.4}   {:>10.4}  ",
                s.label, s.samples, s.avf, s.worst_margin, s.adjusted_margin
            ));
            for (name, count) in CLASS_LABELS.iter().zip(s.counts) {
                out.push_str(&format!(" {name}={count}"));
            }
            out.push('\n');
        }
        if self.is_empty() {
            out.push_str("  (no strata)\n");
        }
        out
    }
}

/// Serialize the tracker's strata as a JSON array (the `/status`
/// `strata` member).
pub fn strata_json(tracker: &ConvergenceTracker) -> String {
    let mut arr = String::from("[");
    for (k, s) in tracker.snapshot().iter().enumerate() {
        if k > 0 {
            arr.push(',');
        }
        let mut sw = ObjWriter::new();
        sw.str_field("label", &s.label)
            .u64_field("population", s.population)
            .u64_field("samples", s.samples)
            .f64_field("avf", s.avf)
            .f64_field("margin_worst", s.worst_margin)
            .f64_field("margin_adjusted", s.adjusted_margin);
        let rates = s.rates();
        let mut cw = ObjWriter::new();
        for ((name, count), rate) in CLASS_LABELS.iter().zip(s.counts).zip(rates) {
            let mut one = ObjWriter::new();
            one.u64_field("count", count).f64_field("rate", rate);
            cw.raw_field(name, &one.finish());
        }
        sw.raw_field("classes", &cw.finish());
        arr.push_str(&sw.finish());
    }
    arr.push(']');
    arr
}

/// Build the `/status` JSON document from a campaign's live state. Shared
/// by injection campaigns and beam sessions (`kind` is `"inject"` or
/// `"beam"`); `extra` appends pre-serialized top-level members (the beam
/// session adds fluence and cross-sections).
#[allow(clippy::too_many_arguments)] // the full live-state surface; every field is a distinct concern
pub fn status_document(
    kind: &str,
    workload: &str,
    planned: u64,
    resumed: u64,
    progress: &Progress,
    tracker: &ConvergenceTracker,
    stop_at_margin: Option<f64>,
    extra: &[(&str, String)],
) -> String {
    let done = progress.done();
    let mut o = ObjWriter::new();
    o.str_field("state", if done >= planned { "done" } else { "running" })
        .str_field("kind", kind)
        .str_field("workload", workload)
        .u64_field("planned", planned)
        .u64_field("resumed", resumed)
        .u64_field("done", done)
        .f64_field("elapsed_secs", progress.elapsed_secs())
        .f64_field("runs_per_sec", progress.runs_per_sec())
        .f64_field("eta_secs", progress.eta());
    let mut c = ObjWriter::new();
    for (name, n) in CLASS_LABELS.iter().zip(progress.class_counts()) {
        c.u64_field(name, n);
    }
    o.raw_field("classes", &c.finish());
    let h = supervisor_health();
    let mut hw = ObjWriter::new();
    hw.u64_field("worker_respawns", h.respawns)
        .u64_field("inflight_requeues", h.requeues)
        .u64_field("watchdog_kills", h.watchdog_kills)
        .u64_field("quarantined", h.quarantined);
    o.raw_field("health", &hw.finish());
    o.raw_field("strata", &strata_json(tracker));
    match stop_at_margin {
        Some(m) => {
            o.f64_field("stop_at_margin", m)
                .bool_field("converged", tracker.converged(m));
        }
        None => {
            o.raw_field("stop_at_margin", "null");
        }
    }
    for (k, v) in extra {
        o.raw_field(k, v);
    }
    o.finish()
}

/// Append the supervisor-health counters and per-stratum convergence
/// gauges to a Prometheus document (shared by the injection and beam
/// `/metrics` snapshots).
pub fn prom_append(w: &mut sea_profile::PromWriter, tracker: &ConvergenceTracker) {
    let h = supervisor_health();
    w.counter(
        "sea_supervisor_worker_respawns_total",
        "Workers respawned after dying mid-campaign.",
        h.respawns,
    );
    w.counter(
        "sea_supervisor_inflight_requeues_total",
        "Work items requeued off dead workers.",
        h.requeues,
    );
    w.counter(
        "sea_supervisor_watchdog_kills_total",
        "Runs killed by the wall-clock watchdog.",
        h.watchdog_kills,
    );
    w.counter(
        "sea_supervisor_quarantined_total",
        "Anomalies written to quarantine files.",
        h.quarantined,
    );
    w.counter(
        "sea_supervisor_respawn_backoff_ms_total",
        "Milliseconds spent backing off before worker respawns.",
        h.respawn_backoff_ms,
    );
    for s in tracker.snapshot() {
        let slug = s.label.to_ascii_lowercase();
        w.gauge(
            &format!("sea_convergence_samples_{slug}"),
            "Samples observed for this stratum.",
            s.samples as f64,
        );
        w.gauge(
            &format!("sea_convergence_margin_worst_{slug}"),
            "Worst-case 99% error margin (p = 0.5).",
            s.worst_margin,
        );
        w.gauge(
            &format!("sea_convergence_margin_adjusted_{slug}"),
            "Adjusted 99% error margin at the running AVF.",
            s.adjusted_margin,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Z_99;
    use proptest::prelude::*;

    fn class_of(byte: u8) -> FaultClass {
        FaultClass::ALL[(byte % 4) as usize]
    }

    #[test]
    fn empty_and_unsampled_trackers_do_not_converge() {
        let empty = ConvergenceTracker::with_strata(Z_99, []);
        assert!(empty.is_empty());
        assert!(!empty.converged(1.0));

        let t = ConvergenceTracker::with_strata(Z_99, [("L1D".to_string(), 1u64 << 18)]);
        assert_eq!(t.len(), 1);
        assert!(!t.converged(0.99), "zero samples hold margin 1.0");
        let snap = &t.snapshot()[0];
        assert_eq!(snap.samples, 0);
        assert_eq!(snap.worst_margin, 1.0);
        assert_eq!(snap.adjusted_margin, 1.0);
    }

    #[test]
    fn out_of_range_stratum_is_ignored() {
        let t = ConvergenceTracker::with_strata(Z_99, [("x".to_string(), 100u64)]);
        t.record(5, FaultClass::Sdc);
        assert_eq!(t.samples(0), 0);
    }

    #[test]
    fn render_lists_every_stratum() {
        let t = ConvergenceTracker::with_strata(
            Z_99,
            [("L1D".to_string(), 1u64 << 18), ("RF".to_string(), 1024u64)],
        );
        t.record(0, FaultClass::Masked);
        t.record(1, FaultClass::Sdc);
        let r = t.render();
        assert!(r.contains("L1D"), "{r}");
        assert!(r.contains("RF"), "{r}");
        assert!(r.contains("sdc=1"), "{r}");
    }

    #[test]
    fn converged_requires_every_stratum() {
        let t = ConvergenceTracker::with_strata(
            Z_99,
            [("a".to_string(), 1u64 << 20), ("b".to_string(), 1u64 << 20)],
        );
        for _ in 0..2000 {
            t.record(0, FaultClass::Masked);
        }
        // Stratum b has no samples: margin 1.0 blocks convergence however
        // tight a gets.
        assert!(!t.converged(0.5));
        for _ in 0..2000 {
            t.record(1, FaultClass::Masked);
        }
        assert!(t.converged(0.5));
        assert!(t.max_adjusted_margin() <= 0.5);
    }

    #[test]
    fn status_document_parses_with_strata_health_and_extras() {
        use sea_trace::json::{parse, Json};
        let t = ConvergenceTracker::with_strata(Z_99, [("L1D".to_string(), 1u64 << 18)]);
        for _ in 0..50 {
            t.record(0, FaultClass::Masked);
        }
        t.record(0, FaultClass::Sdc);
        let p = Progress::new("x", 100, &CLASS_LABELS);
        p.record(Some(0));
        let doc = status_document(
            "inject",
            "Qsort",
            100,
            0,
            &p,
            &t,
            Some(0.04),
            &[("fluence", "1.5".to_string())],
        );
        let j = parse(&doc).unwrap();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("inject"));
        assert_eq!(j.get("state").unwrap().as_str(), Some("running"));
        assert_eq!(j.get("done").unwrap().as_u64(), Some(1));
        assert_eq!(
            j.get("classes").unwrap().get("masked").unwrap().as_u64(),
            Some(1)
        );
        assert!(j.get("health").unwrap().get("worker_respawns").is_some());
        let strata = match j.get("strata").unwrap() {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].get("samples").unwrap().as_u64(), Some(51));
        let adj = strata[0].get("margin_adjusted").unwrap().as_f64().unwrap();
        let snap = &t.snapshot()[0];
        assert!((adj - snap.adjusted_margin).abs() < 1e-12);
        assert_eq!(
            strata[0]
                .get("classes")
                .unwrap()
                .get("sdc")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(j.get("converged").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("fluence").unwrap().as_f64(), Some(1.5));

        let none = status_document("beam", "Qsort", 100, 0, &p, &t, None, &[]);
        let j = parse(&none).unwrap();
        assert_eq!(j.get("stop_at_margin"), Some(&Json::Null));
        assert!(j.get("converged").is_none());
    }

    #[test]
    fn prom_append_emits_health_and_margin_series() {
        let t = ConvergenceTracker::with_strata(Z_99, [("L1 D".to_string(), 4096u64)]);
        t.record(0, FaultClass::Sdc);
        let mut w = sea_profile::PromWriter::new();
        prom_append(&mut w, &t);
        let doc = w.finish();
        assert!(
            doc.contains("sea_supervisor_worker_respawns_total"),
            "{doc}"
        );
        assert!(doc.contains("sea_supervisor_watchdog_kills_total"), "{doc}");
        assert!(
            doc.contains("sea_supervisor_respawn_backoff_ms_total"),
            "{doc}"
        );
        assert!(doc.contains("sea_convergence_samples_l1_d 1"), "{doc}");
        assert!(
            doc.contains("sea_convergence_margin_adjusted_l1_d"),
            "{doc}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Satellite 3: the worst-case margin is monotone non-increasing
        // in the number of samples, for any population and any class
        // sequence (it only depends on n, but we drive it through the
        // full record path).
        #[test]
        fn worst_margin_monotone_nonincreasing(
            population in 2u64..(1u64 << 30),
            classes in prop::collection::vec(any::<u8>(), 1..200),
        ) {
            let t = ConvergenceTracker::with_strata(
                Z_99,
                [("s".to_string(), population)],
            );
            let mut prev = t.snapshot()[0].worst_margin;
            prop_assert_eq!(prev, 1.0);
            for b in classes {
                t.record(0, class_of(b));
                let cur = t.snapshot()[0].worst_margin;
                prop_assert!(
                    cur <= prev + 1e-12,
                    "margin widened: {} -> {}", prev, cur
                );
                prev = cur;
            }
        }

        // Satellite 3: the tracker's running numbers agree exactly with
        // the stats-module formulas applied to the final counts.
        #[test]
        fn snapshot_agrees_with_stats_module(
            population in 2u64..(1u64 << 30),
            classes in prop::collection::vec(any::<u8>(), 0..200),
        ) {
            let t = ConvergenceTracker::with_strata(
                Z_99,
                [("s".to_string(), population)],
            );
            let mut masked = 0u64;
            for &b in &classes {
                let c = class_of(b);
                if c == FaultClass::Masked {
                    masked += 1;
                }
                t.record(0, c);
            }
            let n = classes.len() as u64;
            let snap = &t.snapshot()[0];
            prop_assert_eq!(snap.samples, n);
            let avf = if n > 0 { (n - masked) as f64 / n as f64 } else { 0.0 };
            prop_assert_eq!(snap.avf, avf);
            prop_assert_eq!(
                snap.worst_margin,
                crate::stats::error_margin(population, n, Z_99, 0.5).min(1.0)
            );
            prop_assert_eq!(
                snap.adjusted_margin,
                crate::stats::adjusted_error_margin(population, n, Z_99, avf).min(1.0)
            );
        }

        // The adjusted margin never exceeds the worst-case one: shifting
        // p toward 0.5 by e0 can only keep or shrink p(1-p).
        #[test]
        fn adjusted_margin_at_most_worst_case(
            population in 2u64..(1u64 << 30),
            classes in prop::collection::vec(any::<u8>(), 1..200),
        ) {
            let t = ConvergenceTracker::with_strata(
                Z_99,
                [("s".to_string(), population)],
            );
            for b in classes {
                t.record(0, class_of(b));
            }
            let snap = &t.snapshot()[0];
            prop_assert!(snap.adjusted_margin <= snap.worst_margin + 1e-12);
        }
    }
}

//! # sea-injection — statistical microarchitectural fault injection
//!
//! The GeFIN equivalent (paper §IV-C): single-bit transient faults injected
//! uniformly over (bit, cycle) into the six modeled SRAM components —
//! physical register file, L1I, L1D, L2, ITLB, DTLB — with each run
//! classified as Masked / SDC / Application Crash / System Crash against
//! the golden output.
//!
//! Campaigns are deterministic (seeded), parallel (crossbeam worker pool),
//! and carry the statistical machinery of Leveugle et al. used by the
//! paper: sample-size selection at 99% confidence and the post-campaign
//! error-margin re-adjustment behind Table IV.
//!
//! Campaigns run under a [supervisor](crate::supervisor): per-run panic
//! isolation with bounded retry and anomaly quarantine, an append-only
//! outcome journal with crash-safe resume, worker respawn, and a per-run
//! wall-clock watchdog — the simulated counterpart of the paper's beam
//! harness surviving 260 beam-hours of crashes (§IV-B).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod convergence;
pub mod stats;
pub mod supervisor;
pub mod warp;

pub use campaign::{
    acquire_golden_and_checkpoints, class_index, generate_specs, record_run_cycles, run_campaign,
    run_cycles_snapshot, run_one, verdict_line, CampaignConfig, CampaignError, CampaignPlan,
    CampaignResult, CheckpointPolicy, ComponentResult, FaultModel, InjectionOutcome, InjectionSpec,
    SupervisionStats, CLASS_LABELS,
};
pub use convergence::{ConvergenceTracker, StratumSnapshot};
pub use sea_platform::ClassCounts;
pub use supervisor::{
    clear_stop, load_quarantine, open_journal, request_stop, run_one_caught, stop_requested,
    supervisor_health, FsyncPolicy, Journal, JournalAudit, JournalError, JournalFormat,
    JournalHeader, JournalSpec, RunAnomaly, RunVerdict, SupervisorConfig, SupervisorHealth,
};
pub use warp::WarpPolicy;

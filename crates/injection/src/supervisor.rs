//! Campaign supervision: panic isolation, retry, quarantine, journals.
//!
//! The paper's beam methodology survives 260 beam-hours only because the
//! harness itself is resilient: a watchdog watches the "Alive" heartbeat,
//! crashed boards are power-cycled, and the fluence accounting continues
//! across restarts (§IV-B). This module gives the *campaign runners* the
//! same property:
//!
//! * **Per-run panic isolation** — [`run_one_caught`] wraps each injected
//!   execution in `catch_unwind`, so a simulator panic triggered by
//!   corrupted microarchitectural state becomes a [`RunAnomaly`] record
//!   (with a post-mortem snapshot) instead of killing the campaign.
//! * **Bounded retry + quarantine** — [`attempt_run`] retries a panicking
//!   run up to [`SupervisorConfig::max_attempts`] times, distinguishing
//!   deterministic panics from flaky ones, and appends every anomaly to a
//!   replayable JSONL [`Quarantine`] file (see the `replay` bench binary).
//! * **Journal + resume** — [`Journal`] is an append-only, crash-consistent
//!   outcome log built on `sea-durable`: by default a `.seaj` binary file
//!   of CRC32-framed, sequence-numbered records (payloads are the exact
//!   JSONL line bytes, so export is lossless), with
//!   `--journal-format jsonl` as a compatibility mode. On resume the
//!   header (seed, config hash, golden hash, total) is validated, a torn
//!   or corrupt tail from the crash is truncated, and completed runs are
//!   skipped, so a killed campaign continues where it stopped without
//!   re-simulating finished work. Write faults (disk-full, EIO) retry
//!   with bounded backoff, then poison the journal so the campaign drains
//!   cleanly leaving a valid resumable prefix.
//! * **Worker supervision** — [`run_supervised`] pulls work through a
//!   self-healing pool: a worker that dies mid-campaign is respawned (its
//!   in-flight item is requeued), degrading gracefully to fewer threads
//!   once the respawn budget is exhausted.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use sea_durable::{DurableWriter, SeajError};
pub use sea_durable::{FsyncPolicy, JournalFormat};
use sea_platform::{postmortem, CheckpointSet, RunLimits};
use sea_trace::json::{self, Json, ObjWriter};
use sea_trace::{event, Counter, Level, Subsystem};
use sea_workloads::BuiltWorkload;

use crate::campaign::{CampaignConfig, InjectionOutcome, InjectionSpec};

// ---------------------------------------------------------------------------
// Health counters
// ---------------------------------------------------------------------------

/// Workers respawned after dying mid-campaign (process-wide, monotone).
pub static WORKER_RESPAWNS: Counter = Counter::new("supervisor.worker_respawns");
/// Work items requeued off a dead worker (its in-flight item plus the
/// unprocessed remainder of its claimed block).
pub static INFLIGHT_REQUEUES: Counter = Counter::new("supervisor.inflight_requeues");
/// Anomaly records written to quarantine files.
pub static QUARANTINED: Counter = Counter::new("supervisor.quarantined");
/// Milliseconds spent in respawn backoff before restarting dead workers
/// (process-wide, monotone). A pool that keeps dying does not thrash: each
/// respawn waits a jittered, exponentially growing delay first.
pub static RESPAWN_BACKOFF_MS: Counter = Counter::new("supervisor.respawn_backoff_ms");

/// Point-in-time supervisor health, aggregated across every campaign in
/// the process — the numbers behind the `/status` `health` object and the
/// `sea_supervisor_*` Prometheus counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorHealth {
    /// Worker respawns ([`WORKER_RESPAWNS`]).
    pub respawns: u64,
    /// Requeued work items ([`INFLIGHT_REQUEUES`]).
    pub requeues: u64,
    /// Runs killed by the wall-clock watchdog
    /// ([`sea_platform::watchdog_kills`]).
    pub watchdog_kills: u64,
    /// Quarantined anomalies ([`QUARANTINED`]).
    pub quarantined: u64,
    /// Milliseconds spent backing off before worker respawns
    /// ([`RESPAWN_BACKOFF_MS`]).
    pub respawn_backoff_ms: u64,
}

/// Read every supervisor health counter at once.
pub fn supervisor_health() -> SupervisorHealth {
    SupervisorHealth {
        respawns: WORKER_RESPAWNS.get(),
        requeues: INFLIGHT_REQUEUES.get(),
        watchdog_kills: sea_platform::watchdog_kills(),
        quarantined: QUARANTINED.get(),
        respawn_backoff_ms: RESPAWN_BACKOFF_MS.get(),
    }
}

// ---------------------------------------------------------------------------
// Cooperative stop flag
// ---------------------------------------------------------------------------

/// Process-wide cooperative stop request (SIGTERM/SIGINT drains, fleet
/// daemon-initiated worker shutdown). Checked by every campaign and beam
/// stop predicate.
static STOP: AtomicBool = AtomicBool::new(false);

/// Ask every running campaign/session in this process to stop: workers
/// finish their in-flight run, drain, and journals/metrics flush on the
/// normal exit path. Signal-handler-safe (a single atomic store).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// True once [`request_stop`] has been called (and not yet cleared).
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Re-arm after a drained stop — for long-lived daemons that run several
/// studies in one process, and for tests.
pub fn clear_stop() {
    STOP.store(false, Ordering::SeqCst);
}

/// Supervision knobs shared by injection campaigns and beam sessions.
///
/// The two function-pointer hooks exist for fault-injection *into the
/// harness itself* (tests and the CI resume job): `panic_hook` fires
/// inside the caught region (a panic there is captured as an anomaly),
/// `worker_hook` fires outside it (a panic there kills the worker thread
/// and exercises the respawn path).
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Attempts per run before the spec is quarantined without an outcome
    /// (≥ 1; the paper's harness likewise bounds per-board restarts).
    pub max_attempts: u32,
    /// Per-run wall-clock budget in milliseconds (0 = disabled). This
    /// complements the cycle budget: a pathological run that burns host
    /// time without advancing simulated cycles cannot stall a worker
    /// forever.
    pub run_wall_ms: u64,
    /// Total worker respawns allowed before the pool degrades to fewer
    /// threads.
    pub max_worker_respawns: usize,
    /// Quarantine file for anomaly records (append-only JSONL).
    pub quarantine: Option<PathBuf>,
    /// Test-only fault hook, called *inside* the caught region with the
    /// spec index before each attempt.
    pub panic_hook: Option<fn(u64, &InjectionSpec)>,
    /// Test-only fault hook, called in the worker loop *outside* the
    /// caught region with (worker, spec index).
    pub worker_hook: Option<fn(usize, u64)>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_attempts: 2,
            run_wall_ms: 0,
            max_worker_respawns: 4,
            quarantine: None,
            panic_hook: None,
            worker_hook: None,
        }
    }
}

/// One supervised run that panicked: everything needed to report, count,
/// and deterministically replay it.
#[derive(Clone, Debug, PartialEq)]
pub struct RunAnomaly {
    /// Spec index within the campaign's deterministic spec sequence.
    pub index: u64,
    /// The injected fault.
    pub spec: InjectionSpec,
    /// Workload display name.
    pub workload: String,
    /// Campaign RNG seed (spec regeneration key).
    pub seed: u64,
    /// Campaign configuration hash (see [`config_hash`]).
    pub config_hash: u64,
    /// Golden-output hash (pins the workload build/scale).
    pub golden_hash: u64,
    /// Attempts made (1..=max_attempts).
    pub attempts: u32,
    /// Whether every attempt panicked (true) or a retry succeeded (false).
    pub deterministic: bool,
    /// The panic payload, stringified.
    pub panic_msg: String,
    /// `sea_platform::postmortem` snapshot at the failed attempt, plus the
    /// architectural state fingerprint.
    pub postmortem: String,
}

/// A panic captured at the simulator boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct CaughtPanic {
    /// The panic payload, stringified.
    pub message: String,
    /// Post-mortem snapshot of the machine the panic unwound out of.
    pub postmortem: String,
}

/// Stringify a panic payload (the common `&str`/`String` cases).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// 64-bit FNV-1a over raw bytes (journal/quarantine config hashing).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic hash of everything that shapes a campaign's *physics*:
/// machine, kernel, sample count, targeted components, fault model, and
/// golden budget. Runtime-only knobs (threads, journal, supervision) are
/// deliberately excluded — resuming with a different thread count is
/// valid, resuming against a different machine is not.
pub fn config_hash(cfg: &CampaignConfig) -> u64 {
    fnv1a(
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{}",
            cfg.machine,
            cfg.kernel,
            cfg.samples_per_component,
            cfg.components,
            cfg.fault_model,
            cfg.golden_budget_cycles,
        )
        .as_bytes(),
    )
}

/// Hash of the workload's golden output (plus image text size): pins the
/// exact benchmark build and input scale a journal or quarantine record
/// was produced against.
pub fn golden_hash(workload: &BuiltWorkload) -> u64 {
    let mut h = fnv1a(&workload.golden);
    h = h.wrapping_mul(0x100_0000_01b3) ^ workload.image.text_bytes() as u64;
    h
}

// ---------------------------------------------------------------------------
// Quarantine
// ---------------------------------------------------------------------------

/// Append-only JSONL file of [`RunAnomaly`] records, shared by all workers
/// of a campaign.
pub struct Quarantine {
    w: Mutex<File>,
    written: AtomicU64,
}

impl Quarantine {
    /// Opens (creating if needed) the quarantine file for appending.
    ///
    /// A crash mid-record leaves a newline-less torn tail that would wedge
    /// `replay` on a half-record and let the next append concatenate onto
    /// it; the tail is truncated away before appending resumes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Quarantine> {
        let path = path.as_ref();
        if let Ok(bytes) = std::fs::read(path) {
            let keep = sea_durable::jsonl_tail_offset(&bytes);
            if keep < bytes.len() {
                let dropped = sea_durable::truncate_file(path, keep as u64)?;
                event!(Subsystem::Injection, Level::Warn, "quarantine.torn_tail";
                       "path" => path.display().to_string(),
                       "dropped_bytes" => dropped);
            }
        }
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Quarantine {
            w: Mutex::new(f),
            written: AtomicU64::new(0),
        })
    }

    /// Appends one anomaly record (one line, flushed immediately so a
    /// subsequent campaign crash cannot lose it).
    pub fn record(&self, a: &RunAnomaly) {
        let mut o = ObjWriter::new();
        o.str_field("rec", "anomaly")
            .str_field("workload", &a.workload)
            .str_field("seed", &format!("{:016x}", a.seed))
            .str_field("cfg", &format!("{:016x}", a.config_hash))
            .str_field("golden", &format!("{:016x}", a.golden_hash))
            .u64_field("i", a.index)
            .str_field("component", a.spec.component.short_name())
            .u64_field("bit", a.spec.bit)
            .u64_field("cycle", a.spec.cycle)
            .u64_field("attempts", a.attempts as u64)
            .bool_field("deterministic", a.deterministic)
            .str_field("panic", &a.panic_msg)
            .str_field("postmortem", &a.postmortem);
        let mut line = o.finish();
        line.push('\n');
        let mut w = self.w.lock();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
        self.written.fetch_add(1, Ordering::Relaxed);
        QUARANTINED.inc();
    }

    /// Number of records appended by this handle.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }
}

fn parse_hex64(j: Option<&Json>) -> Option<u64> {
    u64::from_str_radix(j?.as_str()?, 16).ok()
}

/// Loads every parseable anomaly record from a quarantine file.
///
/// Lines that do not parse (e.g. a torn tail write) are skipped.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn load_quarantine(path: impl AsRef<Path>) -> std::io::Result<Vec<RunAnomaly>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Ok(j) = json::parse(line) else { continue };
        if j.get("rec").and_then(Json::as_str) != Some("anomaly") {
            continue;
        }
        let Some(a) = decode_anomaly(&j) else {
            continue;
        };
        out.push(a);
    }
    Ok(out)
}

fn decode_anomaly(j: &Json) -> Option<RunAnomaly> {
    let component = sea_microarch::Component::from_short_name(
        j.get("component").and_then(Json::as_str).unwrap_or(""),
    )?;
    Some(RunAnomaly {
        index: j.get("i")?.as_u64()?,
        spec: InjectionSpec {
            component,
            bit: j.get("bit")?.as_u64()?,
            cycle: j.get("cycle")?.as_u64()?,
        },
        workload: j.get("workload")?.as_str()?.to_string(),
        seed: parse_hex64(j.get("seed"))?,
        config_hash: parse_hex64(j.get("cfg"))?,
        golden_hash: parse_hex64(j.get("golden"))?,
        attempts: j.get("attempts")?.as_u64()? as u32,
        deterministic: j.get("deterministic")?.as_bool()?,
        panic_msg: j.get("panic")?.as_str()?.to_string(),
        postmortem: j.get("postmortem")?.as_str()?.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// Where (and whether) a campaign journals its outcomes.
#[derive(Clone, Debug)]
pub struct JournalSpec {
    /// Directory holding one journal file per (workload, kind).
    pub dir: PathBuf,
    /// Validate an existing journal and skip its completed runs instead of
    /// truncating it.
    pub resume: bool,
    /// On-disk representation: CRC-framed binary (`.seaj`, the default) or
    /// plain JSONL compatibility mode.
    pub format: JournalFormat,
    /// How often appended records are `fdatasync`ed.
    pub fsync: FsyncPolicy,
}

impl JournalSpec {
    /// A fresh (non-resuming) journal in `dir` with the default binary
    /// format and fsync cadence.
    pub fn new(dir: impl Into<PathBuf>) -> JournalSpec {
        JournalSpec {
            dir: dir.into(),
            resume: false,
            format: JournalFormat::default(),
            fsync: FsyncPolicy::default(),
        }
    }
}

/// The identity a journal is bound to; all fields are validated on resume.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalHeader {
    /// `"inject"` or `"beam"`.
    pub kind: &'static str,
    /// Workload display name.
    pub workload: String,
    /// Campaign RNG seed (specs regenerate deterministically from it).
    pub seed: u64,
    /// Campaign configuration hash.
    pub config_hash: u64,
    /// Golden-output hash.
    pub golden_hash: u64,
    /// Checkpoint provenance hash
    /// ([`sea_snapshot::CheckpointMeta::provenance`]); stamped whether or
    /// not the campaign checkpoints, and deliberately independent of the
    /// epoch interval, so enabling checkpointing never forks journal
    /// identity.
    pub ckpt: u64,
    /// Total planned runs.
    pub total: u64,
}

/// Journal open/validation error.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An existing journal does not match this campaign (wrong seed,
    /// config, workload build, or run count).
    Header(String),
    /// The file's container structure is untrustworthy beyond tail repair:
    /// wrong magic, wrong container version, or a corrupt file header.
    /// (A torn *tail* is not an error — it is truncated and resumed.)
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Header(s) => write!(f, "journal header mismatch: {s}"),
            JournalError::Corrupt(s) => write!(
                f,
                "journal corrupt: {s} (delete the file or rerun without --resume to start over)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// The journal file for one (workload, kind, format) triple inside a
/// journal dir.
pub fn journal_file(dir: &Path, kind: &str, workload: &str, format: JournalFormat) -> PathBuf {
    let slug: String = workload
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{slug}.{kind}.{}", format.extension()))
}

/// Write-side summary of one journal's life in this process — the row
/// behind the post-run journal audit table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalAudit {
    /// On-disk representation.
    pub format: JournalFormat,
    /// Records appended by this handle.
    pub appended: u64,
    /// Records replayed from an existing journal on resume.
    pub resumed: u64,
    /// Torn/corrupt tail bytes truncated on resume.
    pub torn_bytes: u64,
    /// Explicit `fdatasync` calls issued by the fsync policy.
    pub fsyncs: u64,
    /// Append attempts that failed and were retried.
    pub retries: u64,
    /// True when a write fault exhausted its retries and the journal
    /// refused further appends (the campaign drained early).
    pub poisoned: bool,
}

struct JournalInner {
    w: DurableWriter,
    next_seq: u64,
}

/// An open append-only outcome journal backed by a [`DurableWriter`]:
/// records are CRC32-framed (binary mode) or newline-terminated lines
/// (JSONL mode), fsynced per the [`FsyncPolicy`], and written
/// all-or-nothing so a crash or write fault always leaves a valid
/// resumable prefix.
pub struct Journal {
    inner: Mutex<JournalInner>,
    format: JournalFormat,
    sub: Subsystem,
    appended: AtomicU64,
    resumed: u64,
    torn_bytes: u64,
    poisoned: AtomicBool,
}

impl Journal {
    /// Appends one entry line (the caller provides the serialized object,
    /// without trailing newline). In binary mode the line bytes become a
    /// framed record payload — which is what makes the JSONL export of a
    /// binary journal byte-identical to a JSONL-mode journal.
    pub fn append(&self, line: &str) {
        if self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        let res = match self.format {
            JournalFormat::Binary => {
                let rec = sea_durable::encode_record(inner.next_seq, line.as_bytes());
                inner.w.append(&rec)
            }
            JournalFormat::Jsonl => {
                let mut bytes = Vec::with_capacity(line.len() + 1);
                bytes.extend_from_slice(line.as_bytes());
                bytes.push(b'\n');
                inner.w.append(&bytes)
            }
        };
        match res {
            Ok(()) => {
                inner.next_seq += 1;
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                // The writer rolled the file back to the last good record
                // and poisoned itself after bounded retries; surface the
                // fault once and let the campaign drain cleanly.
                self.poisoned.store(true, Ordering::Relaxed);
                event!(self.sub, Level::Error, "journal.write_failed";
                       "error" => e.to_string(),
                       "valid_bytes" => inner.w.len());
            }
        }
    }

    /// True once a write fault exhausted its retries; the campaign's stop
    /// predicate consults this to abort cleanly with a resumable prefix.
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Force an `fdatasync` of everything appended so far.
    pub fn sync(&self) {
        self.inner.lock().w.sync();
    }

    /// Write-side summary for the post-run audit table.
    pub fn audit(&self) -> JournalAudit {
        let stats = self.inner.lock().w.stats();
        JournalAudit {
            format: self.format,
            appended: self.appended.load(Ordering::Relaxed),
            resumed: self.resumed,
            torn_bytes: self.torn_bytes,
            fsyncs: stats.fsyncs,
            retries: stats.retries,
            poisoned: self.poisoned(),
        }
    }
}

/// Journal format version. v2 added the `ckpt` provenance field and, in
/// the same change, cycle-sorted spec sequences — a v1 journal's indices
/// mean different specs, so v1 files are rejected rather than misread.
const JOURNAL_VERSION: u64 = 2;

fn header_line(h: &JournalHeader) -> String {
    let mut o = ObjWriter::new();
    o.str_field("journal", "sea-campaign")
        .u64_field("v", JOURNAL_VERSION)
        .str_field("kind", h.kind)
        .str_field("workload", &h.workload)
        .str_field("seed", &format!("{:016x}", h.seed))
        .str_field("cfg", &format!("{:016x}", h.config_hash))
        .str_field("golden", &format!("{:016x}", h.golden_hash))
        .str_field("ckpt", &format!("{:016x}", h.ckpt))
        .u64_field("total", h.total);
    o.finish()
}

fn validate_header(line: &str, want: &JournalHeader) -> Result<(), String> {
    let j = json::parse(line).map_err(|e| format!("unreadable header: {e}"))?;
    if j.get("journal").and_then(Json::as_str) != Some("sea-campaign") {
        return Err("not a sea-campaign journal".to_string());
    }
    match j.get("v").and_then(Json::as_u64) {
        Some(JOURNAL_VERSION) => {}
        v => {
            return Err(format!(
                "format version: journal has {v:?}, this build writes {JOURNAL_VERSION}"
            ))
        }
    }
    let checks: [(&str, String, Option<String>); 6] = [
        (
            "kind",
            want.kind.to_string(),
            j.get("kind").and_then(Json::as_str).map(String::from),
        ),
        (
            "workload",
            want.workload.clone(),
            j.get("workload").and_then(Json::as_str).map(String::from),
        ),
        (
            "seed",
            format!("{:016x}", want.seed),
            j.get("seed").and_then(Json::as_str).map(String::from),
        ),
        (
            "cfg",
            format!("{:016x}", want.config_hash),
            j.get("cfg").and_then(Json::as_str).map(String::from),
        ),
        (
            "golden",
            format!("{:016x}", want.golden_hash),
            j.get("golden").and_then(Json::as_str).map(String::from),
        ),
        (
            "ckpt",
            format!("{:016x}", want.ckpt),
            j.get("ckpt").and_then(Json::as_str).map(String::from),
        ),
    ];
    for (name, want_v, got) in checks {
        match got {
            Some(g) if g == want_v => {}
            got => {
                return Err(format!(
                    "{name}: journal has {got:?}, campaign wants {want_v:?}"
                ))
            }
        }
    }
    if j.get("total").and_then(Json::as_u64) != Some(want.total) {
        return Err(format!("total: campaign plans {} runs", want.total));
    }
    Ok(())
}

fn journal_sub(kind: &str) -> Subsystem {
    if kind == "beam" {
        Subsystem::Beam
    } else {
        Subsystem::Injection
    }
}

/// Opens (or resumes) the journal for `header`, returning the open journal
/// plus the already-completed entry objects (empty for a fresh journal).
///
/// On resume the header is validated against `header`, then the record
/// region is walked with CRC/sequence validation (binary) or line parsing
/// (JSONL). A torn or corrupt *tail* — a partial record from the crash, a
/// flipped bit, a sequence gap — is truncated away with a warning and
/// those runs are simply re-executed; only an untrustworthy header is a
/// hard error. An existing but *empty* file (crashed before the header
/// landed) is recreated fresh.
///
/// # Errors
///
/// I/O failures, header mismatches ([`JournalError::Header`]), and
/// structurally corrupt containers ([`JournalError::Corrupt`]).
pub fn open_journal(
    spec: &JournalSpec,
    header: &JournalHeader,
) -> Result<(Journal, Vec<Json>), JournalError> {
    std::fs::create_dir_all(&spec.dir).map_err(JournalError::Io)?;
    let path = journal_file(&spec.dir, header.kind, &header.workload, spec.format);
    let sub = journal_sub(header.kind);
    let existing = if spec.resume && path.exists() {
        std::fs::read(&path).map_err(JournalError::Io)?
    } else {
        Vec::new()
    };

    if spec.resume && path.exists() && existing.is_empty() {
        // Crashed after create but before the header write: nothing to
        // resume, nothing to mis-trust. Recreate.
        event!(sub, Level::Warn, "journal.empty_recreated";
               "path" => path.display().to_string());
    }

    if !existing.is_empty() {
        let mut entries = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut push_entry = |line: &str| -> bool {
            let Ok(j) = json::parse(line) else {
                return false;
            };
            let Some(i) = j.get("i").and_then(Json::as_u64) else {
                return false;
            };
            if i < header.total && seen.insert(i) {
                entries.push(j);
            }
            true
        };

        let (valid_len, next_seq) = match spec.format {
            JournalFormat::Binary => {
                let scan = sea_durable::scan(&existing).map_err(|e| match e {
                    SeajError::NotSeaj | SeajError::Version(_) => {
                        JournalError::Corrupt(format!("{}: {e}", path.display()))
                    }
                    SeajError::CorruptHeader(_) => JournalError::Corrupt(format!(
                        "{}: {e}; the campaign identity cannot be trusted",
                        path.display()
                    )),
                })?;
                let header_str = std::str::from_utf8(scan.header).map_err(|_| {
                    JournalError::Corrupt(format!("{}: header is not UTF-8", path.display()))
                })?;
                validate_header(header_str, header).map_err(JournalError::Header)?;
                // Walk records tracking byte offsets so a CRC-valid but
                // non-entry payload (should never happen) truncates too.
                let record_bytes: usize = scan
                    .records
                    .iter()
                    .map(|r| r.len() + sea_durable::RECORD_OVERHEAD)
                    .sum();
                let preamble = existing.len() - scan.torn_bytes - record_bytes;
                let mut off = preamble;
                let mut seq = 0u64;
                for payload in &scan.records {
                    let parsed = match std::str::from_utf8(payload) {
                        Ok(line) => push_entry(line),
                        Err(_) => false,
                    };
                    if !parsed {
                        break;
                    }
                    off += payload.len() + sea_durable::RECORD_OVERHEAD;
                    seq += 1;
                }
                (off, seq + 1)
            }
            JournalFormat::Jsonl => {
                let text = String::from_utf8_lossy(&existing);
                let header_end = match text.find('\n') {
                    Some(nl) => nl + 1,
                    None => {
                        return Err(JournalError::Corrupt(format!(
                            "{}: torn header line; the campaign identity cannot be trusted",
                            path.display()
                        )))
                    }
                };
                validate_header(text[..header_end - 1].trim_end(), header)
                    .map_err(JournalError::Header)?;
                let mut off = header_end;
                let mut replayed = 0u64;
                while off < text.len() {
                    let Some(nl) = text[off..].find('\n') else {
                        break; // newline-less torn tail
                    };
                    if !push_entry(&text[off..off + nl]) {
                        break; // unparseable line: truncate from here
                    }
                    replayed += 1;
                    off += nl + 1;
                }
                (off, replayed + 1)
            }
        };

        let torn_bytes = (existing.len() - valid_len) as u64;
        if torn_bytes > 0 {
            event!(sub, Level::Warn, "journal.torn_tail";
                   "path" => path.display().to_string(),
                   "dropped_bytes" => torn_bytes,
                   "valid_bytes" => valid_len as u64);
        }
        let w = DurableWriter::open_at(&path, valid_len as u64, spec.fsync)
            .map_err(JournalError::Io)?;
        event!(sub, Level::Info, "supervisor.resume";
               "kind" => header.kind,
               "workload" => header.workload.clone(),
               "done" => entries.len() as u64,
               "total" => header.total);
        let resumed = entries.len() as u64;
        return Ok((
            Journal {
                inner: Mutex::new(JournalInner { w, next_seq }),
                format: spec.format,
                sub,
                appended: AtomicU64::new(0),
                resumed,
                torn_bytes,
                poisoned: AtomicBool::new(false),
            },
            entries,
        ));
    }

    // Fresh journal (or an empty leftover being recreated).
    let mut w = DurableWriter::create(&path, spec.fsync).map_err(JournalError::Io)?;
    let line = header_line(header);
    let bytes = match spec.format {
        JournalFormat::Binary => sea_durable::encode_file_header(line.as_bytes()),
        JournalFormat::Jsonl => {
            let mut b = line.into_bytes();
            b.push(b'\n');
            b
        }
    };
    w.append(&bytes).map_err(JournalError::Io)?;
    // The identity must survive a crash even under `--fsync none`.
    w.sync();
    Ok((
        Journal {
            inner: Mutex::new(JournalInner { w, next_seq: 1 }),
            format: spec.format,
            sub,
            appended: AtomicU64::new(0),
            resumed: 0,
            torn_bytes: 0,
            poisoned: AtomicBool::new(false),
        },
        Vec::new(),
    ))
}

// ---------------------------------------------------------------------------
// Panic-isolated runs
// ---------------------------------------------------------------------------

/// Runs one injected execution with the simulator panic boundary: a panic
/// anywhere between the bit flip and the terminal state is captured
/// together with a post-mortem snapshot of the wedged machine.
///
/// Unwind-safety audit: the `System` crosses the `catch_unwind` boundary
/// under `AssertUnwindSafe`. After a panic it is only *read* (the
/// post-mortem snapshot and state fingerprint) and then dropped — every
/// attempt acquires a fresh machine (a from-reset boot, or an independent
/// COW clone of a checkpoint), so no half-mutated microarchitectural state
/// can leak into another run.
///
/// On success also returns the number of cycles this attempt actually
/// simulated (terminal cycle minus the restored checkpoint's cycle) — the
/// work-weighted progress unit that keeps ETA honest when checkpoint
/// restores skip fault-free prefixes of wildly different lengths.
///
/// # Errors
///
/// Returns the captured panic when the simulator panicked.
pub fn run_one_caught(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    ckpts: Option<&CheckpointSet>,
    index: u64,
    spec: InjectionSpec,
    limits: RunLimits,
) -> Result<(InjectionOutcome, u64), CaughtPanic> {
    let mut sys = crate::campaign::machine_toward(workload, cfg, ckpts, spec.cycle);
    let start_cycles = sys.cycles();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if let Some(hook) = cfg.supervisor.panic_hook {
            hook(index, &spec);
        }
        crate::campaign::inject_and_run(&mut sys, workload, cfg, spec, limits)
    }));
    let sim_cycles = sys.cycles().saturating_sub(start_cycles);
    let caught = caught.map(|out| (out, sim_cycles));
    caught.map_err(|payload| {
        let message = panic_message(payload.as_ref());
        let pm = format!(
            "{}state_fingerprint={:#018x}\n",
            postmortem(&sys),
            sys.state_fingerprint()
        );
        event!(Subsystem::Injection, Level::Info, "supervisor.panic";
               cycle = sys.cycles();
               "index" => index,
               "component" => spec.component.short_name(),
               "bit" => spec.bit,
               "panic" => message.clone());
        CaughtPanic {
            message,
            postmortem: pm,
        }
    })
}

/// A supervised run's result: an outcome, an anomaly, or both (a flaky
/// panic that succeeded on retry yields an outcome *and* an anomaly
/// record).
#[derive(Clone, Debug, PartialEq)]
pub struct RunVerdict {
    /// The classified outcome, absent when every attempt panicked.
    pub outcome: Option<InjectionOutcome>,
    /// The anomaly record, present when any attempt panicked.
    pub anomaly: Option<RunAnomaly>,
    /// Cycles the successful attempt actually simulated (post-restore
    /// suffix only). Zero when every attempt panicked or when the verdict
    /// was recovered from a journal rather than re-run. Deliberately *not*
    /// part of [`InjectionOutcome`]: it depends on which checkpoint was
    /// restored, so it must never feed journal lines or cross-campaign
    /// equivalence checks.
    pub sim_cycles: u64,
}

/// Identity fields stamped onto anomaly records.
#[derive(Clone, Debug)]
pub struct RunIdentity {
    /// Workload display name.
    pub workload: String,
    /// Campaign seed.
    pub seed: u64,
    /// Campaign configuration hash.
    pub config_hash: u64,
    /// Golden-output hash.
    pub golden_hash: u64,
}

/// Runs one spec under the full supervision policy: panic isolation plus
/// bounded retry, quarantining any anomaly.
#[allow(clippy::too_many_arguments)] // the supervised-run plumbing: every field is a distinct concern
pub fn attempt_run(
    workload: &BuiltWorkload,
    cfg: &CampaignConfig,
    id: &RunIdentity,
    ckpts: Option<&CheckpointSet>,
    index: u64,
    spec: InjectionSpec,
    limits: RunLimits,
    quarantine: Option<&Quarantine>,
) -> RunVerdict {
    let max_attempts = cfg.supervisor.max_attempts.max(1);
    let mut last_panic: Option<CaughtPanic> = None;
    let mut attempts = 0u32;
    let mut outcome = None;
    let mut sim_cycles = 0u64;
    while attempts < max_attempts {
        attempts += 1;
        match run_one_caught(workload, cfg, ckpts, index, spec, limits) {
            Ok((out, sim)) => {
                outcome = Some(out);
                sim_cycles = sim;
                break;
            }
            Err(p) => last_panic = Some(p),
        }
    }
    let anomaly = last_panic.map(|p| {
        let a = RunAnomaly {
            index,
            spec,
            workload: id.workload.clone(),
            seed: id.seed,
            config_hash: id.config_hash,
            golden_hash: id.golden_hash,
            attempts,
            deterministic: outcome.is_none(),
            panic_msg: p.message,
            postmortem: p.postmortem,
        };
        if let Some(q) = quarantine {
            q.record(&a);
        }
        a
    });
    RunVerdict {
        outcome,
        anomaly,
        sim_cycles,
    }
}

// ---------------------------------------------------------------------------
// Supervised worker pool
// ---------------------------------------------------------------------------

/// What the pool observed while draining the work list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Worker threads started initially.
    pub workers: usize,
    /// Workers respawned after dying mid-campaign.
    pub respawns: u32,
    /// Items abandoned because they kept killing workers even after the
    /// respawn budget was spent.
    pub lost: Vec<u64>,
    /// True when the pool drained early because the stop predicate fired
    /// (see [`run_supervised_until`]); remaining items were skipped, not
    /// lost.
    pub stopped: bool,
}

const IDLE: u64 = u64::MAX;

/// Delay before the `nth` worker respawn of a pool: 10 ms doubling per
/// respawn, capped at 1 s, with deterministic ±50% jitter drawn from the
/// process-wide respawn count (`salt`) so concurrent pools desynchronize.
fn respawn_backoff_ms(nth: u32, salt: u64) -> u64 {
    let base = (10u64 << nth.min(7)).min(1_000);
    let jitter = fnv1a(&salt.to_le_bytes()) % base;
    base / 2 + jitter / 2
}

/// Runs `f` over every index in `pending` on a supervised worker pool.
///
/// Work is claimed in contiguous blocks, not single items: campaign specs
/// are cycle-sorted, so a block of adjacent indices shares (or neighbors)
/// one restore checkpoint, and the worker that claimed it keeps that
/// machine state hot instead of interleaving with every other worker.
/// Results are batched per worker (no shared mutex on the hot path) and
/// collected when the pool drains. A worker that panics is respawned (its
/// in-flight item *and* the unprocessed remainder of its claimed block
/// requeued) until `max_worker_respawns` is exhausted; after that the pool
/// degrades to the surviving workers, and any item left over is retried
/// once on the supervisor thread itself so a poisoned item cannot discard
/// the rest of the campaign.
pub fn run_supervised<T, F>(
    pending: &[u64],
    threads: usize,
    sup: &SupervisorConfig,
    sub: Subsystem,
    worker_event: &'static str,
    f: F,
) -> (Vec<(u64, T)>, PoolStats)
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_supervised_until(pending, threads, sup, sub, worker_event, None, f)
}

/// [`run_supervised`] with an early-stop predicate, checked before each
/// claim (workers finish their in-flight run, then drain). Remaining items
/// are *skipped* — not run, not lost — and `PoolStats::stopped` records
/// that the predicate fired. With one thread, items complete in `pending`
/// order, so the completed set is an exact prefix — the property behind
/// `--stop-at-margin`'s byte-prefix journal guarantee.
pub fn run_supervised_until<T, F>(
    pending: &[u64],
    threads: usize,
    sup: &SupervisorConfig,
    sub: Subsystem,
    worker_event: &'static str,
    stop: Option<&(dyn Fn() -> bool + Sync)>,
    f: F,
) -> (Vec<(u64, T)>, PoolStats)
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let should_stop = || stop.is_some_and(|s| s());
    let threads = threads.min(pending.len()).max(1);
    // Block size balances locality (bigger = fewer checkpoint switches per
    // worker) against tail imbalance (smaller = the last blocks spread
    // evenly). Eight blocks per worker keeps the tail short.
    let block = (pending.len() / (threads * 8)).clamp(1, 64);
    let next = AtomicUsize::new(0);
    let retry: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let slots: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(IDLE)).collect();
    // Per-worker claimed-block remainders, drained back into `retry` if
    // the worker dies before finishing its block.
    let claims: Vec<Mutex<Vec<u64>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let outs: Vec<Mutex<Vec<(u64, T)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let respawns = AtomicUsize::new(0);

    let body = |w: usize| {
        // A span (not a bare event) so the worker's lifetime lands in the
        // capture with `ts_us`/`dur_us` — the Chrome-trace export renders
        // one timeline slice per worker from exactly these fields.
        let mut wspan = sea_trace::span(sub, Level::Info, worker_event);
        let started = std::time::Instant::now();
        let mut runs = 0u64;
        loop {
            if should_stop() {
                break;
            }
            // Claim order: own block remainder, then the shared retry
            // queue, then a fresh block. Each lock is taken and released
            // in its own statement — chaining them in one expression would
            // hold the first guard across the later acquisitions (guard
            // temporaries live to the end of the statement), and the
            // fresh-block arm re-locks `claims[w]`.
            let mut item = claims[w].lock().pop();
            if item.is_none() {
                item = retry.lock().pop();
            }
            if item.is_none() {
                let start = next.fetch_add(block, Ordering::Relaxed);
                if start < pending.len() {
                    let end = (start + block).min(pending.len());
                    // Stash the block tail (reversed, so pop() walks it in
                    // ascending cycle order) and take the head now.
                    claims[w]
                        .lock()
                        .extend(pending[start + 1..end].iter().rev().copied());
                    item = Some(pending[start]);
                }
            }
            let Some(i) = item else { break };
            slots[w].store(i, Ordering::SeqCst);
            if let Some(hook) = sup.worker_hook {
                hook(w, i);
            }
            let t = f(i);
            outs[w].lock().push((i, t));
            slots[w].store(IDLE, Ordering::SeqCst);
            runs += 1;
        }
        let secs = started.elapsed().as_secs_f64();
        if let Some(s) = wspan.as_mut() {
            s.field("worker", w as u64);
            s.field("runs", runs);
            s.field("secs", secs);
            s.field(
                "runs_per_sec",
                if secs > 0.0 { runs as f64 / secs } else { 0.0 },
            );
        }
        drop(wspan);
        // Flush before the closure returns: the scope join can complete
        // before this thread's TLS destructors run, so the drop-time ring
        // flush may race with sink teardown.
        sea_trace::flush_thread();
    };

    crossbeam::scope(|scope| {
        let body = &body;
        let mut handles: Vec<_> = (0..threads)
            .map(|w| (w, scope.spawn(move |_| body(w))))
            .collect();
        let mut budget = sup.max_worker_respawns;
        while let Some((w, h)) = handles.pop() {
            if h.join().is_ok() {
                continue;
            }
            // The worker died outside the per-run panic boundary. Requeue
            // whatever it was holding — the in-flight item and the
            // unprocessed remainder of its claimed block — and, budget
            // permitting, respawn it.
            let inflight = slots[w].swap(IDLE, Ordering::SeqCst);
            let unclaimed = std::mem::take(&mut *claims[w].lock());
            let requeued_block = unclaimed.len();
            INFLIGHT_REQUEUES.add(requeued_block as u64 + u64::from(inflight != IDLE));
            {
                let mut r = retry.lock();
                if inflight != IDLE {
                    r.push(inflight);
                }
                r.extend(unclaimed);
            }
            event!(sub, Level::Warn, "supervisor.worker_died";
                   "worker" => w,
                   "inflight" => if inflight == IDLE { -1i64 } else { inflight as i64 },
                   "requeued_block" => requeued_block as u64,
                   "respawns_left" => budget as u64);
            if budget > 0 {
                budget -= 1;
                let nth = respawns.fetch_add(1, Ordering::Relaxed);
                WORKER_RESPAWNS.inc();
                // Back off before restarting: a worker that dies instantly
                // (poisoned state, resource exhaustion) must not burn the
                // whole respawn budget in a hot loop. Exponential with
                // deterministic jitter so sibling pools don't thunder.
                let pause = respawn_backoff_ms(nth as u32, WORKER_RESPAWNS.get());
                RESPAWN_BACKOFF_MS.add(pause);
                event!(sub, Level::Warn, "supervisor.respawn_backoff";
                       "worker" => w,
                       "nth" => nth as u64,
                       "ms" => pause);
                std::thread::sleep(std::time::Duration::from_millis(pause));
                handles.push((w, scope.spawn(move |_| body(w))));
            }
        }
    })
    .expect("supervisor thread panicked");

    // Anything still queued (or never claimed, if every worker died with
    // the respawn budget spent) has no live worker left to take it. Run it
    // on this thread, still behind a panic guard; items that *still* panic
    // outside the run boundary are recorded as lost, not fatal. When the
    // stop predicate fired, leftovers are skipped entirely — running the
    // tail of a claimed block after convergence would break the
    // prefix-of-the-full-run journal property.
    let stopped = should_stop();
    let mut lost = Vec::new();
    let mut results: Vec<(u64, T)> = Vec::with_capacity(pending.len());
    if !stopped {
        let mut leftovers = std::mem::take(&mut *retry.lock());
        for q in &claims {
            leftovers.append(&mut q.lock());
        }
        loop {
            let start = next.fetch_add(block, Ordering::Relaxed);
            if start >= pending.len() {
                break;
            }
            let end = (start + block).min(pending.len());
            leftovers.extend_from_slice(&pending[start..end]);
        }
        for i in leftovers {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(t) => results.push((i, t)),
                Err(_) => lost.push(i),
            }
        }
    }

    for o in outs {
        results.append(&mut o.into_inner());
    }
    results.sort_by_key(|(i, _)| *i);
    results.dedup_by_key(|(i, _)| *i);
    lost.sort_unstable();
    (
        results,
        PoolStats {
            workers: threads,
            respawns: respawns.load(Ordering::Relaxed) as u32,
            lost,
            stopped,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"campaign"), fnv1a(b"campaign"));
    }

    #[test]
    fn journal_file_slugs_workload_names() {
        let p = journal_file(Path::new("j"), "inject", "Jpeg C", JournalFormat::Binary);
        assert_eq!(p, PathBuf::from("j/jpeg_c.inject.seaj"));
        let p = journal_file(Path::new("j"), "beam", "CRC32", JournalFormat::Binary);
        assert_eq!(p, PathBuf::from("j/crc32.beam.seaj"));
        let p = journal_file(Path::new("j"), "inject", "CRC32", JournalFormat::Jsonl);
        assert_eq!(p, PathBuf::from("j/crc32.inject.jsonl"));
    }

    #[test]
    fn header_round_trips_and_rejects_mismatch() {
        let h = JournalHeader {
            kind: "inject",
            workload: "Qsort".to_string(),
            seed: 0xDEFA_0001,
            config_hash: 0x1234,
            golden_hash: 0x5678,
            ckpt: 0x9ABC,
            total: 900,
        };
        let line = header_line(&h);
        assert!(validate_header(&line, &h).is_ok());
        let mut other = h.clone();
        other.seed = 1;
        assert!(validate_header(&line, &other).is_err());
        let mut other = h.clone();
        other.total = 901;
        assert!(validate_header(&line, &other).is_err());
        let mut other = h.clone();
        other.ckpt = 0x9ABD;
        assert!(validate_header(&line, &other).is_err());
        assert!(validate_header("{\"x\":1}", &h).is_err());
        assert!(validate_header("not json", &h).is_err());
        // A v1 journal predates cycle-sorted specs: its indices mean
        // different specs, so it must be rejected, not resumed.
        let v1 = line.replacen("\"v\":2", "\"v\":1", 1);
        let err = validate_header(&v1, &h).unwrap_err();
        assert!(err.contains("format version"), "{err}");
    }

    #[test]
    fn pool_completes_all_items_and_batches_per_worker() {
        let pending: Vec<u64> = (0..200).collect();
        let sup = SupervisorConfig::default();
        let (results, stats) = run_supervised(
            &pending,
            4,
            &sup,
            Subsystem::Injection,
            "test.worker",
            |i| i * 2,
        );
        assert_eq!(results.len(), 200);
        assert_eq!(stats.respawns, 0);
        assert!(stats.lost.is_empty());
        for (i, v) in &results {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn pool_survives_worker_death_and_requeues_inflight() {
        static FIRED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        FIRED.store(false, Ordering::SeqCst);
        fn kill_once(_w: usize, i: u64) {
            if i == 7 && !FIRED.swap(true, Ordering::SeqCst) {
                panic!("induced worker death");
            }
        }
        let pending: Vec<u64> = (0..32).collect();
        let sup = SupervisorConfig {
            worker_hook: Some(kill_once),
            ..SupervisorConfig::default()
        };
        let backoff_before = RESPAWN_BACKOFF_MS.get();
        let (results, stats) = run_supervised(
            &pending,
            3,
            &sup,
            Subsystem::Injection,
            "test.worker",
            |i| i,
        );
        assert_eq!(results.len(), 32, "item 7 must be requeued and completed");
        assert_eq!(stats.respawns, 1);
        assert!(stats.lost.is_empty());
        assert!(
            RESPAWN_BACKOFF_MS.get() > backoff_before,
            "a respawn must pay its backoff delay"
        );
    }

    #[test]
    fn respawn_backoff_grows_is_jittered_and_capped() {
        for nth in 0..20 {
            let base = (10u64 << nth.min(7)).min(1_000);
            for salt in 0..50 {
                let ms = respawn_backoff_ms(nth, salt);
                assert!(ms >= base / 2, "respawn {nth} salt {salt}: {ms} < {base}/2");
                assert!(ms < base, "respawn {nth} salt {salt}: {ms} >= {base}");
            }
        }
        // Different salts actually spread (jitter is not degenerate).
        let spread: std::collections::HashSet<u64> =
            (0..50).map(|s| respawn_backoff_ms(6, s)).collect();
        assert!(spread.len() > 10);
    }

    #[test]
    fn stop_flag_round_trips() {
        clear_stop();
        assert!(!stop_requested());
        request_stop();
        assert!(stop_requested());
        clear_stop();
        assert!(!stop_requested());
    }

    #[test]
    fn pool_stop_predicate_yields_an_exact_prefix_with_one_thread() {
        let pending: Vec<u64> = (0..100).collect();
        let done = AtomicU64::new(0);
        let sup = SupervisorConfig::default();
        let stop = || done.load(Ordering::SeqCst) >= 10;
        let (results, stats) = run_supervised_until(
            &pending,
            1,
            &sup,
            Subsystem::Injection,
            "test.worker",
            Some(&stop),
            |i| {
                done.fetch_add(1, Ordering::SeqCst);
                i
            },
        );
        assert!(stats.stopped);
        assert!(stats.lost.is_empty(), "skipped items are not lost");
        assert_eq!(results.len(), 10, "stop checked before every claim");
        for (k, (i, _)) in results.iter().enumerate() {
            assert_eq!(*i, k as u64, "single-threaded completion is a prefix");
        }
    }

    #[test]
    fn pool_abandons_items_that_exhaust_the_respawn_budget() {
        fn kill_always(_w: usize, i: u64) {
            if i == 5 {
                panic!("hard worker killer");
            }
        }
        let pending: Vec<u64> = (0..16).collect();
        let sup = SupervisorConfig {
            worker_hook: Some(kill_always),
            max_worker_respawns: 2,
            ..SupervisorConfig::default()
        };
        let (results, stats) = run_supervised(
            &pending,
            2,
            &sup,
            Subsystem::Injection,
            "test.worker",
            |i| i,
        );
        // Item 5 keeps killing workers; everything else must finish. The
        // final inline retry does not run the worker hook, so item 5 is
        // recovered there (f itself is panic-free here).
        assert_eq!(stats.respawns, 2);
        assert_eq!(results.len(), 16);
        assert!(stats.lost.is_empty());
    }
}

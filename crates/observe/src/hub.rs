//! Process-wide registry connecting campaigns (producers) to the HTTP
//! server (consumer). Campaigns publish read-only provider closures; the
//! server pulls documents on demand, so observation never blocks the
//! experiment beyond a snapshot of its atomics.

use crate::tail::TailSink;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// A document provider: called per HTTP request, must be cheap and
/// read-only with respect to the campaign.
pub type Provider = Arc<dyn Fn() -> String + Send + Sync>;

static STATUS: Mutex<Option<Provider>> = Mutex::new(None);
static METRICS: Mutex<Option<Provider>> = Mutex::new(None);
static JOURNAL: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Register (or clear) the `/status` JSON provider.
pub fn publish_status(p: Option<Provider>) {
    *STATUS.lock().unwrap_or_else(|e| e.into_inner()) = p;
}

/// Register (or clear) the `/metrics` Prometheus-text provider.
pub fn publish_metrics(p: Option<Provider>) {
    *METRICS.lock().unwrap_or_else(|e| e.into_inner()) = p;
}

/// Register (or clear) the journal file served by `/journal/tail`.
pub fn publish_journal(path: Option<&Path>) {
    *JOURNAL.lock().unwrap_or_else(|e| e.into_inner()) = path.map(Path::to_path_buf);
}

/// The currently published journal path, if any.
pub fn journal_path() -> Option<PathBuf> {
    JOURNAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Render the `/status` document: the provider's output, or an idle
/// placeholder when no campaign has registered yet.
pub fn status_document() -> String {
    let p = STATUS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match p {
        Some(p) => p(),
        None => "{\"state\":\"idle\"}".to_string(),
    }
}

/// Render the `/metrics` document: the provider's output, or an empty
/// exposition (a lone comment) when no campaign has registered yet.
pub fn metrics_document() -> String {
    let p = METRICS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match p {
        Some(p) => p(),
        None => "# no campaign registered\n".to_string(),
    }
}

/// A study-submission backend (the fleet daemon): the server delegates the
/// `/studies` routes to whatever implementation is published here, keeping
/// this crate free of any fleet dependency. Implementations must be cheap
/// and internally synchronized — calls arrive on server worker threads.
pub trait StudyApi: Send + Sync {
    /// Submit a study spec (the request body, JSON). Returns the study's
    /// acknowledgment document (`{"id":...,"state":...}`) or a
    /// human-readable rejection.
    ///
    /// # Errors
    ///
    /// The rejection message is served as a 400 response body.
    fn submit(&self, spec_json: &str) -> Result<String, String>;
    /// JSON array summarizing every known study.
    fn list(&self) -> String;
    /// Full JSON status document for one study, `None` when unknown.
    fn status(&self, id: &str) -> Option<String>;
    /// Path of the merged journal for a completed study.
    ///
    /// # Errors
    ///
    /// A message explaining why no journal is servable (unknown id, study
    /// still running); served as a 404 response body.
    fn journal(&self, id: &str) -> Result<PathBuf, String>;
    /// Stitched Chrome trace-event JSON for one study's workers, `None`
    /// when the id is unknown or the backend collects no telemetry. The
    /// default implementation serves nothing, so backends that predate
    /// fleet telemetry need no change.
    fn trace(&self, id: &str) -> Option<String> {
        let _ = id;
        None
    }
}

static STUDIES: Mutex<Option<Arc<dyn StudyApi>>> = Mutex::new(None);

/// Register (or clear) the `/studies` backend.
pub fn publish_studies(api: Option<Arc<dyn StudyApi>>) {
    *STUDIES.lock().unwrap_or_else(|e| e.into_inner()) = api;
}

/// The currently published `/studies` backend, if any.
pub fn studies_api() -> Option<Arc<dyn StudyApi>> {
    STUDIES.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The shared event-tail ring. The first caller creates it; campaigns
/// include it in their sink [`sea_trace::Tee`] so `/events` sees the
/// same stream as the JSONL trace.
pub fn tail_sink() -> Arc<TailSink> {
    static TAIL: OnceLock<Arc<TailSink>> = OnceLock::new();
    TAIL.get_or_init(|| Arc::new(TailSink::default())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_then_providers_then_cleared() {
        // Serialize against other tests that touch the global hub.
        let _guard = sea_trace::test_lock();
        publish_status(None);
        publish_metrics(None);
        publish_journal(None);

        assert_eq!(status_document(), "{\"state\":\"idle\"}");
        assert!(metrics_document().starts_with('#'));
        assert!(journal_path().is_none());

        publish_status(Some(Arc::new(|| "{\"state\":\"running\"}".to_string())));
        publish_metrics(Some(Arc::new(|| "sea_up 1\n".to_string())));
        publish_journal(Some(Path::new("/tmp/x.jsonl")));
        assert_eq!(status_document(), "{\"state\":\"running\"}");
        assert_eq!(metrics_document(), "sea_up 1\n");
        assert_eq!(journal_path().unwrap(), Path::new("/tmp/x.jsonl"));

        publish_status(None);
        publish_metrics(None);
        publish_journal(None);
        assert_eq!(status_document(), "{\"state\":\"idle\"}");
    }

    #[test]
    fn tail_sink_is_shared() {
        assert!(Arc::ptr_eq(&tail_sink(), &tail_sink()));
    }
}

//! # sea-observe — live campaign observability over embedded HTTP
//!
//! The paper's statistical methodology converges toward a stated error
//! margin (§IV-C, Table IV), yet every observability surface grown so far
//! (JSONL traces, Chrome exports, the Prometheus file snapshot) is
//! post-hoc. This crate makes the run-state *live*: campaigns opt in with
//! `--serve <addr>` and a zero-dependency HTTP server (std `TcpListener`,
//! bounded worker threads, graceful drain on shutdown) exposes
//!
//! * `GET /healthz` — liveness probe;
//! * `GET /metrics` — Prometheus text exposition pulled on demand from
//!   the registered metrics provider (complementing `sea-profile`'s
//!   throttled file flush);
//! * `GET /status` — JSON: progress, work-weighted ETA, worker health and
//!   per-(structure, failure-class) running AVF estimates with
//!   `adjusted_error_margin` confidence intervals;
//! * `GET /events` — Server-Sent-Events tail of the `sea-trace` ring;
//! * `GET /journal/tail?lines=N` — the last lines of the outcome journal;
//! * `POST /studies`, `GET /studies`, `GET /studies/{id}`,
//!   `GET /studies/{id}/journal` — study submission, listing, status, and
//!   merged-journal download, delegated to whatever [`StudyApi`] backend is
//!   published (the `sea-fleet` daemon).
//!
//! The design substitutes DrSEUs' central results database with an
//! embedded pull surface: the campaign stays the single process, observers
//! poll it, and — the hard invariant shared with checkpointing, profiling
//! and the fast path — serving never perturbs the experiment. Providers
//! are read-only closures over the campaign's atomics; with `--serve` on,
//! the outcome journal is byte-identical to a serverless run (CI-enforced
//! by the `observe-smoke` job).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod hub;
mod tail;

pub use http::{serve, served_addr, shutdown, Server};
pub use hub::{
    journal_path, metrics_document, publish_journal, publish_metrics, publish_status,
    publish_studies, status_document, studies_api, tail_sink, Provider, StudyApi,
};
pub use tail::TailSink;

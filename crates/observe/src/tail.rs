//! Bounded in-memory tail of the trace stream, for the `/events` SSE feed.

use sea_trace::json::write_event;
use sea_trace::{Event, Sink};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity: enough to replay a burst of campaign events
/// without holding a long run's full trace in memory.
const DEFAULT_CAP: usize = 1024;

struct Inner {
    /// Sequence number the *next* event will receive. Monotone; never
    /// reset, so SSE clients can resume from where they left off.
    next_seq: u64,
    ring: VecDeque<(u64, String)>,
}

/// A [`Sink`] that keeps the last N events as serialized JSON lines,
/// tagged with monotone sequence numbers so pollers can fetch only what
/// they have not yet seen.
pub struct TailSink {
    cap: usize,
    inner: Mutex<Inner>,
}

impl Default for TailSink {
    fn default() -> TailSink {
        TailSink::new(DEFAULT_CAP)
    }
}

impl TailSink {
    /// A ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> TailSink {
        TailSink {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Sequence number the next recorded event will get. Equivalently:
    /// the number of events ever recorded.
    pub fn next_seq(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
    }

    /// Append one already-serialized JSONL line to the tail, returning the
    /// sequence number it received. This is how the fleet daemon feeds
    /// event lines relayed from worker telemetry frames into the same
    /// `/events` stream local events use.
    pub fn push_line(&self, line: String) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back((seq, line));
        seq
    }

    /// Events with sequence number `>= from`, up to `max` of them, oldest
    /// first, together with the current `next_seq` (pass it back as the
    /// next `from` to poll incrementally). Events that aged out of the
    /// ring before being read are silently skipped — the tail is lossy by
    /// design.
    pub fn since(&self, from: u64, max: usize) -> (u64, Vec<(u64, String)>) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let out = inner
            .ring
            .iter()
            .filter(|(seq, _)| *seq >= from)
            .take(max)
            .cloned()
            .collect();
        (inner.next_seq, out)
    }
}

impl Sink for TailSink {
    fn record(&self, events: &[Event]) {
        let mut line = String::with_capacity(160);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for ev in events {
            line.clear();
            write_event(ev, &mut line);
            let seq = inner.next_seq;
            inner.next_seq += 1;
            if inner.ring.len() == self.cap {
                inner.ring.pop_front();
            }
            inner.ring.push_back((seq, line.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_trace::{Level, Subsystem};

    fn ev(name: &'static str, i: u64) -> Event {
        Event::new(Subsystem::Harness, Level::Info, name).field("i", i)
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_monotone() {
        let t = TailSink::new(3);
        t.record(&[ev("a", 0), ev("a", 1), ev("a", 2), ev("a", 3)]);
        assert_eq!(t.next_seq(), 4);
        let (next, items) = t.since(0, usize::MAX);
        assert_eq!(next, 4);
        let seqs: Vec<u64> = items.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3], "oldest event evicted");
        for (_, line) in &items {
            sea_trace::json::parse(line).unwrap();
        }
    }

    #[test]
    fn push_line_shares_the_sequence_space() {
        let t = TailSink::new(4);
        t.record(&[ev("a", 0)]);
        let seq = t.push_line(r#"{"ev":"fleet.block","shard":2}"#.to_string());
        assert_eq!(seq, 1);
        t.record(&[ev("a", 2)]);
        let (next, items) = t.since(0, usize::MAX);
        assert_eq!(next, 3);
        assert_eq!(items.len(), 3);
        assert!(items[1].1.contains("fleet.block"));
    }

    #[test]
    fn since_filters_and_limits() {
        let t = TailSink::new(8);
        t.record(&[ev("a", 0), ev("a", 1), ev("a", 2), ev("a", 3)]);
        let (_, items) = t.since(2, usize::MAX);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 2);
        let (_, items) = t.since(0, 1);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, 0);
        let (next, items) = t.since(100, usize::MAX);
        assert_eq!(next, 4);
        assert!(items.is_empty());
    }
}

//! Minimal HTTP/1.1 server on std `TcpListener`: an accept thread feeds a
//! bounded pool of worker threads through a condvar queue. Shutdown is
//! graceful — queued and in-flight connections are drained before the
//! workers exit, so a `/status` poll racing campaign completion still gets
//! its response.

use crate::hub;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Worker threads per server: enough for a few concurrent pollers plus an
/// SSE stream without letting observers compete with campaign workers.
const WORKERS: usize = 4;

/// Per-connection socket timeouts: a stuck observer must not pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// `/events` poll interval against the tail ring.
const SSE_POLL: Duration = Duration::from_millis(50);

/// Largest request head we will buffer before giving up on a client.
const MAX_REQUEST: usize = 8 * 1024;

/// Largest request body (`POST /studies` specs) we will accept.
const MAX_BODY: usize = 1 << 20;

type ConnQueue = (Mutex<VecDeque<TcpStream>>, Condvar);

/// A running observability server. Most callers use the process-wide
/// [`serve`]/[`shutdown`] pair; `Server` itself exists so tests can run
/// isolated instances on ephemeral ports.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept and worker threads.
    pub fn start(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue: Arc<ConnQueue> = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));

        let accept = {
            let stop = stop.clone();
            let queue = queue.clone();
            thread::Builder::new()
                .name("observe-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(c) = conn {
                            queue
                                .0
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back(c);
                            queue.1.notify_one();
                        }
                    }
                })
                .expect("spawn observe-accept")
        };

        let workers = (0..WORKERS)
            .map(|i| {
                let stop = stop.clone();
                let queue = queue.clone();
                thread::Builder::new()
                    .name(format!("observe-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &stop))
                    .expect("spawn observe-worker")
            })
            .collect();

        Ok(Server {
            addr,
            stop,
            accept,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued and in-flight connections, and join
    /// every thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; it checks
        // the stop flag before queueing.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(queue: &ConnQueue, stop: &AtomicBool) {
    loop {
        let conn = {
            let mut q = queue.0.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if stop.load(Ordering::Acquire) {
                    break None;
                }
                // Re-check the stop flag at least once a second in case a
                // notification raced the flag store.
                let (guard, _) = queue
                    .1
                    .wait_timeout(q, Duration::from_secs(1))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match conn {
            Some(c) => handle(c, stop),
            None => return,
        }
    }
}

fn handle(mut stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some((method, target, req_body)) = read_request(&mut stream) else {
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match (method.as_str(), path) {
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", b"ok\n"),
        ("GET", "/metrics") => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            hub::metrics_document().as_bytes(),
        ),
        ("GET", "/status") => respond(
            &mut stream,
            "200 OK",
            "application/json",
            hub::status_document().as_bytes(),
        ),
        ("GET", "/journal/tail") => journal_tail(&mut stream, query),
        ("GET", "/events") => sse(stream, stop),
        ("POST", "/studies") => studies_submit(&mut stream, &req_body),
        ("GET", "/studies") => studies_list(&mut stream),
        ("GET", p) if p.starts_with("/studies/") => studies_get(&mut stream, p),
        ("GET", _) => respond(&mut stream, "404 Not Found", "text/plain", b"not found\n"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            b"GET only (POST /studies)\n",
        ),
    }
}

/// `POST /studies`: hand the body to the published [`hub::StudyApi`].
fn studies_submit(stream: &mut TcpStream, req_body: &[u8]) {
    let Some(api) = hub::studies_api() else {
        respond(
            stream,
            "404 Not Found",
            "text/plain",
            b"no study backend published\n",
        );
        return;
    };
    let spec = String::from_utf8_lossy(req_body);
    match api.submit(spec.trim()) {
        Ok(doc) => respond(stream, "200 OK", "application/json", doc.as_bytes()),
        Err(why) => {
            let mut msg = why;
            msg.push('\n');
            respond(stream, "400 Bad Request", "text/plain", msg.as_bytes());
        }
    }
}

/// `GET /studies`: the backend's summary array.
fn studies_list(stream: &mut TcpStream) {
    match hub::studies_api() {
        Some(api) => respond(stream, "200 OK", "application/json", api.list().as_bytes()),
        None => respond(
            stream,
            "404 Not Found",
            "text/plain",
            b"no study backend published\n",
        ),
    }
}

/// `GET /studies/{id}`, `GET /studies/{id}/journal` and
/// `GET /studies/{id}/trace`.
fn studies_get(stream: &mut TcpStream, path: &str) {
    let Some(api) = hub::studies_api() else {
        respond(
            stream,
            "404 Not Found",
            "text/plain",
            b"no study backend published\n",
        );
        return;
    };
    let rest = &path["/studies/".len()..];
    if let Some(id) = rest.strip_suffix("/journal") {
        match api
            .journal(id)
            .and_then(|p| std::fs::read(&p).map_err(|e| format!("journal unreadable: {e}")))
        {
            Ok(bytes) => respond(stream, "200 OK", "application/octet-stream", &bytes),
            Err(why) => {
                let mut msg = why;
                msg.push('\n');
                respond(stream, "404 Not Found", "text/plain", msg.as_bytes());
            }
        }
        return;
    }
    if let Some(id) = rest.strip_suffix("/trace") {
        match api.trace(id) {
            Some(doc) => respond(stream, "200 OK", "application/json", doc.as_bytes()),
            None => respond(
                stream,
                "404 Not Found",
                "text/plain",
                b"no trace for this study\n",
            ),
        }
        return;
    }
    match api.status(rest) {
        Some(doc) => respond(stream, "200 OK", "application/json", doc.as_bytes()),
        None => respond(stream, "404 Not Found", "text/plain", b"unknown study\n"),
    }
}

fn journal_tail(stream: &mut TcpStream, query: &str) {
    let lines = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("lines="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(20)
        .max(1);
    let Some(path) = hub::journal_path() else {
        respond(
            stream,
            "404 Not Found",
            "text/plain",
            b"no journal published\n",
        );
        return;
    };
    match std::fs::read(&path) {
        Ok(bytes) => {
            // Binary `.seaj` journals are decoded to their lossless JSONL
            // form first (magic-sniffed, so a `--journal-format jsonl`
            // journal — or any plain-text file — is served as-is).
            let text = if bytes.starts_with(&sea_durable::SEAJ_MAGIC) {
                match sea_durable::export_jsonl(&bytes) {
                    Ok(jsonl) => String::from_utf8_lossy(&jsonl).into_owned(),
                    Err(_) => {
                        respond(
                            stream,
                            "500 Internal Server Error",
                            "text/plain",
                            b"journal corrupt\n",
                        );
                        return;
                    }
                }
            } else {
                String::from_utf8_lossy(&bytes).into_owned()
            };
            let all: Vec<&str> = text.lines().collect();
            let start = all.len().saturating_sub(lines);
            let mut body = all[start..].join("\n");
            if !body.is_empty() {
                body.push('\n');
            }
            respond(stream, "200 OK", "application/jsonl", body.as_bytes());
        }
        Err(_) => respond(
            stream,
            "500 Internal Server Error",
            "text/plain",
            b"journal unreadable\n",
        ),
    }
}

/// Server-Sent-Events tail: replays the ring backlog, then streams new
/// events until the client goes away or the server stops. Idle periods
/// send comment heartbeats so dead clients are detected.
fn sse(mut stream: TcpStream, stop: &AtomicBool) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let tail = hub::tail_sink();
    let mut from = 0u64;
    let mut idle_polls = 0u32;
    while !stop.load(Ordering::Acquire) {
        let (next, items) = tail.since(from, 256);
        from = next;
        if items.is_empty() {
            idle_polls += 1;
            // ~1 s of idle polls between heartbeats.
            if idle_polls >= 20 {
                idle_polls = 0;
                if stream.write_all(b": ping\n\n").is_err() || stream.flush().is_err() {
                    return;
                }
            }
            thread::sleep(SSE_POLL);
            continue;
        }
        idle_polls = 0;
        let mut buf = String::with_capacity(items.len() * 180);
        for (seq, line) in &items {
            use std::fmt::Write as _;
            let _ = write!(buf, "id: {seq}\ndata: {line}\n\n");
        }
        if stream.write_all(buf.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

fn read_request(stream: &mut TcpStream) -> Option<(String, String, Vec<u8>)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at + 4;
        }
        if buf.len() > MAX_REQUEST {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break buf.len(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let text = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let first = text.lines().next()?;
    let mut parts = first.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    // Read the declared body (POST /studies specs); bodies beyond MAX_BODY
    // are rejected rather than buffered.
    let content_length = text
        .lines()
        .skip(1)
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return None;
    }
    let mut req_body = buf[head_end.min(buf.len())..].to_vec();
    while req_body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => req_body.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    req_body.truncate(content_length);
    Some((method, target, req_body))
}

fn respond(stream: &mut TcpStream, status: &str, ctype: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

static ACTIVE: Mutex<Option<Server>> = Mutex::new(None);

/// Start (or reuse) the process-wide server. A second call while one is
/// running returns the existing bound address — suites that loop over
/// workloads share one server for the whole run.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let mut active = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = active.as_ref() {
        return Ok(s.addr());
    }
    let s = Server::start(addr)?;
    let bound = s.addr();
    *active = Some(s);
    Ok(bound)
}

/// Address of the process-wide server, if one is running.
pub fn served_addr() -> Option<SocketAddr> {
    ACTIVE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Server::addr)
}

/// Stop the process-wide server, draining in-flight responses. No-op when
/// none is running.
pub fn shutdown() {
    let s = ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(s) = s {
        s.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: sea\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    fn body(resp: &str) -> &str {
        resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
    }

    #[test]
    fn healthz_and_404_and_method() {
        let srv = Server::start("127.0.0.1:0").unwrap();
        let addr = srv.addr();
        let ok = get(addr, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert_eq!(body(&ok), "ok\n");
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /status HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        srv.shutdown();
    }

    #[test]
    fn status_metrics_and_journal_follow_the_hub() {
        let _guard = sea_trace::test_lock();
        let srv = Server::start("127.0.0.1:0").unwrap();
        let addr = srv.addr();

        hub::publish_status(Some(StdArc::new(|| {
            "{\"state\":\"running\",\"done\":3}".into()
        })));
        hub::publish_metrics(Some(StdArc::new(|| "sea_campaign_runs_done 3\n".into())));
        let path = std::env::temp_dir().join(format!("sea_observe_j_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n").unwrap();
        hub::publish_journal(Some(&path));

        let st = get(addr, "/status");
        assert!(st.contains("application/json"), "{st}");
        let parsed = sea_trace::json::parse(body(&st).trim()).unwrap();
        assert_eq!(parsed.get("done").unwrap().as_u64(), Some(3));

        let m = get(addr, "/metrics");
        assert!(body(&m).contains("sea_campaign_runs_done 3"), "{m}");

        let j = get(addr, "/journal/tail?lines=2");
        assert_eq!(body(&j), "{\"i\":1}\n{\"i\":2}\n");
        let all = get(addr, "/journal/tail");
        assert_eq!(body(&all).lines().count(), 3);

        hub::publish_status(None);
        hub::publish_metrics(None);
        hub::publish_journal(None);
        let idle = get(addr, "/status");
        assert_eq!(body(&idle), "{\"state\":\"idle\"}");
        assert!(get(addr, "/journal/tail").starts_with("HTTP/1.1 404"));
        let _ = std::fs::remove_file(&path);
        srv.shutdown();
    }

    #[test]
    fn journal_tail_decodes_binary_seaj_records() {
        let _guard = sea_trace::test_lock();
        let srv = Server::start("127.0.0.1:0").unwrap();
        let addr = srv.addr();

        let path = std::env::temp_dir().join(format!("sea_observe_j_{}.seaj", std::process::id()));
        let mut bytes = sea_durable::encode_file_header(b"{\"journal\":\"sea\"}");
        for (seq, line) in [(1u64, "{\"i\":0}"), (2, "{\"i\":1}"), (3, "{\"i\":2}")] {
            bytes.extend_from_slice(&sea_durable::encode_record(seq, line.as_bytes()));
        }
        // A torn tail must not break serving: the valid prefix is decoded.
        bytes.extend_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        hub::publish_journal(Some(&path));

        let j = get(addr, "/journal/tail?lines=2");
        assert!(j.starts_with("HTTP/1.1 200"), "{j}");
        assert_eq!(body(&j), "{\"i\":1}\n{\"i\":2}\n");
        let all = get(addr, "/journal/tail");
        assert_eq!(body(&all).lines().count(), 4); // header line + 3 records

        hub::publish_journal(None);
        let _ = std::fs::remove_file(&path);
        srv.shutdown();
    }

    struct MockStudies {
        journal: std::path::PathBuf,
    }

    impl hub::StudyApi for MockStudies {
        fn submit(&self, spec_json: &str) -> Result<String, String> {
            let j = sea_trace::json::parse(spec_json).map_err(|e| format!("bad spec: {e}"))?;
            match j.get("samples").and_then(sea_trace::json::Json::as_u64) {
                Some(n) => Ok(format!("{{\"id\":\"s{n}\",\"state\":\"queued\"}}")),
                None => Err("spec missing samples".to_string()),
            }
        }
        fn list(&self) -> String {
            "[{\"id\":\"s8\"}]".to_string()
        }
        fn status(&self, id: &str) -> Option<String> {
            (id == "s8").then(|| "{\"id\":\"s8\",\"state\":\"running\"}".to_string())
        }
        fn journal(&self, id: &str) -> Result<std::path::PathBuf, String> {
            if id == "s8" {
                Ok(self.journal.clone())
            } else {
                Err(format!("unknown study {id}"))
            }
        }
        fn trace(&self, id: &str) -> Option<String> {
            (id == "s8").then(|| "{\"traceEvents\":[]}".to_string())
        }
    }

    fn post(addr: SocketAddr, target: &str, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "POST {target} HTTP/1.1\r\nHost: sea\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn studies_routes_delegate_to_the_published_backend() {
        let _guard = sea_trace::test_lock();
        let srv = Server::start("127.0.0.1:0").unwrap();
        let addr = srv.addr();

        // Without a backend, every /studies route 404s (including POST).
        hub::publish_studies(None);
        assert!(get(addr, "/studies").starts_with("HTTP/1.1 404"));
        assert!(post(addr, "/studies", "{}").starts_with("HTTP/1.1 404"));

        let journal =
            std::env::temp_dir().join(format!("sea_observe_m_{}.seaj", std::process::id()));
        std::fs::write(&journal, b"merged-bytes").unwrap();
        hub::publish_studies(Some(StdArc::new(MockStudies {
            journal: journal.clone(),
        })));

        let ok = post(addr, "/studies", "{\"samples\":8}");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(body(&ok).contains("\"id\":\"s8\""), "{ok}");
        let bad = post(addr, "/studies", "{\"nope\":1}");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let list = get(addr, "/studies");
        assert!(list.starts_with("HTTP/1.1 200"), "{list}");
        assert!(body(&list).starts_with("["), "{list}");

        let st = get(addr, "/studies/s8");
        assert!(st.contains("\"state\":\"running\""), "{st}");
        assert!(get(addr, "/studies/zz").starts_with("HTTP/1.1 404"));

        let dl = get(addr, "/studies/s8/journal");
        assert!(dl.starts_with("HTTP/1.1 200"), "{dl}");
        assert!(dl.contains("application/octet-stream"), "{dl}");
        assert_eq!(body(&dl), "merged-bytes");
        assert!(get(addr, "/studies/zz/journal").starts_with("HTTP/1.1 404"));

        let tr = get(addr, "/studies/s8/trace");
        assert!(tr.starts_with("HTTP/1.1 200"), "{tr}");
        assert!(body(&tr).contains("traceEvents"), "{tr}");
        assert!(get(addr, "/studies/zz/trace").starts_with("HTTP/1.1 404"));

        // Non-studies POSTs stay rejected.
        let m = post(addr, "/status", "{}");
        assert!(m.starts_with("HTTP/1.1 405"), "{m}");

        hub::publish_studies(None);
        let _ = std::fs::remove_file(&journal);
        srv.shutdown();
    }

    #[test]
    fn sse_streams_ring_events_and_shutdown_unblocks() {
        let srv = Server::start("127.0.0.1:0").unwrap();
        let addr = srv.addr();
        let tail = hub::tail_sink();
        use sea_trace::{Event, Level, Sink, Subsystem};
        tail.record(&[
            Event::new(Subsystem::Harness, Level::Info, "observe.sse_test").field("k", 7u64),
        ]);

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        write!(s, "GET /events HTTP/1.1\r\n\r\n").unwrap();
        let mut got = String::new();
        let mut chunk = [0u8; 1024];
        for _ in 0..50 {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => got.push_str(&String::from_utf8_lossy(&chunk[..n])),
                Err(_) => {}
            }
            if got.contains("observe.sse_test") {
                break;
            }
        }
        assert!(got.contains("data: "), "{got}");
        assert!(got.contains("observe.sse_test"), "{got}");
        // Shutdown must terminate the still-open SSE worker.
        srv.shutdown();
    }

    #[test]
    fn global_registry_reuses_and_stops() {
        // The registry is process-wide; serialize with other global users.
        let _guard = sea_trace::test_lock();
        shutdown();
        let a = serve("127.0.0.1:0").unwrap();
        let b = serve("127.0.0.1:0").unwrap();
        assert_eq!(a, b, "second serve() reuses the running server");
        assert_eq!(served_addr(), Some(a));
        let ok = get(a, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        shutdown();
        assert_eq!(served_addr(), None);
        shutdown(); // idempotent
    }
}

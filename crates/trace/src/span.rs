//! Wall-clock span timing.

use crate::{enabled, Event, Level, Subsystem};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide epoch spans are timestamped against, so `ts_us` fields
/// from different threads share one timeline (what the Chrome trace
/// export needs to lay spans out on worker tracks).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Current reading of the span clock: microseconds since this process's
/// span epoch (pinned on first use). Span `ts_us` fields are offsets on
/// this clock, so two processes that exchange a `clock_us` reading can
/// shift each other's span timestamps onto one shared timeline — what
/// the fleet daemon does to stitch per-worker traces.
pub fn clock_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Open a timing span; when the returned guard drops, an event named
/// `name` with `dur_us` and `ts_us` (microseconds since the first span in
/// the process) fields is emitted. Returns `None` (and does no work, not
/// even reading the clock) when the (subsystem, level) is disabled.
#[must_use]
pub fn span(sub: Subsystem, level: Level, name: &'static str) -> Option<SpanGuard> {
    if !enabled(sub, level) {
        return None;
    }
    // Pin the epoch before reading the clock so start >= epoch always.
    let epoch = epoch();
    Some(SpanGuard {
        sub,
        level,
        name,
        epoch,
        start: Instant::now(),
        fields: Vec::new(),
    })
}

/// Live span; emits on drop.
pub struct SpanGuard {
    sub: Subsystem,
    level: Level,
    name: &'static str,
    epoch: Instant,
    start: Instant,
    fields: Vec<(&'static str, crate::Value)>,
}

impl SpanGuard {
    /// Attach a field to the closing event.
    pub fn field(&mut self, key: &'static str, value: impl Into<crate::Value>) {
        self.fields.push((key, value.into()));
    }

    /// Elapsed time so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ts = self.start.saturating_duration_since(self.epoch);
        let mut ev = Event::new(self.sub, self.level, self.name)
            .field("dur_us", self.start.elapsed().as_micros() as u64)
            .field("ts_us", ts.as_micros() as u64);
        ev.fields.append(&mut self.fields);
        crate::emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sink, MemorySink};
    use std::sync::Arc;

    #[test]
    fn disabled_span_is_none() {
        let _guard = sink::test_lock();
        crate::disable_all();
        assert!(span(Subsystem::Harness, Level::Info, "s").is_none());
    }

    #[test]
    fn span_emits_duration_event() {
        let _guard = sink::test_lock();
        let mem = Arc::new(MemorySink::new());
        sink::install_sink(mem.clone());
        crate::set_level_all(Level::Debug);
        {
            let mut s = span(Subsystem::Harness, Level::Debug, "span.test").unwrap();
            s.field("tag", 7u64);
        }
        crate::flush_thread();
        let evs = mem.snapshot();
        let ev = evs
            .iter()
            .find(|e| e.name == "span.test")
            .expect("span event");
        assert!(ev.get("dur_us").is_some());
        assert!(ev.get("ts_us").is_some());
        assert_eq!(ev.get("tag"), Some(&crate::Value::U64(7)));
        crate::disable_all();
        sink::uninstall_sink();
    }
}

//! Monotonic counters and log2-bucketed histograms.
//!
//! Both are atomic and cheap enough to live in hot loops; both render to
//! ASCII for the trace summary.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (usable in statics).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 is the value 0, bucket 1 is 1, bucket 2 is 2–3, …, bucket 64
/// is values ≥ 2^63).
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index of a value: its bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (inclusive).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound of bucket `i` (inclusive).
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram (usable in statics).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Approximate `p`-th percentile (`p` in [0,100]) of the recorded
    /// samples; see [`HistSnapshot::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A consistent-enough snapshot for rendering.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            name: self.name.to_string(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] (also buildable directly from
/// samples, e.g. when reconstructing from trace events).
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Display name.
    pub name: String,
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot with a name.
    pub fn empty(name: impl Into<String>) -> HistSnapshot {
        HistSnapshot {
            name: name.into(),
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record a sample into the snapshot (builder use).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in [0,1]: upper bound of the bucket holding
    /// the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Approximate `p`-th percentile (`p` in [0,100], so `percentile(95.0)`
    /// is p95). Same bucket resolution as [`HistSnapshot::quantile`] —
    /// exact up to log2-bucket granularity, capped at the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// Render as an ASCII bar chart, one row per non-empty bucket range.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!(
            "{}: n={} mean={:.1} p50≈{} p99≈{} max={}\n",
            self.name,
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max,
        );
        if self.count == 0 {
            out.push_str("  (no samples)\n");
            return out;
        }
        let lo = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let hi = BUCKETS - 1 - self.buckets.iter().rev().position(|&n| n > 0).unwrap_or(0);
        let peak = *self.buckets.iter().max().unwrap();
        for i in lo..=hi {
            let n = self.buckets[i];
            let bar = (n as f64 / peak as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "  [{:>12} .. {:>12}] {:>8} |{}\n",
                bucket_lo(i),
                bucket_hi(i),
                n,
                "#".repeat(bar),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        static C: Counter = Counter::new("test.counter");
        C.add(5);
        C.inc();
        assert_eq!(C.get(), 6);
        assert_eq!(C.name(), "test.counter");
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn histogram_stats_and_render() {
        let h = Histogram::new("lat");
        for v in [0, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.max, 100_000);
        assert!(s.mean() > 14_000.0 && s.mean() < 15_000.0);
        assert!(s.quantile(1.0) >= 100_000);
        assert!(s.quantile(0.01) <= 1);
        let r = s.render(40);
        assert!(r.contains("lat: n=7"), "{r}");
        assert!(r.contains('#'), "{r}");
    }

    #[test]
    fn percentile_is_quantile_times_100() {
        let h = Histogram::new("p");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), s.quantile(0.5));
        assert_eq!(s.percentile(95.0), s.quantile(0.95));
        assert_eq!(h.percentile(95.0), s.percentile(95.0));
        // p100 is capped at the observed max, and within the p95 bucket's
        // log2 resolution the estimate brackets the true value.
        assert_eq!(s.percentile(100.0), 1000);
        assert!(s.percentile(95.0) >= 950);
        assert!(s.percentile(50.0) >= 500 && s.percentile(50.0) <= 1000);
        assert_eq!(HistSnapshot::empty("e").percentile(95.0), 0);
    }

    #[test]
    fn snapshot_builder_matches_atomic_path() {
        let h = Histogram::new("x");
        let mut b = HistSnapshot::empty("x");
        for v in [7u64, 9, 11, 13_000] {
            h.record(v);
            b.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, b.buckets);
        assert_eq!(s.count, b.count);
        assert_eq!(s.sum, b.sum);
        assert_eq!(s.max, b.max);
    }
}

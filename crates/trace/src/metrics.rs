//! Monotonic counters and log2-bucketed histograms.
//!
//! Both are atomic and cheap enough to live in hot loops; both render to
//! ASCII for the trace summary.

use crate::json::{self, Json, ObjWriter};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (usable in statics).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 is the value 0, bucket 1 is 1, bucket 2 is 2–3, …, bucket 64
/// is values ≥ 2^63).
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index of a value: its bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (inclusive).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound of bucket `i` (inclusive).
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram (usable in statics).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Approximate `p`-th percentile (`p` in [0,100]) of the recorded
    /// samples; see [`HistSnapshot::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A consistent-enough snapshot for rendering.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            name: self.name.to_string(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] (also buildable directly from
/// samples, e.g. when reconstructing from trace events).
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Display name.
    pub name: String,
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot with a name.
    pub fn empty(name: impl Into<String>) -> HistSnapshot {
        HistSnapshot {
            name: name.into(),
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record a sample into the snapshot (builder use). The sum
    /// saturates rather than wrapping, matching [`HistSnapshot::merge`].
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in [0,1]: upper bound of the bucket holding
    /// the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Approximate `p`-th percentile (`p` in [0,100], so `percentile(95.0)`
    /// is p95). Same bucket resolution as [`HistSnapshot::quantile`] —
    /// exact up to log2-bucket granularity, capped at the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// Fold another snapshot into this one: per-bucket counts add,
    /// `count`/`sum` add (saturating), `max` takes the larger value. The
    /// name stays `self`'s. Merging is commutative and associative over
    /// the statistics (property-tested), which is what lets a fleet
    /// daemon roll per-worker histograms up into one fleet-wide series.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serialize for the wire: name, scalar stats, and a sparse
    /// `[[bucket, n], ...]` array holding only non-empty buckets. JSON
    /// numbers are f64, so scalars above 2^53 round in transit (bucket
    /// *counts* that large are unreachable in practice; a saturated
    /// `sum` merely rounds).
    pub fn to_json(&self) -> String {
        let mut buckets = String::from("[");
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            buckets.push_str(&format!("[{i},{n}]"));
        }
        buckets.push(']');
        let mut o = ObjWriter::new();
        o.str_field("name", &self.name)
            .u64_field("count", self.count)
            .u64_field("sum", self.sum)
            .u64_field("max", self.max)
            .raw_field("buckets", &buckets);
        o.finish()
    }

    /// Parse a [`HistSnapshot::to_json`] document (from text). `None` on
    /// anything that is not a histogram object.
    pub fn parse(text: &str) -> Option<HistSnapshot> {
        HistSnapshot::from_json(&json::parse(text).ok()?)
    }

    /// Rebuild from a parsed wire document. Tolerant of peers with a
    /// different bucket layout: indices at or beyond [`BUCKETS`] fold
    /// into the top bucket (so `count` stays consistent with the bucket
    /// sum), malformed pairs are skipped, and missing scalar fields
    /// default to zero.
    pub fn from_json(j: &Json) -> Option<HistSnapshot> {
        // Readings above 2^53 (e.g. a saturated sum) fail `as_u64`'s
        // exactness check; fall back to a rounded f64 read rather than
        // dropping the field.
        fn loose_u64(j: Option<&Json>) -> Option<u64> {
            let j = j?;
            j.as_u64()
                .or_else(|| j.as_f64().filter(|f| *f >= 0.0).map(|f| f as u64))
        }
        let name = j.get("name").and_then(Json::as_str)?;
        let mut snap = HistSnapshot::empty(name);
        snap.count = loose_u64(j.get("count")).unwrap_or(0);
        snap.sum = loose_u64(j.get("sum")).unwrap_or(0);
        snap.max = loose_u64(j.get("max")).unwrap_or(0);
        if let Some(Json::Arr(pairs)) = j.get("buckets") {
            for p in pairs {
                let Json::Arr(pair) = p else { continue };
                let (Some(i), Some(n)) = (loose_u64(pair.first()), loose_u64(pair.get(1))) else {
                    continue;
                };
                let i = (i as usize).min(BUCKETS - 1);
                snap.buckets[i] = snap.buckets[i].saturating_add(n);
            }
        }
        Some(snap)
    }

    /// Render as an ASCII bar chart, one row per non-empty bucket range.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!(
            "{}: n={} mean={:.1} p50≈{} p99≈{} max={}\n",
            self.name,
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max,
        );
        if self.count == 0 {
            out.push_str("  (no samples)\n");
            return out;
        }
        let lo = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let hi = BUCKETS - 1 - self.buckets.iter().rev().position(|&n| n > 0).unwrap_or(0);
        let peak = *self.buckets.iter().max().unwrap();
        for i in lo..=hi {
            let n = self.buckets[i];
            let bar = (n as f64 / peak as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "  [{:>12} .. {:>12}] {:>8} |{}\n",
                bucket_lo(i),
                bucket_hi(i),
                n,
                "#".repeat(bar),
            ));
        }
        out
    }
}

/// Frames monotonic counter readings as per-interval deltas, so periodic
/// telemetry pushes carry only what changed since the previous frame.
///
/// A counter seen for the first time contributes its full value (the
/// receiver starts from zero); a reading *below* the last one — a
/// restarted peer whose statics reset — contributes the new reading
/// itself, treating the restart as a fresh start rather than losing the
/// post-restart increments or emitting a bogus huge delta.
#[derive(Debug, Default)]
pub struct DeltaFramer {
    last: BTreeMap<String, u64>,
}

impl DeltaFramer {
    /// An empty framer (no counters seen yet).
    pub fn new() -> DeltaFramer {
        DeltaFramer::default()
    }

    /// The delta to report for `name` given its current cumulative
    /// reading, updating the framer's memory of it.
    pub fn frame(&mut self, name: &str, current: u64) -> u64 {
        let last = self.last.get(name).copied().unwrap_or(0);
        self.last.insert(name.to_string(), current);
        if current >= last {
            current - last
        } else {
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        static C: Counter = Counter::new("test.counter");
        C.add(5);
        C.inc();
        assert_eq!(C.get(), 6);
        assert_eq!(C.name(), "test.counter");
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn histogram_stats_and_render() {
        let h = Histogram::new("lat");
        for v in [0, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.max, 100_000);
        assert!(s.mean() > 14_000.0 && s.mean() < 15_000.0);
        assert!(s.quantile(1.0) >= 100_000);
        assert!(s.quantile(0.01) <= 1);
        let r = s.render(40);
        assert!(r.contains("lat: n=7"), "{r}");
        assert!(r.contains('#'), "{r}");
    }

    #[test]
    fn percentile_is_quantile_times_100() {
        let h = Histogram::new("p");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), s.quantile(0.5));
        assert_eq!(s.percentile(95.0), s.quantile(0.95));
        assert_eq!(h.percentile(95.0), s.percentile(95.0));
        // p100 is capped at the observed max, and within the p95 bucket's
        // log2 resolution the estimate brackets the true value.
        assert_eq!(s.percentile(100.0), 1000);
        assert!(s.percentile(95.0) >= 950);
        assert!(s.percentile(50.0) >= 500 && s.percentile(50.0) <= 1000);
        assert_eq!(HistSnapshot::empty("e").percentile(95.0), 0);
    }

    #[test]
    fn snapshot_builder_matches_atomic_path() {
        let h = Histogram::new("x");
        let mut b = HistSnapshot::empty("x");
        for v in [7u64, 9, 11, 13_000] {
            h.record(v);
            b.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, b.buckets);
        assert_eq!(s.count, b.count);
        assert_eq!(s.sum, b.sum);
        assert_eq!(s.max, b.max);
    }

    fn snap_of(name: &str, samples: &[u64]) -> HistSnapshot {
        let mut s = HistSnapshot::empty(name);
        for &v in samples {
            s.record(v);
        }
        s
    }

    fn same_stats(a: &HistSnapshot, b: &HistSnapshot) -> bool {
        a.buckets == b.buckets && a.count == b.count && a.sum == b.sum && a.max == b.max
    }

    #[test]
    fn merge_empty_into_nonempty_and_back() {
        let full = snap_of("lat", &[1, 2, 3, 500, 70_000]);
        let mut a = full.clone();
        a.merge(&HistSnapshot::empty("other"));
        assert!(same_stats(&a, &full), "merging empty is the identity");
        assert_eq!(a.name, "lat", "merge keeps the receiver's name");

        let mut b = HistSnapshot::empty("e");
        b.merge(&full);
        assert!(same_stats(&b, &full), "empty absorbs the other side");
        assert_eq!(b.name, "e");
    }

    #[test]
    fn merge_equals_snapshot_of_combined_samples() {
        // Percentile stability: merging two shard histograms answers the
        // same quantile queries as one histogram over the union of their
        // samples — exactly, not approximately, because the log2 bucket
        // arrays add elementwise.
        let xs: Vec<u64> = (1..=400).collect();
        let ys: Vec<u64> = (300..=1200).map(|v| v * 7).collect();
        let mut merged = snap_of("m", &xs);
        merged.merge(&snap_of("m", &ys));
        let combined = snap_of("m", &xs.iter().chain(&ys).copied().collect::<Vec<_>>());
        assert!(same_stats(&merged, &combined));
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(p), combined.percentile(p), "p{p}");
        }
        assert_eq!(merged.mean(), combined.mean());
    }

    #[test]
    fn wire_codec_round_trips_and_folds_foreign_buckets() {
        let snap = snap_of("inject.run_sim_cycles", &[0, 1, 9, 4096, 1 << 52]);
        let back = HistSnapshot::parse(&snap.to_json()).unwrap();
        assert!(same_stats(&back, &snap));
        assert_eq!(back.name, snap.name);

        // A peer with a *larger* bucket layout (mismatched bucket count):
        // out-of-range indices fold into the top bucket instead of being
        // dropped, so count stays consistent with the bucket sum.
        let foreign =
            r#"{"name":"x","count":3,"sum":30,"max":20,"buckets":[[2,1],[80,1],[400,1]]}"#;
        let f = HistSnapshot::parse(foreign).unwrap();
        assert_eq!(f.buckets.iter().sum::<u64>(), f.count);
        assert_eq!(f.buckets[BUCKETS - 1], 2, "indices 80 and 400 folded");
        let mut m = snap_of("x", &[5]);
        m.merge(&f);
        assert_eq!(m.count, 4);
        assert_eq!(m.buckets[BUCKETS - 1], 2);

        // Junk in, None out — never a panic.
        assert!(HistSnapshot::parse("[1,2,3]").is_none());
        assert!(HistSnapshot::parse("{\"count\":1}").is_none());
        assert!(HistSnapshot::parse("not json").is_none());
        // Malformed bucket pairs are skipped, scalars default to zero.
        let sloppy = HistSnapshot::parse(r#"{"name":"s","buckets":[[1],7,[2,5]]}"#).unwrap();
        assert_eq!(sloppy.count, 0);
        assert_eq!(sloppy.buckets[2], 5);
    }

    #[test]
    fn delta_framer_frames_monotone_and_restarting_counters() {
        let mut f = DeltaFramer::new();
        assert_eq!(f.frame("a", 10), 10, "first sight ships the full value");
        assert_eq!(f.frame("a", 10), 0);
        assert_eq!(f.frame("a", 17), 7);
        assert_eq!(f.frame("b", 3), 3, "counters are framed independently");
        // A reading below the last one means the peer restarted: report
        // the fresh reading, not a wrapped difference.
        assert_eq!(f.frame("a", 4), 4);
        assert_eq!(f.frame("a", 6), 2);
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        // Samples span every bucket but stay within JSON's exact-integer
        // range when summed, so the wire codec is lossless over them.
        fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
            prop::collection::vec(0u64..(1 << 46), 0..64)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            // Satellite: merge is commutative over the statistics.
            #[test]
            fn merge_is_commutative(xs in arb_samples(), ys in arb_samples()) {
                let (a, b) = (snap_of("a", &xs), snap_of("b", &ys));
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert!(same_stats(&ab, &ba));
            }

            // Satellite: merge is associative over the statistics.
            #[test]
            fn merge_is_associative(
                xs in arb_samples(),
                ys in arb_samples(),
                zs in arb_samples(),
            ) {
                let (a, b, c) = (snap_of("a", &xs), snap_of("b", &ys), snap_of("c", &zs));
                let mut left = a.clone(); // (a ⊕ b) ⊕ c
                left.merge(&b);
                left.merge(&c);
                let mut bc = b.clone(); // a ⊕ (b ⊕ c)
                bc.merge(&c);
                let mut right = a.clone();
                right.merge(&bc);
                prop_assert!(same_stats(&left, &right));
            }

            // The codec survives any snapshot the builder can produce.
            #[test]
            fn wire_codec_round_trips(xs in arb_samples()) {
                let s = snap_of("h", &xs);
                let back = HistSnapshot::parse(&s.to_json()).unwrap();
                prop_assert!(same_stats(&back, &s));
            }
        }
    }
}

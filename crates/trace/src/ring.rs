//! Per-thread ring-buffer collection.
//!
//! Events are pushed to a thread-local buffer and flushed to the global
//! [`Sink`](crate::Sink) in batches (on buffer-full, explicit flush, or
//! thread exit), so worker threads never contend on a lock per event.

use crate::sink;
use crate::Event;
use std::cell::RefCell;

/// Events buffered per thread before a batch flush.
const BATCH: usize = 128;

struct Ring {
    buf: Vec<Event>,
}

impl Ring {
    fn new() -> Ring {
        Ring { buf: Vec::new() }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.capacity() == 0 {
            self.buf.reserve(BATCH);
        }
        self.buf.push(ev);
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            sink::deliver(&self.buf);
            self.buf.clear();
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring::new());
}

pub(crate) fn push(ev: Event) {
    // `try_with` so emission during thread teardown degrades to a direct
    // delivery instead of a panic.
    let mut ev = Some(ev);
    let delivered = RING
        .try_with(|r| r.borrow_mut().push(ev.take().expect("event")))
        .is_ok();
    if !delivered {
        if let Some(ev) = ev {
            sink::deliver(std::slice::from_ref(&ev));
        }
    }
}

/// Flush this thread's buffered events to the installed sink.
pub fn flush_thread() {
    let _ = RING.try_with(|r| r.borrow_mut().flush());
}

/// Flush and return this thread's buffered events *without* delivering them
/// to the sink — for tests that inspect the stream directly.
pub fn drain_thread_ring() -> Vec<Event> {
    RING.try_with(|r| std::mem::take(&mut r.borrow_mut().buf))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use crate::{set_level_all, sink, Event, Level, MemorySink, Subsystem};
    use std::sync::Arc;

    #[test]
    fn batches_flush_on_boundary_and_shutdown() {
        let _guard = sink::test_lock();
        let mem = Arc::new(MemorySink::new());
        sink::install_sink(mem.clone());
        set_level_all(Level::Trace);

        for i in 0..super::BATCH + 3 {
            crate::emit(
                Event::new(Subsystem::Harness, Level::Info, "ring.test").field("i", i as u64),
            );
        }
        // One full batch must already have landed; the tail is buffered.
        let landed = mem
            .snapshot()
            .iter()
            .filter(|e| e.name == "ring.test")
            .count();
        assert!(landed >= super::BATCH, "landed {landed}");
        super::flush_thread();
        let landed = mem
            .snapshot()
            .iter()
            .filter(|e| e.name == "ring.test")
            .count();
        assert_eq!(landed, super::BATCH + 3);

        crate::disable_all();
        sink::uninstall_sink();
    }
}

//! Event sinks: where flushed batches go.

use crate::json;
use crate::Event;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A destination for event batches. Implementations must not emit events
/// themselves (delivery happens under the per-thread ring borrow).
pub trait Sink: Send + Sync {
    /// Receive one flushed batch, in emission order for the source thread.
    fn record(&self, events: &[Event]);

    /// Push any buffered output to its final destination.
    fn flush(&self) {}
}

static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);
static HAS_SINK: AtomicBool = AtomicBool::new(false);

/// Install the process-wide sink (replacing any previous one, which is
/// flushed first).
pub fn install_sink(sink: Arc<dyn Sink>) {
    let prev = SINK.lock().unwrap_or_else(|e| e.into_inner()).replace(sink);
    HAS_SINK.store(true, Ordering::Release);
    if let Some(prev) = prev {
        prev.flush();
    }
}

/// Remove the process-wide sink, flushing it. Buffered per-thread events
/// emitted before this call but not yet flushed are dropped silently when
/// their threads exit — call [`crate::flush_thread`] (or [`shutdown`]) from
/// the emitting thread first.
pub fn uninstall_sink() {
    let prev = SINK.lock().unwrap_or_else(|e| e.into_inner()).take();
    HAS_SINK.store(false, Ordering::Release);
    if let Some(prev) = prev {
        prev.flush();
    }
}

/// Flush the calling thread's ring and the installed sink. Call once per
/// thread of interest before process exit when writing JSONL files.
pub fn shutdown() {
    crate::flush_thread();
    if let Some(s) = current() {
        s.flush();
    }
}

/// Is a process-wide sink currently installed? One `Acquire` load;
/// embedders (the fleet worker) use it to avoid clobbering a sink the
/// hosting process already routed events to.
pub fn sink_installed() -> bool {
    HAS_SINK.load(Ordering::Acquire)
}

fn current() -> Option<Arc<dyn Sink>> {
    if !HAS_SINK.load(Ordering::Acquire) {
        return None;
    }
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

pub(crate) fn deliver(events: &[Event]) {
    if let Some(s) = current() {
        s.record(events);
    }
}

/// Serialize the global sink/filter state for tests that install sinks:
/// hold this lock around install → emit → assert → uninstall.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// JSON-Lines file sink: one event per line, hand-rolled serialization.
pub struct JsonlSink {
    w: Mutex<BufWriter<File>>,
    lines: std::sync::atomic::AtomicU64,
}

impl JsonlSink {
    /// Create (truncate) the target file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let f = File::create(path)?;
        Ok(JsonlSink {
            w: Mutex::new(BufWriter::new(f)),
            lines: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Number of lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }
}

impl Sink for JsonlSink {
    fn record(&self, events: &[Event]) {
        let mut line = String::with_capacity(160);
        let mut w = self.w.lock().unwrap_or_else(|e| e.into_inner());
        for ev in events {
            line.clear();
            json::write_event(ev, &mut line);
            line.push('\n');
            if w.write_all(line.as_bytes()).is_ok() {
                self.lines.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn flush(&self) {
        let _ = self.w.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl Drop for JsonlSink {
    /// A panicking worker (or an early `process::exit` path) must not lose
    /// the BufWriter tail: push buffered lines to the file on the way out.
    fn drop(&mut self) {
        let _ = self.w.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// In-memory sink for tests and post-run summaries.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    keep: Option<&'static [&'static str]>,
    dropped: std::sync::atomic::AtomicU64,
}

impl MemorySink {
    /// Keep every event.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Keep only events whose name is in `names`; others are counted but
    /// not stored (bounds memory on long campaigns).
    pub fn keeping(names: &'static [&'static str]) -> MemorySink {
        MemorySink {
            keep: Some(names),
            ..MemorySink::default()
        }
    }

    /// Copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Take the captured events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Events filtered out by [`MemorySink::keeping`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for MemorySink {
    fn record(&self, events: &[Event]) {
        let mut store = self.events.lock().unwrap_or_else(|e| e.into_inner());
        for ev in events {
            match self.keep {
                Some(names) if !names.contains(&ev.name) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                _ => store.push(ev.clone()),
            }
        }
    }
}

/// ASCII summary sink: counts events per name and renders a table.
#[derive(Default)]
pub struct SummarySink {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl SummarySink {
    /// An empty summary.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }

    /// Render the per-name counts as an aligned ASCII table.
    pub fn render(&self) -> String {
        let counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("event counts\n");
        let width = counts.keys().map(|k| k.len()).max().unwrap_or(0).max(5);
        for (name, n) in counts.iter() {
            out.push_str(&format!("  {name:<width$}  {n:>10}\n"));
        }
        if counts.is_empty() {
            out.push_str("  (none)\n");
        }
        out
    }
}

impl Sink for SummarySink {
    fn record(&self, events: &[Event]) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        for ev in events {
            *counts.entry(ev.name).or_insert(0) += 1;
        }
    }
}

/// Fan a batch out to several sinks.
pub struct Tee(pub Vec<Arc<dyn Sink>>);

impl Sink for Tee {
    fn record(&self, events: &[Event]) {
        for s in &self.0 {
            s.record(events);
        }
    }

    fn flush(&self) {
        for s in &self.0 {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Subsystem};

    fn ev(name: &'static str) -> Event {
        Event::new(Subsystem::Harness, Level::Info, name).field("k", 1u64)
    }

    #[test]
    fn memory_sink_filters_and_counts() {
        let m = MemorySink::keeping(&["keep.me"]);
        m.record(&[ev("keep.me"), ev("drop.me"), ev("keep.me")]);
        assert_eq!(m.snapshot().len(), 2);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.take().len(), 2);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn summary_sink_renders_counts() {
        let s = SummarySink::new();
        s.record(&[ev("a.b"), ev("a.b"), ev("c.d")]);
        let r = s.render();
        assert!(r.contains("a.b"), "{r}");
        assert!(r.contains('2'), "{r}");
        assert!(r.contains("c.d"), "{r}");
    }

    #[test]
    fn tee_duplicates_batches() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Tee(vec![a.clone(), b.clone()]);
        t.record(&[ev("x")]);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("sea_trace_sink_{}.jsonl", std::process::id()));
        let s = JsonlSink::create(&path).unwrap();
        s.record(&[ev("j.one"), ev("j.two")]);
        s.flush();
        assert_eq!(s.lines_written(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            crate::json::parse(l).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_flushes_buffered_lines_on_drop() {
        let path =
            std::env::temp_dir().join(format!("sea_trace_drop_{}.jsonl", std::process::id()));
        {
            let s = JsonlSink::create(&path).unwrap();
            s.record(&[ev("tail.event")]);
            // No explicit flush: Drop must push the BufWriter tail.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        crate::json::parse(text.lines().next().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}

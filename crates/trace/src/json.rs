//! Hand-rolled JSON: an event serializer for the JSON-Lines sink and a
//! small validating parser so traces round-trip in tests and tools without
//! pulling in serde (DESIGN.md §5).

use crate::{Event, Value};
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; encode as null.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(*f, out),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => write_escaped(s, out),
        Value::Text(s) => write_escaped(s, out),
    }
}

/// Serialize one event as a single JSON object (no trailing newline):
/// `{"ev":"name","sub":"injection","level":"info","cycle":123,...fields}`.
pub fn write_event(ev: &Event, out: &mut String) {
    out.push_str("{\"ev\":");
    write_escaped(ev.name, out);
    out.push_str(",\"sub\":");
    write_escaped(ev.sub.name(), out);
    out.push_str(",\"level\":");
    write_escaped(ev.level.name(), out);
    if let Some(cycle) = ev.cycle {
        let _ = write!(out, ",\"cycle\":{cycle}");
    }
    for (k, v) in &ev.fields {
        out.push(',');
        write_escaped(k, out);
        out.push(':');
        write_value(v, out);
    }
    out.push('}');
}

/// Incremental builder for a single-line JSON object, for writers that are
/// not [`Event`]s (campaign journals, quarantine records). Keeps the
/// serializer hand-rolled and in one place (DESIGN.md §5).
///
/// ```
/// use sea_trace::json::ObjWriter;
/// let mut o = ObjWriter::new();
/// o.str_field("kind", "inject").u64_field("i", 7).bool_field("ok", true);
/// assert_eq!(o.finish(), r#"{"kind":"inject","i":7,"ok":true}"#);
/// ```
#[derive(Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> ObjWriter {
        ObjWriter { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        write_escaped(k, &mut self.buf);
        self.buf.push(':');
        &mut self.buf
    }

    /// Appends a string member.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut ObjWriter {
        let buf = self.key(k);
        write_escaped(v, buf);
        self
    }

    /// Appends an unsigned-integer member. Note JSON numbers are only
    /// exact to 2^53; store full-width hashes/seeds as hex strings.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut ObjWriter {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Appends a float member (non-finite values become `null`).
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut ObjWriter {
        let buf = self.key(k);
        write_f64(v, buf);
        self
    }

    /// Appends a member whose value is already serialized JSON (a nested
    /// object or array built by another writer). The caller is
    /// responsible for `json` being well-formed.
    pub fn raw_field(&mut self, k: &str, json: &str) -> &mut ObjWriter {
        let buf = self.key(k);
        buf.push_str(json);
        self
    }

    /// Appends a boolean member.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut ObjWriter {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the serialized line (no newline).
    pub fn finish(&mut self) -> String {
        if self.buf.is_empty() {
            return "{}".to_string();
        }
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as f64; integers up to 2^53 are exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64 (if integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Render a parsed [`Json`] value back to compact text, member order
/// preserved. Integral numbers up to 2^53 print without a fraction, so a
/// parse → render round trip of integer-only documents (protocol frames,
/// canonical specs) is byte-stable.
pub fn render(j: &Json) -> String {
    let mut out = String::new();
    render_into(j, &mut out);
    out
}

fn render_into(j: &Json, out: &mut String) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
            } else {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (k, (key, val)) in members.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

/// Parse error: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { msg, at: self.i }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}', "expected ',' or '}'")?;
            return Ok(Json::Obj(members));
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']', "expected ',' or ']'")?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.i;
            while let Some(&c) = self.b.get(self.i) {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.i += 1;
            }
            // The skipped span is valid UTF-8 because the input is &str and
            // we only stopped at ASCII boundaries.
            out.push_str(std::str::from_utf8(&self.b[start..self.i]).expect("utf8 span"));
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self.b.get(self.i).ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs: only BMP escapes are emitted
                            // by our writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            msg: "bad number",
            at: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Subsystem};

    #[test]
    fn event_serializes_and_parses_back() {
        let ev = Event::new(Subsystem::Injection, Level::Info, "injection.provenance")
            .at_cycle(98_765)
            .field("component", "L1D")
            .field("bit", 4321u64)
            .field("latency", -3i64)
            .field("rate", 0.25f64)
            .field("activated", true)
            .field("note", "quote \" backslash \\ tab \t".to_string());
        let mut line = String::new();
        write_event(&ev, &mut line);
        let j = parse(&line).unwrap();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("injection.provenance"));
        assert_eq!(j.get("sub").unwrap().as_str(), Some("injection"));
        assert_eq!(j.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(j.get("cycle").unwrap().as_u64(), Some(98_765));
        assert_eq!(j.get("component").unwrap().as_str(), Some("L1D"));
        assert_eq!(j.get("bit").unwrap().as_u64(), Some(4321));
        assert_eq!(j.get("latency").unwrap().as_f64(), Some(-3.0));
        assert_eq!(j.get("rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(j.get("activated").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("note").unwrap().as_str(),
            Some("quote \" backslash \\ tab \t")
        );
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let j = parse(r#" { "a": [1, 2.5, -3e2, true, null], "b": { "c": "d" } } "#).unwrap();
        match j.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].as_f64(), Some(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn control_chars_escape_and_return() {
        let mut s = String::new();
        write_escaped("a\u{1}b", &mut s);
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn unicode_survives_round_trip() {
        let mut s = String::new();
        write_escaped("héllo λ 日本", &mut s);
        assert_eq!(parse(&s).unwrap().as_str(), Some("héllo λ 日本"));
    }

    #[test]
    fn obj_writer_output_parses_back() {
        let mut o = ObjWriter::new();
        o.str_field("panic", "index out of bounds: len 4\n")
            .u64_field("i", 12)
            .f64_field("rate", 0.5)
            .f64_field("bad", f64::INFINITY)
            .bool_field("deterministic", false);
        let line = o.finish();
        let j = parse(&line).unwrap();
        assert_eq!(
            j.get("panic").unwrap().as_str(),
            Some("index out of bounds: len 4\n")
        );
        assert_eq!(j.get("i").unwrap().as_u64(), Some(12));
        assert_eq!(j.get("rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(j.get("bad"), Some(&Json::Null));
        assert_eq!(j.get("deterministic").unwrap().as_bool(), Some(false));
        assert_eq!(ObjWriter::new().finish(), "{}");
    }

    #[test]
    fn raw_field_nests_objects_and_arrays() {
        let mut inner = ObjWriter::new();
        inner.str_field("label", "L1D").f64_field("margin", 0.04);
        let mut o = ObjWriter::new();
        o.str_field("state", "running")
            .raw_field("stratum", &inner.finish())
            .raw_field("classes", "[1,2,3]");
        let j = parse(&o.finish()).unwrap();
        assert_eq!(
            j.get("stratum").unwrap().get("label").unwrap().as_str(),
            Some("L1D")
        );
        match j.get("classes").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let ev = Event::new(Subsystem::Beam, Level::Info, "x").field("v", f64::NAN);
        let mut line = String::new();
        write_event(&ev, &mut line);
        assert_eq!(parse(&line).unwrap().get("v"), Some(&Json::Null));
    }

    #[test]
    fn render_round_trips_integer_documents_byte_stable() {
        for doc in [
            r#"{"op":"done","wl":3,"start":128,"end":192,"obs":[[0,1],[5,3]]}"#,
            r#"{"s":"a\"b\\c","n":null,"t":true,"f":false,"deep":{"arr":[1,[2,{"k":3}]]}}"#,
            "[]",
            "{}",
            r#"[0,-7,9007199254740992]"#,
        ] {
            let parsed = parse(doc).unwrap();
            assert_eq!(render(&parsed), doc, "{doc}");
            // Render output is itself parseable to the same value.
            assert_eq!(parse(&render(&parsed)).unwrap(), parsed);
        }
        // Non-integral numbers re-parse to the same value even when the
        // textual form differs.
        let j = parse("{\"x\":0.25}").unwrap();
        assert_eq!(parse(&render(&j)).unwrap(), j);
    }
}

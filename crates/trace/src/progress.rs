//! Live campaign progress: runs/sec, class distribution, ETA.
//!
//! Shared by injection campaigns and beam sessions. Workers call
//! [`Progress::record`] after each run; one of them (whichever crosses the
//! throttle window first) prints a single-line status to stderr. All state
//! is atomic — no locks on the worker path.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Global switch for progress meters (the `--progress` flag).
static PROGRESS_ON: AtomicBool = AtomicBool::new(false);

/// Enable or disable progress meters process-wide.
pub fn set_progress(on: bool) {
    PROGRESS_ON.store(on, Ordering::Relaxed);
}

/// Are progress meters enabled?
pub fn progress_enabled() -> bool {
    PROGRESS_ON.load(Ordering::Relaxed)
}

/// Minimum milliseconds between printed status lines.
const THROTTLE_MS: u64 = 200;

/// A progress meter over a known number of runs, with per-class counts.
pub struct Progress {
    label: String,
    total: u64,
    class_names: &'static [&'static str],
    done: AtomicU64,
    classes: Vec<AtomicU64>,
    start: Instant,
    last_print_ms: AtomicU64,
    active: bool,
}

impl Progress {
    /// A meter for `total` runs labeled `label`, tracking one counter per
    /// entry of `class_names`. Inactive (all methods cheap no-ops beyond
    /// counting) unless [`set_progress`] was turned on.
    pub fn new(
        label: impl Into<String>,
        total: u64,
        class_names: &'static [&'static str],
    ) -> Progress {
        Progress {
            label: label.into(),
            total,
            class_names,
            done: AtomicU64::new(0),
            classes: (0..class_names.len()).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            active: progress_enabled(),
        }
    }

    /// Record one completed run of class `class` (index into the meter's
    /// class names; `None` counts only the total).
    pub fn record(&self, class: Option<usize>) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(c) = class {
            if let Some(slot) = self.classes.get(c) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
        if self.active {
            self.maybe_print(done, false);
        }
    }

    /// Runs completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Elapsed wall-clock seconds since creation.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Overall runs/second so far.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs > 0.0 {
            self.done() as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-class counts, index-aligned with the constructor's names.
    pub fn class_counts(&self) -> Vec<u64> {
        self.classes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Print a final status line (if active) and return (done, secs).
    pub fn finish(&self) -> (u64, f64) {
        let done = self.done();
        if self.active {
            self.maybe_print(done, true);
            eprintln!();
        }
        (done, self.elapsed_secs())
    }

    fn maybe_print(&self, done: u64, force: bool) {
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if !force && (now_ms < last.saturating_add(THROTTLE_MS)) {
            return;
        }
        // One printer at a time; losers just skip.
        if self
            .last_print_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !force
        {
            return;
        }
        let secs = self.elapsed_secs();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && self.total > done {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let mut line = format!(
            "\r{}: {}/{} ({:.0}/s, ETA {:.0}s)",
            self.label, done, self.total, rate, eta
        );
        for (name, slot) in self.class_names.iter().zip(&self.classes) {
            line.push_str(&format!(" {}={}", name, slot.load(Ordering::Relaxed)));
        }
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing_when_disabled() {
        set_progress(false);
        let p = Progress::new("test", 10, &["a", "b"]);
        for i in 0..10 {
            p.record(Some(i % 2));
        }
        assert_eq!(p.done(), 10);
        assert_eq!(p.class_counts(), vec![5, 5]);
        let (done, secs) = p.finish();
        assert_eq!(done, 10);
        assert!(secs >= 0.0);
        assert!(p.runs_per_sec() >= 0.0);
    }

    #[test]
    fn out_of_range_class_is_ignored() {
        let p = Progress::new("test", 2, &["only"]);
        p.record(Some(5));
        p.record(None);
        assert_eq!(p.done(), 2);
        assert_eq!(p.class_counts(), vec![0]);
    }
}

//! Live campaign progress: runs/sec, class distribution, ETA.
//!
//! Shared by injection campaigns and beam sessions. Workers call
//! [`Progress::record`] after each run; one of them (whichever crosses the
//! throttle window first) prints a single-line status to stderr. All state
//! is atomic — no locks on the worker path.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Global switch for progress meters (the `--progress` flag).
static PROGRESS_ON: AtomicBool = AtomicBool::new(false);

/// Enable or disable progress meters process-wide.
pub fn set_progress(on: bool) {
    PROGRESS_ON.store(on, Ordering::Relaxed);
}

/// Are progress meters enabled?
pub fn progress_enabled() -> bool {
    PROGRESS_ON.load(Ordering::Relaxed)
}

/// Minimum milliseconds between printed status lines.
const THROTTLE_MS: u64 = 200;

/// A progress meter over a known number of runs, with per-class counts.
pub struct Progress {
    label: String,
    total: u64,
    class_names: &'static [&'static str],
    done: AtomicU64,
    classes: Vec<AtomicU64>,
    /// Total expected work units (e.g. cycles to simulate across all
    /// runs); 0 means unknown, falling back to run-count ETA.
    total_work: AtomicU64,
    /// Work units actually completed so far.
    work_done: AtomicU64,
    start: Instant,
    last_print_ms: AtomicU64,
    active: bool,
}

impl Progress {
    /// A meter for `total` runs labeled `label`, tracking one counter per
    /// entry of `class_names`. Inactive (all methods cheap no-ops beyond
    /// counting) unless [`set_progress`] was turned on.
    pub fn new(
        label: impl Into<String>,
        total: u64,
        class_names: &'static [&'static str],
    ) -> Progress {
        Progress {
            label: label.into(),
            total,
            class_names,
            done: AtomicU64::new(0),
            classes: (0..class_names.len()).map(|_| AtomicU64::new(0)).collect(),
            total_work: AtomicU64::new(0),
            work_done: AtomicU64::new(0),
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            active: progress_enabled(),
        }
    }

    /// Record one completed run of class `class` (index into the meter's
    /// class names; `None` counts only the total).
    pub fn record(&self, class: Option<usize>) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(c) = class {
            if let Some(slot) = self.classes.get(c) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
        if self.active {
            self.maybe_print(done, false);
        }
    }

    /// Declare the total expected work units (e.g. cycles to simulate
    /// across all pending runs). When set, the ETA is computed from the
    /// work rate instead of the run rate — with checkpoint restores, runs
    /// differ wildly in cost (a run restored near its injection cycle
    /// simulates far fewer cycles than one replayed from boot), so a
    /// run-count ETA whipsaws while a work-weighted one stays calibrated.
    pub fn set_total_work(&self, work: u64) {
        self.total_work.store(work, Ordering::Relaxed);
    }

    /// Record `work` completed work units for the current run (call next
    /// to [`Progress::record`], with the cycles the run actually
    /// simulated).
    pub fn record_work(&self, work: u64) {
        self.work_done.fetch_add(work, Ordering::Relaxed);
    }

    /// Runs completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Planned total runs.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current remaining-time estimate in seconds — work-weighted when
    /// [`Progress::set_total_work`] was declared, run-count otherwise.
    pub fn eta(&self) -> f64 {
        let done = self.done();
        let secs = self.elapsed_secs();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        self.eta_secs(done, secs, rate)
    }

    /// Elapsed wall-clock seconds since creation.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Overall runs/second so far.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs > 0.0 {
            self.done() as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-class counts, index-aligned with the constructor's names.
    pub fn class_counts(&self) -> Vec<u64> {
        self.classes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Print a final status line (if active) and return (done, secs).
    pub fn finish(&self) -> (u64, f64) {
        let done = self.done();
        if self.active {
            self.maybe_print(done, true);
            eprintln!();
        }
        (done, self.elapsed_secs())
    }

    fn maybe_print(&self, done: u64, force: bool) {
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if !force && (now_ms < last.saturating_add(THROTTLE_MS)) {
            return;
        }
        // One printer at a time; losers just skip.
        if self
            .last_print_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !force
        {
            return;
        }
        let secs = self.elapsed_secs();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = self.eta_secs(done, secs, rate);
        let mut line = format!(
            "\r{}: {}/{} ({:.0}/s, ETA {:.0}s)",
            self.label, done, self.total, rate, eta
        );
        for (name, slot) in self.class_names.iter().zip(&self.classes) {
            line.push_str(&format!(" {}={}", name, slot.load(Ordering::Relaxed)));
        }
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
        let _ = err.flush();
    }

    /// Remaining-time estimate. Work-weighted (remaining work units over
    /// the observed work rate) when [`Progress::set_total_work`] was
    /// called; otherwise run-count based.
    fn eta_secs(&self, done: u64, secs: f64, run_rate: f64) -> f64 {
        let total_work = self.total_work.load(Ordering::Relaxed);
        if total_work > 0 && secs > 0.0 {
            let work_done = self.work_done.load(Ordering::Relaxed);
            let work_rate = work_done as f64 / secs;
            if work_rate > 0.0 && total_work > work_done {
                return (total_work - work_done) as f64 / work_rate;
            }
            if work_done >= total_work {
                return 0.0;
            }
        }
        if run_rate > 0.0 && self.total > done {
            (self.total - done) as f64 / run_rate
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing_when_disabled() {
        set_progress(false);
        let p = Progress::new("test", 10, &["a", "b"]);
        for i in 0..10 {
            p.record(Some(i % 2));
        }
        assert_eq!(p.done(), 10);
        assert_eq!(p.class_counts(), vec![5, 5]);
        let (done, secs) = p.finish();
        assert_eq!(done, 10);
        assert!(secs >= 0.0);
        assert!(p.runs_per_sec() >= 0.0);
    }

    #[test]
    fn work_weighted_eta_tracks_cycles_not_runs() {
        let p = Progress::new("test", 10, &[]);
        // 8 of 10 runs done, but they were the cheap (checkpoint-restored)
        // ones: only 20% of the total cycles are simulated.
        p.set_total_work(1_000_000);
        for _ in 0..8 {
            p.record(None);
            p.record_work(25_000);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        let secs = p.elapsed_secs();
        let run_rate = p.runs_per_sec();
        let eta = p.eta_secs(p.done(), secs, run_rate);
        // 800k cycles remain at 200k/secs elapsed: work ETA = 4 * secs.
        // A run-count ETA would claim 2 runs / (8/secs) = secs / 4 —
        // sixteen times too optimistic here.
        assert!(
            (eta - 4.0 * secs).abs() < 0.2 * secs,
            "eta={eta} secs={secs}"
        );

        // Without total work declared, fall back to the run-count ETA.
        let q = Progress::new("test", 10, &[]);
        for _ in 0..8 {
            q.record(None);
            q.record_work(25_000);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        let qsecs = q.elapsed_secs();
        let qeta = q.eta_secs(q.done(), qsecs, q.runs_per_sec());
        assert!(
            (qeta - qsecs / 4.0).abs() < 0.2 * qsecs,
            "eta={qeta} secs={qsecs}"
        );
    }

    #[test]
    fn out_of_range_class_is_ignored() {
        let p = Progress::new("test", 2, &["only"]);
        p.record(Some(5));
        p.record(None);
        assert_eq!(p.done(), 2);
        assert_eq!(p.class_counts(), vec![0]);
    }
}

//! # sea-trace — structured tracing for the SEA simulator stack
//!
//! A zero-dependency (deliberately no `serde`, see DESIGN.md §5) structured
//! event and metrics layer. Every campaign becomes an inspectable dataset:
//! fault-provenance records from `sea-microarch`, per-worker throughput and
//! class distributions from `sea-injection`, strike logs and fluence
//! accounting from `sea-beam` — all as JSON-Lines or ASCII summaries.
//!
//! ## Design
//!
//! * **Fast path first.** [`enabled`] is a single `Relaxed` atomic load of a
//!   packed per-subsystem level filter. With tracing disabled (the default)
//!   no event is constructed, so the hot simulator loop pays one predictable
//!   branch and **zero heap allocations** (guarded by a test).
//! * **Lock-free-ish collection.** Emitted events land in a per-thread ring
//!   buffer and are flushed to the installed [`Sink`] in batches, so worker
//!   threads do not contend on a lock per event.
//! * **Hand-rolled JSON.** Events serialize to JSON-Lines through
//!   [`json::write_event`]; [`json::parse`] is a small validating parser so
//!   tests (and downstream tools) can round-trip traces without serde.
//!
//! ## Quick use
//!
//! ```ignore
//! sea_trace::set_level_all(sea_trace::Level::Info);
//! sea_trace::install_sink(std::sync::Arc::new(
//!     sea_trace::JsonlSink::create("campaign.jsonl")?,
//! ));
//! sea_trace::event!(Subsystem::Injection, Level::Info, "injection.flip",
//!     "component" => "L1D", "bit" => 1234u64);
//! sea_trace::shutdown(); // flush rings + sink
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
mod progress;
mod ring;
mod sink;
mod span;

pub use metrics::{Counter, DeltaFramer, HistSnapshot, Histogram};
pub use progress::{progress_enabled, set_progress, Progress};
pub use ring::{drain_thread_ring, flush_thread};
#[doc(hidden)]
pub use sink::test_lock;
pub use sink::{
    install_sink, shutdown, sink_installed, uninstall_sink, JsonlSink, MemorySink, Sink,
    SummarySink, Tee,
};
pub use span::{clock_us, span, SpanGuard};

use std::sync::atomic::{AtomicU32, Ordering};

/// The originating layer of an event. Each subsystem carries its own level
/// filter, packed 3 bits wide into one shared atomic word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Subsystem {
    /// CPU/cache/TLB model (`sea-microarch`), incl. fault provenance.
    Microarch = 0,
    /// Guest kernel and platform harness (`sea-platform`).
    Platform = 1,
    /// Statistical fault-injection campaigns (`sea-injection`).
    Injection = 2,
    /// Beam-session Monte Carlo (`sea-beam`).
    Beam = 3,
    /// Post-processing and reporting (`sea-analysis`).
    Analysis = 4,
    /// Entry points and study orchestration (`sea-bench`, `sea-core`).
    Harness = 5,
}

impl Subsystem {
    /// All subsystems, index-aligned with the discriminant.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::Microarch,
        Subsystem::Platform,
        Subsystem::Injection,
        Subsystem::Beam,
        Subsystem::Analysis,
        Subsystem::Harness,
    ];

    /// Stable lowercase name (used as the JSON `sub` field).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Microarch => "microarch",
            Subsystem::Platform => "platform",
            Subsystem::Injection => "injection",
            Subsystem::Beam => "beam",
            Subsystem::Analysis => "analysis",
            Subsystem::Harness => "harness",
        }
    }

    /// Parse a subsystem from its [`name`](Subsystem::name).
    pub fn from_name(s: &str) -> Option<Subsystem> {
        Subsystem::ALL.into_iter().find(|sub| sub.name() == s)
    }
}

/// Event severity / verbosity. Level `n` is emitted when the subsystem's
/// filter is `>= n`; a filter of 0 means off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Campaign-grade records (provenance, strikes, worker stats).
    Info = 3,
    /// Per-hop propagation detail.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Stable lowercase name (used as the JSON `level` field).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Packed per-subsystem level filter: 3 bits per subsystem, all in one
/// atomic so [`enabled`] is a single load.
static FILTER: AtomicU32 = AtomicU32::new(0);

/// Is an event at `level` from `sub` currently recorded? This is the hot-
/// path check: exactly one `Relaxed` atomic load, a shift, and a compare.
#[inline]
pub fn enabled(sub: Subsystem, level: Level) -> bool {
    let f = FILTER.load(Ordering::Relaxed);
    (f >> (3 * sub as u32)) & 0x7 >= level as u32
}

/// Set one subsystem's maximum recorded level.
pub fn set_level(sub: Subsystem, level: Level) {
    let shift = 3 * sub as u32;
    let mut cur = FILTER.load(Ordering::Relaxed);
    loop {
        let next = (cur & !(0x7 << shift)) | ((level as u32) << shift);
        match FILTER.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Set every subsystem to the same maximum level.
pub fn set_level_all(level: Level) {
    let mut word = 0u32;
    for sub in Subsystem::ALL {
        word |= (level as u32) << (3 * sub as u32);
    }
    FILTER.store(word, Ordering::Relaxed);
}

/// Turn all tracing off (the default state).
pub fn disable_all() {
    FILTER.store(0, Ordering::Relaxed);
}

/// A field value. Numbers keep their native width; `Str` carries static
/// names, `Text` owned strings.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (no allocation).
    Str(&'static str),
    /// Owned string.
    Text(String),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        }
    )*};
}

value_from! {
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, u8 => U64 as u64,
    usize => U64 as u64, i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

/// One structured trace record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Originating subsystem.
    pub sub: Subsystem,
    /// Severity.
    pub level: Level,
    /// Dotted event name, e.g. `injection.provenance`.
    pub name: &'static str,
    /// Simulated cycle the event refers to, if meaningful.
    pub cycle: Option<u64>,
    /// Named payload fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Build an event with no fields.
    pub fn new(sub: Subsystem, level: Level, name: &'static str) -> Event {
        Event {
            sub,
            level,
            name,
            cycle: None,
            fields: Vec::new(),
        }
    }

    /// Attach the simulated cycle.
    pub fn at_cycle(mut self, cycle: u64) -> Event {
        self.cycle = Some(cycle);
        self
    }

    /// Attach one field.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Record an event. Call only after [`enabled`] returned true (the
/// [`event!`] macro does this for you); calling it unconditionally is
/// correct but wastes the event construction when tracing is off.
pub fn emit(event: Event) {
    ring::push(event);
}

/// Emit a structured event if its (subsystem, level) is enabled. Fields are
/// not even constructed when disabled — this is the zero-allocation fast
/// path.
///
/// ```ignore
/// event!(Subsystem::Injection, Level::Info, "injection.flip";
///        cycle = 1234; "component" => "L1D", "bit" => 77u64);
/// ```
#[macro_export]
macro_rules! event {
    ($sub:expr, $level:expr, $name:expr; cycle = $cycle:expr $(; $($k:expr => $v:expr),+ $(,)?)?) => {
        if $crate::enabled($sub, $level) {
            let ev = $crate::Event::new($sub, $level, $name).at_cycle($cycle);
            $($(let ev = ev.field($k, $v);)+)?
            $crate::emit(ev);
        }
    };
    ($sub:expr, $level:expr, $name:expr $(; $($k:expr => $v:expr),+ $(,)?)?) => {
        if $crate::enabled($sub, $level) {
            let ev = $crate::Event::new($sub, $level, $name);
            $($(let ev = ev.field($k, $v);)+)?
            $crate::emit(ev);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_is_per_subsystem() {
        disable_all();
        assert!(!enabled(Subsystem::Injection, Level::Error));
        set_level(Subsystem::Injection, Level::Info);
        assert!(enabled(Subsystem::Injection, Level::Info));
        assert!(!enabled(Subsystem::Injection, Level::Debug));
        assert!(!enabled(Subsystem::Beam, Level::Error));
        set_level_all(Level::Trace);
        for sub in Subsystem::ALL {
            assert!(enabled(sub, Level::Trace));
        }
        disable_all();
        for sub in Subsystem::ALL {
            assert!(!enabled(sub, Level::Error));
        }
    }

    #[test]
    fn names_round_trip() {
        for sub in Subsystem::ALL {
            assert_eq!(Subsystem::from_name(sub.name()), Some(sub));
        }
        assert_eq!(Subsystem::from_name("nope"), None);
    }

    #[test]
    fn event_builder_and_get() {
        let ev = Event::new(Subsystem::Beam, Level::Info, "beam.strike")
            .at_cycle(42)
            .field("bit", 7u64)
            .field("origin", "Sram");
        assert_eq!(ev.cycle, Some(42));
        assert_eq!(ev.get("bit"), Some(&Value::U64(7)));
        assert_eq!(ev.get("origin"), Some(&Value::Str("Sram")));
        assert_eq!(ev.get("missing"), None);
    }
}

//! The acceptance guard for the disabled fast path: with tracing off (the
//! default), emitting through `event!` performs **zero heap allocations**
//! and the enablement check is a single relaxed atomic load (see
//! `sea_trace::enabled`). Proven here with a counting global allocator.

use sea_trace::{event, Level, Subsystem};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The one unsafe block in the workspace's test code: delegating the global
// allocator to `System` while counting calls.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// Both tests flip the process-wide filter; serialize them.
static FILTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_tracing_allocates_nothing_per_event() {
    let _lock = FILTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sea_trace::disable_all();
    // Warm anything lazily initialized on the first check.
    event!(Subsystem::Microarch, Level::Debug, "warmup"; "k" => 1u64);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        event!(Subsystem::Microarch, Level::Debug, "hot.path";
               cycle = i;
               "bit" => i, "component" => "L1D", "owned_would_alloc" => i * 3);
        event!(Subsystem::Injection, Level::Info, "hot.path2"; "x" => i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled event! must not allocate (got {} allocations over 20k events)",
        after - before
    );
}

#[test]
fn enabled_without_sink_still_cheap_per_event_type() {
    let _lock = FILTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // With a level set but no sink installed, events are built and dropped
    // at ring flush; this is not the hot path, but it must not run away:
    // the ring reuses its buffer, so steady-state allocation is bounded by
    // the event payloads themselves, not the collection machinery.
    sea_trace::set_level_all(Level::Trace);
    for i in 0..1000u64 {
        event!(Subsystem::Harness, Level::Trace, "warm.ring"; "i" => i);
    }
    sea_trace::flush_thread();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        event!(Subsystem::Harness, Level::Trace, "steady.ring"; "i" => i);
    }
    sea_trace::flush_thread();
    let per_event = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / 1000.0;
    // One Vec-of-fields allocation per event is expected; the ring and
    // delivery must add nothing that scales.
    assert!(
        per_event <= 4.0,
        "unexpected allocation rate: {per_event}/event"
    );
    sea_trace::disable_all();
}

//! Events emitted from scoped worker threads must reach the sink.
//!
//! `std::thread::scope` considers a thread joined once its closure returns,
//! but thread-local destructors (which flush the per-thread ring) may run
//! *after* that — racing with sink teardown on the spawning thread. The
//! contract is therefore: worker closures call `flush_thread()` before
//! returning. This test pins that convention.

#[test]
fn scoped_thread_events_reach_sink() {
    let _g = sea_trace::test_lock();
    let mem = std::sync::Arc::new(sea_trace::MemorySink::new());
    sea_trace::install_sink(mem.clone());
    sea_trace::set_level_all(sea_trace::Level::Info);
    std::thread::scope(|s| {
        s.spawn(|| {
            sea_trace::event!(
                sea_trace::Subsystem::Platform,
                sea_trace::Level::Info,
                "x.worker"
            );
            sea_trace::flush_thread();
        });
    });
    sea_trace::disable_all();
    sea_trace::uninstall_sink();
    let n = mem
        .snapshot()
        .iter()
        .filter(|e| e.name == "x.worker")
        .count();
    assert_eq!(n, 1, "worker-thread event lost");
}

//! # sea-durable — crash-consistent journal primitives
//!
//! Campaigns are the product: the paper's evidence rests on 260 beam-hours
//! and multi-million-run injection studies, and every byte of a campaign's
//! outcome journal must survive a power cut or SIGKILL mid-append. This
//! crate supplies the persistence layer the supervisor stack builds on:
//!
//! * a table-driven IEEE **CRC32** (no external dependency, like the FNV-1a
//!   hash in `sea-injection` and the hand-rolled JSON in `sea-trace`);
//! * the **`.seaj` container codec** — magic `SEAJRNL\x01`, a u32 format
//!   version, one length-prefixed CRC-framed header blob, then
//!   length-prefixed records each carrying a monotonic sequence number and
//!   a CRC32 over `seq ‖ payload`;
//! * a **torn-tail scanner** ([`scan`]) that CRC-validates every record and
//!   reports the longest valid prefix, so `--resume` truncates a trailing
//!   partial or corrupt record and continues from the last good sequence
//!   number instead of refusing or mis-counting;
//! * a [`DurableWriter`] with configurable [`FsyncPolicy`] cadence and
//!   bounded retry-with-backoff on write faults (disk-full, EIO): a failed
//!   append rolls the file back to the last good length before retrying, so
//!   even an aborted run leaves a valid resumable prefix;
//! * lossless **JSONL export** ([`export_jsonl`]) — record payloads are the
//!   exact line bytes a `--journal-format jsonl` run would have written, so
//!   the export of a binary journal is byte-identical to a JSONL journal of
//!   the same campaign.
//!
//! The crate is deliberately a leaf: zero dependencies, pure std, usable
//! from `sea-snapshot` (checkpoint section CRCs) up through `sea-observe`
//! (`/journal/tail` over binary records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Magic prefix of a `.seaj` binary journal file.
pub const SEAJ_MAGIC: [u8; 8] = *b"SEAJRNL\x01";

/// Version of the `.seaj` container layout (independent of the logical
/// journal-header version carried in the header payload).
pub const SEAJ_VERSION: u32 = 1;

/// Fixed per-record framing overhead: u32 payload length, u64 sequence
/// number, u32 CRC32 over `seq_le ‖ payload`.
pub const RECORD_OVERHEAD: usize = 4 + 8 + 4;

/// Upper bound on a single record payload; anything larger in the length
/// field is treated as tail corruption rather than trusted.
pub const MAX_RECORD_LEN: usize = 16 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected, table-driven)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental IEEE CRC32 state, for checksumming discontiguous parts
/// (e.g. `seq_le ‖ payload`) without concatenating them.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh CRC32 accumulator.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finalize and return the checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot IEEE CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Journal format + fsync policy (CLI-facing knobs)
// ---------------------------------------------------------------------------

/// On-disk representation of an outcome journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JournalFormat {
    /// Length-prefixed CRC-framed binary records (`.seaj`). The default.
    #[default]
    Binary,
    /// Plain JSON-lines compatibility mode (`.jsonl`), as written by
    /// earlier releases. Lossless peer of the binary format: a `.seaj`
    /// export is byte-identical to a journal written in this mode.
    Jsonl,
}

impl JournalFormat {
    /// Parse a `--journal-format` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "bin" | "binary" | "seaj" => Ok(JournalFormat::Binary),
            "jsonl" | "json" => Ok(JournalFormat::Jsonl),
            other => Err(format!(
                "unknown journal format '{other}' (expected bin|jsonl)"
            )),
        }
    }

    /// File extension used for journals of this format.
    pub fn extension(self) -> &'static str {
        match self {
            JournalFormat::Binary => "seaj",
            JournalFormat::Jsonl => "jsonl",
        }
    }
}

impl fmt::Display for JournalFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalFormat::Binary => write!(f, "bin"),
            JournalFormat::Jsonl => write!(f, "jsonl"),
        }
    }
}

/// How often the journal writer issues `fdatasync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never sync explicitly; rely on the OS page cache (fastest, weakest).
    None,
    /// Sync after every N appended records.
    EveryN(u32),
    /// Sync at most once per T milliseconds of appends.
    IntervalMs(u64),
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

impl FsyncPolicy {
    /// Parse a `--fsync` argument: `none`, `every-n=N`, or `interval-ms=T`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "none" {
            return Ok(FsyncPolicy::None);
        }
        if let Some(n) = s.strip_prefix("every-n=") {
            let n: u32 = n
                .parse()
                .map_err(|_| format!("bad record count in '--fsync {s}'"))?;
            if n == 0 {
                return Err("'--fsync every-n=N' requires N >= 1".into());
            }
            return Ok(FsyncPolicy::EveryN(n));
        }
        if let Some(t) = s.strip_prefix("interval-ms=") {
            let t: u64 = t
                .parse()
                .map_err(|_| format!("bad interval in '--fsync {s}'"))?;
            return Ok(FsyncPolicy::IntervalMs(t));
        }
        Err(format!(
            "unknown fsync policy '{s}' (expected none|every-n=N|interval-ms=T)"
        ))
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::None => write!(f, "none"),
            FsyncPolicy::EveryN(n) => write!(f, "every-n={n}"),
            FsyncPolicy::IntervalMs(t) => write!(f, "interval-ms={t}"),
        }
    }
}

// ---------------------------------------------------------------------------
// .seaj codec
// ---------------------------------------------------------------------------

/// Errors that make a `.seaj` file untrustworthy as a whole. Tail
/// corruption is *not* an error — [`scan`] reports it as a recoverable
/// torn tail instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeajError {
    /// The file does not start with the `SEAJRNL\x01` magic.
    NotSeaj,
    /// The container version is not [`SEAJ_VERSION`].
    Version(u32),
    /// The header blob is truncated or fails its CRC; without a trusted
    /// header the journal's identity cannot be established.
    CorruptHeader(&'static str),
}

impl fmt::Display for SeajError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeajError::NotSeaj => write!(f, "not a .seaj journal (bad magic)"),
            SeajError::Version(v) => {
                write!(
                    f,
                    "unsupported .seaj container version {v} (expected {SEAJ_VERSION})"
                )
            }
            SeajError::CorruptHeader(why) => write!(f, "corrupt .seaj header: {why}"),
        }
    }
}

impl std::error::Error for SeajError {}

/// Encode the file preamble: magic, container version, and the CRC-framed
/// header blob (the logical journal header line, without its newline).
pub fn encode_file_header(header: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEAJ_MAGIC.len() + 12 + header.len());
    out.extend_from_slice(&SEAJ_MAGIC);
    out.extend_from_slice(&SEAJ_VERSION.to_le_bytes());
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(header);
    out.extend_from_slice(&crc32(header).to_le_bytes());
    out
}

/// Encode one record: u32 payload length, u64 sequence number, payload,
/// CRC32 over `seq_le ‖ payload`.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let mut c = Crc32::new();
    c.update(&seq.to_le_bytes());
    c.update(payload);
    out.extend_from_slice(&c.finish().to_le_bytes());
    out
}

/// Result of CRC-walking a `.seaj` byte image.
#[derive(Clone, Debug)]
pub struct Scan<'a> {
    /// The header blob (CRC-verified).
    pub header: &'a [u8],
    /// Payloads of all valid records, in sequence order.
    pub records: Vec<&'a [u8]>,
    /// Byte length of the longest valid prefix (preamble + whole records).
    pub valid_len: usize,
    /// Bytes past `valid_len` — a torn or corrupt tail to truncate.
    pub torn_bytes: usize,
    /// Sequence number of the last valid record (0 if none).
    pub last_seq: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// CRC-walk a `.seaj` byte image. Header problems are hard errors; record
/// problems (truncation, bit flips, sequence gaps) end the walk and are
/// reported as a torn tail for the caller to truncate.
pub fn scan(bytes: &[u8]) -> Result<Scan<'_>, SeajError> {
    if bytes.len() < SEAJ_MAGIC.len() || bytes[..SEAJ_MAGIC.len()] != SEAJ_MAGIC {
        return Err(SeajError::NotSeaj);
    }
    if bytes.len() < SEAJ_MAGIC.len() + 8 {
        return Err(SeajError::CorruptHeader("truncated before header length"));
    }
    let version = read_u32(bytes, 8);
    if version != SEAJ_VERSION {
        return Err(SeajError::Version(version));
    }
    let header_len = read_u32(bytes, 12) as usize;
    let header_end = 16usize.saturating_add(header_len);
    if header_len > MAX_RECORD_LEN || bytes.len() < header_end + 4 {
        return Err(SeajError::CorruptHeader("truncated header blob"));
    }
    let header = &bytes[16..header_end];
    let want = read_u32(bytes, header_end);
    if crc32(header) != want {
        return Err(SeajError::CorruptHeader("header checksum mismatch"));
    }

    let mut off = header_end + 4;
    let mut records = Vec::new();
    let mut last_seq = 0u64;
    loop {
        if off == bytes.len() {
            break; // clean end
        }
        if bytes.len() - off < RECORD_OVERHEAD {
            break; // torn frame header
        }
        let len = read_u32(bytes, off) as usize;
        if len > MAX_RECORD_LEN {
            break; // implausible length: corrupt frame
        }
        let end = off + RECORD_OVERHEAD + len;
        if end > bytes.len() {
            break; // torn payload
        }
        let seq = read_u64(bytes, off + 4);
        let payload = &bytes[off + 12..off + 12 + len];
        let mut c = Crc32::new();
        c.update(&seq.to_le_bytes());
        c.update(payload);
        if c.finish() != read_u32(bytes, off + 12 + len) {
            break; // bit flip in frame
        }
        if seq != last_seq + 1 {
            break; // sequence gap: everything past here is untrustworthy
        }
        records.push(payload);
        last_seq = seq;
        off = end;
    }
    Ok(Scan {
        header,
        records,
        valid_len: off,
        torn_bytes: bytes.len() - off,
        last_seq,
    })
}

/// Losslessly export a `.seaj` byte image to JSONL: the header blob as the
/// first line, then each record payload as its own line. Byte-identical to
/// what a `--journal-format jsonl` run of the same campaign writes.
pub fn export_jsonl(bytes: &[u8]) -> Result<Vec<u8>, SeajError> {
    let scan = scan(bytes)?;
    let mut out = Vec::with_capacity(bytes.len());
    out.extend_from_slice(scan.header);
    out.push(b'\n');
    for payload in &scan.records {
        out.extend_from_slice(payload);
        out.push(b'\n');
    }
    Ok(out)
}

/// Length of the longest JSONL prefix ending in a newline. A crash
/// mid-append leaves a newline-less torn tail; truncating to this offset
/// restores a parseable file.
pub fn jsonl_tail_offset(bytes: &[u8]) -> usize {
    match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last_nl) => last_nl + 1,
        None => 0,
    }
}

/// Truncate `path` to `len` bytes, returning how many bytes were dropped.
pub fn truncate_file(path: &Path, len: u64) -> io::Result<u64> {
    let f = OpenOptions::new().write(true).open(path)?;
    let had = f.metadata()?.len();
    f.set_len(len)?;
    f.sync_data()?;
    Ok(had.saturating_sub(len))
}

// ---------------------------------------------------------------------------
// Multi-journal merge
// ---------------------------------------------------------------------------

/// Why a set of shard journals cannot be merged into one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No shard images were supplied.
    NoShards,
    /// A shard failed the container-level scan (bad magic, version, or
    /// corrupt header). The index is the shard's position in the input.
    Shard(usize, SeajError),
    /// A shard's header blob differs from shard 0's. Shards of one
    /// campaign share an identity header byte-for-byte; a mismatch means
    /// the inputs belong to different campaigns or configurations.
    HeaderMismatch {
        /// Index of the offending shard.
        shard: usize,
    },
    /// A record payload yielded no merge key.
    UnkeyedRecord {
        /// Index of the shard holding the unkeyed record.
        shard: usize,
        /// Sequence number of the record within that shard.
        seq: u64,
    },
    /// Two shards hold records with the same key but different payloads.
    /// Determinism guarantees duplicate work produces identical bytes, so
    /// a conflict means the shards disagree about an outcome.
    DuplicateConflict {
        /// The merge key both records claim.
        key: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard journals to merge"),
            MergeError::Shard(i, e) => write!(f, "shard {i}: {e}"),
            MergeError::HeaderMismatch { shard } => {
                write!(f, "shard {shard} header differs from shard 0")
            }
            MergeError::UnkeyedRecord { shard, seq } => {
                write!(f, "shard {shard} record seq {seq} has no merge key")
            }
            MergeError::DuplicateConflict { key } => {
                write!(f, "conflicting payloads for merge key {key}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Bookkeeping from a [`merge_journals`] pass, for audit tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeAudit {
    /// Number of shard images merged.
    pub shards: usize,
    /// Valid records read across all shards (before dedup).
    pub records_in: u64,
    /// Records dropped as byte-identical duplicates of an earlier key.
    pub duplicates: u64,
    /// Records in the merged output.
    pub merged: u64,
    /// Torn-tail bytes ignored across all shards.
    pub torn_bytes: u64,
}

/// Deterministically merge shard journals into one `.seaj` image that is
/// byte-identical to a single-process run of the same campaign.
///
/// Each shard is CRC-walked with [`scan`] (torn tails are tolerated and
/// ignored — only the valid prefix contributes records). All shards must
/// carry byte-identical header blobs; the merged image reuses that header
/// verbatim. `key_of` extracts each record's global position key (for
/// campaign journals, the `"i"` field of the payload). Records are
/// stable-sorted by key, byte-identical duplicates are dropped (work
/// stealing can legitimately run a block twice), conflicting duplicates
/// are an error, and the survivors are re-framed with sequence numbers
/// `1..=N` — exactly what a single process appending in key order writes.
pub fn merge_journals<F>(shards: &[&[u8]], key_of: F) -> Result<(Vec<u8>, MergeAudit), MergeError>
where
    F: Fn(&[u8]) -> Option<u64>,
{
    if shards.is_empty() {
        return Err(MergeError::NoShards);
    }
    let mut audit = MergeAudit {
        shards: shards.len(),
        ..MergeAudit::default()
    };
    let mut header: Option<&[u8]> = None;
    let mut keyed: Vec<(u64, &[u8])> = Vec::new();
    for (i, bytes) in shards.iter().enumerate() {
        let s = scan(bytes).map_err(|e| MergeError::Shard(i, e))?;
        match header {
            None => header = Some(s.header),
            Some(h) if h != s.header => return Err(MergeError::HeaderMismatch { shard: i }),
            Some(_) => {}
        }
        audit.torn_bytes += s.torn_bytes as u64;
        for (off, payload) in s.records.iter().enumerate() {
            let key = key_of(payload).ok_or(MergeError::UnkeyedRecord {
                shard: i,
                seq: off as u64 + 1,
            })?;
            keyed.push((key, payload));
            audit.records_in += 1;
        }
    }
    keyed.sort_by_key(|&(key, _)| key);

    let mut out = encode_file_header(header.unwrap_or(b""));
    let mut seq = 0u64;
    let mut last: Option<(u64, &[u8])> = None;
    for (key, payload) in keyed {
        if let Some((lk, lp)) = last {
            if lk == key {
                if lp != payload {
                    return Err(MergeError::DuplicateConflict { key });
                }
                audit.duplicates += 1;
                continue;
            }
        }
        seq += 1;
        out.extend_from_slice(&encode_record(seq, payload));
        last = Some((key, payload));
    }
    audit.merged = seq;
    Ok((out, audit))
}

// ---------------------------------------------------------------------------
// DurableWriter
// ---------------------------------------------------------------------------

/// Attempts per append before the writer declares itself poisoned.
pub const WRITE_ATTEMPTS: u32 = 3;

const BACKOFF_MS: [u64; 2] = [10, 50];

/// Write-side counters surfaced in the journal audit table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Explicit `fdatasync` calls issued by the policy.
    pub fsyncs: u64,
    /// Append attempts that failed and were retried (or gave up).
    pub retries: u64,
}

/// Append-only file writer with CRC-friendly fault handling: every append
/// either lands completely or the file is rolled back to its pre-append
/// length, so the on-disk prefix is always valid and resumable. Write
/// faults (disk-full, EIO) are retried [`WRITE_ATTEMPTS`] times with
/// bounded backoff; after that the writer is *poisoned* and refuses
/// further appends so the campaign can drain cleanly.
#[derive(Debug)]
pub struct DurableWriter {
    file: File,
    len: u64,
    policy: FsyncPolicy,
    since_sync: u32,
    last_sync: Option<Instant>,
    stats: WriterStats,
    poisoned: bool,
}

impl DurableWriter {
    /// Create (truncating) a fresh file at `path`.
    pub fn create(path: &Path, policy: FsyncPolicy) -> io::Result<Self> {
        Self::open_at(path, 0, policy)
    }

    /// Open `path` for appending after truncating it to `valid_len` —
    /// the torn-tail recovery entry point.
    pub fn open_at(path: &Path, valid_len: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(DurableWriter {
            file,
            len: valid_len,
            policy,
            since_sync: 0,
            last_sync: None,
            stats: WriterStats::default(),
            poisoned: false,
        })
    }

    /// Bytes known to be fully written.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once an append has exhausted its retries; the on-disk prefix
    /// up to [`len`](Self::len) is still valid and resumable.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Write-side counters.
    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// Append one framed record (or JSONL line). All-or-nothing: a partial
    /// write is rolled back with `set_len` before the retry so a failed
    /// attempt can never leave garbage between valid records.
    pub fn append(&mut self, rec: &[u8]) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal writer poisoned by earlier write fault",
            ));
        }
        let mut attempt = 0;
        loop {
            match self.file.write_all(rec) {
                Ok(()) => {
                    self.len += rec.len() as u64;
                    self.maybe_sync();
                    return Ok(());
                }
                Err(e) => {
                    self.stats.retries += 1;
                    // Roll back whatever partial bytes write_all managed.
                    let _ = self.file.set_len(self.len);
                    let _ = self.file.seek(SeekFrom::Start(self.len));
                    attempt += 1;
                    if attempt >= WRITE_ATTEMPTS {
                        self.poisoned = true;
                        let _ = self.file.sync_data();
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(
                        BACKOFF_MS[(attempt as usize - 1).min(BACKOFF_MS.len() - 1)],
                    ));
                }
            }
        }
    }

    fn maybe_sync(&mut self) {
        let due = match self.policy {
            FsyncPolicy::None => false,
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                self.since_sync >= n
            }
            FsyncPolicy::IntervalMs(t) => match self.last_sync {
                None => true,
                Some(at) => at.elapsed() >= Duration::from_millis(t),
            },
        };
        if due {
            self.sync();
        }
    }

    /// Force an `fdatasync` now (also resets the policy clock).
    pub fn sync(&mut self) {
        if self.file.sync_data().is_ok() {
            self.stats.fsyncs += 1;
        }
        self.since_sync = 0;
        self.last_sync = Some(Instant::now());
    }
}

impl Drop for DurableWriter {
    /// Panicking workers must not lose buffered records: make the tail
    /// durable on the way out, whatever the policy.
    fn drop(&mut self) {
        let _ = self.file.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_round_trips() {
        assert_eq!(FsyncPolicy::parse("none"), Ok(FsyncPolicy::None));
        assert_eq!(FsyncPolicy::parse("every-n=8"), Ok(FsyncPolicy::EveryN(8)));
        assert_eq!(
            FsyncPolicy::parse("interval-ms=250"),
            Ok(FsyncPolicy::IntervalMs(250))
        );
        assert!(FsyncPolicy::parse("every-n=0").is_err());
        assert!(FsyncPolicy::parse("always").is_err());
        for p in [
            FsyncPolicy::None,
            FsyncPolicy::EveryN(64),
            FsyncPolicy::IntervalMs(100),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Ok(p));
        }
    }

    #[test]
    fn journal_format_parses_and_round_trips() {
        assert_eq!(JournalFormat::parse("bin"), Ok(JournalFormat::Binary));
        assert_eq!(JournalFormat::parse("jsonl"), Ok(JournalFormat::Jsonl));
        assert!(JournalFormat::parse("xml").is_err());
        for f in [JournalFormat::Binary, JournalFormat::Jsonl] {
            assert_eq!(JournalFormat::parse(&f.to_string()), Ok(f));
        }
    }

    fn journal(header: &[u8], payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = encode_file_header(header);
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        bytes
    }

    #[test]
    fn scan_round_trips_a_clean_journal() {
        let bytes = journal(b"{\"h\":1}", &[b"alpha", b"", b"gamma"]);
        let s = scan(&bytes).unwrap();
        assert_eq!(s.header, b"{\"h\":1}");
        assert_eq!(s.records, vec![&b"alpha"[..], &b""[..], &b"gamma"[..]]);
        assert_eq!(s.valid_len, bytes.len());
        assert_eq!(s.torn_bytes, 0);
        assert_eq!(s.last_seq, 3);
    }

    #[test]
    fn scan_reports_a_torn_tail_at_every_cut_point() {
        let bytes = journal(b"hdr", &[b"one", b"two"]);
        let first_end = encode_file_header(b"hdr").len() + RECORD_OVERHEAD + 3;
        // Any cut strictly inside record 2 must recover exactly record 1.
        for cut in first_end + 1..bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            assert_eq!(s.records, vec![&b"one"[..]], "cut at {cut}");
            assert_eq!(s.valid_len, first_end, "cut at {cut}");
            assert_eq!(s.torn_bytes, cut - first_end, "cut at {cut}");
            assert_eq!(s.last_seq, 1);
        }
    }

    #[test]
    fn scan_stops_at_a_flipped_record_byte() {
        let mut bytes = journal(b"hdr", &[b"one", b"two", b"three"]);
        let preamble = encode_file_header(b"hdr").len();
        let second = preamble + RECORD_OVERHEAD + 3;
        bytes[second + 12] ^= 0x40; // flip a payload byte of record 2
        let s = scan(&bytes).unwrap();
        assert_eq!(s.records, vec![&b"one"[..]]);
        assert_eq!(s.valid_len, second);
        assert!(s.torn_bytes > 0);
    }

    #[test]
    fn scan_stops_at_a_sequence_gap() {
        let mut bytes = encode_file_header(b"hdr");
        bytes.extend_from_slice(&encode_record(1, b"one"));
        bytes.extend_from_slice(&encode_record(3, b"three")); // gap: 2 missing
        let s = scan(&bytes).unwrap();
        assert_eq!(s.records, vec![&b"one"[..]]);
        assert_eq!(s.last_seq, 1);
        assert!(s.torn_bytes > 0);
    }

    #[test]
    fn scan_error_taxonomy_is_distinct() {
        assert!(matches!(scan(b"garbage"), Err(SeajError::NotSeaj)));
        assert!(matches!(
            scan(&SEAJ_MAGIC[..]),
            Err(SeajError::CorruptHeader(_))
        ));

        let mut wrong_version = journal(b"hdr", &[]);
        wrong_version[8] = 99;
        assert!(matches!(scan(&wrong_version), Err(SeajError::Version(99))));

        let mut flipped_hdr = journal(b"header-blob", &[b"rec"]);
        flipped_hdr[17] ^= 0x01; // inside the header blob
        assert!(matches!(
            scan(&flipped_hdr),
            Err(SeajError::CorruptHeader(_))
        ));

        let truncated_hdr = &journal(b"header-blob", &[])[..18];
        assert!(matches!(
            scan(truncated_hdr),
            Err(SeajError::CorruptHeader(_))
        ));
    }

    #[test]
    fn export_matches_handwritten_jsonl() {
        let bytes = journal(b"{\"v\":2}", &[b"{\"i\":0}", b"{\"i\":1}"]);
        let jsonl = export_jsonl(&bytes).unwrap();
        assert_eq!(jsonl, b"{\"v\":2}\n{\"i\":0}\n{\"i\":1}\n");
    }

    #[test]
    fn jsonl_tail_offset_finds_last_complete_line() {
        assert_eq!(jsonl_tail_offset(b""), 0);
        assert_eq!(jsonl_tail_offset(b"no newline"), 0);
        assert_eq!(jsonl_tail_offset(b"a\nb\n"), 4);
        assert_eq!(jsonl_tail_offset(b"a\nb\ntorn"), 4);
    }

    fn key_ascii(payload: &[u8]) -> Option<u64> {
        std::str::from_utf8(payload).ok()?.parse().ok()
    }

    #[test]
    fn merge_of_disjoint_shards_matches_single_writer() {
        // A single process would write keys 0..6 in order.
        let single = journal(b"{\"h\":1}", &[b"0", b"1", b"2", b"3", b"4", b"5"]);
        // Two shards, interleaved blocks, each appended in local order.
        let a = journal(b"{\"h\":1}", &[b"0", b"1", b"4", b"5"]);
        let b = journal(b"{\"h\":1}", &[b"2", b"3"]);
        let (merged, audit) = merge_journals(&[&a, &b], key_ascii).unwrap();
        assert_eq!(merged, single);
        assert_eq!(audit.shards, 2);
        assert_eq!(audit.records_in, 6);
        assert_eq!(audit.duplicates, 0);
        assert_eq!(audit.merged, 6);
    }

    #[test]
    fn merge_drops_identical_duplicates_and_ignores_torn_tails() {
        let single = journal(b"hdr", &[b"0", b"1", b"2"]);
        // Work stealing re-ran key 1 on shard b; shard a also has a torn tail.
        let mut a = journal(b"hdr", &[b"0", b"1"]);
        a.extend_from_slice(&[0xFF; 5]); // torn frame
        let b = journal(b"hdr", &[b"1", b"2"]);
        let (merged, audit) = merge_journals(&[&a, &b], key_ascii).unwrap();
        assert_eq!(merged, single);
        assert_eq!(audit.duplicates, 1);
        assert_eq!(audit.merged, 3);
        assert_eq!(audit.torn_bytes, 5);
    }

    #[test]
    fn merge_rejects_mismatched_identities_and_conflicts() {
        let a = journal(b"hdr-a", &[b"0"]);
        let b = journal(b"hdr-b", &[b"1"]);
        assert_eq!(
            merge_journals(&[&a, &b], key_ascii).unwrap_err(),
            MergeError::HeaderMismatch { shard: 1 }
        );

        // Same key, different payload bytes: a determinism violation.
        let c = journal(b"hdr", &[b"07"]); // key 7, payload "07"
        let d = journal(b"hdr", &[b"7"]); // key 7, payload "7"
        assert_eq!(
            merge_journals(&[&c, &d], key_ascii).unwrap_err(),
            MergeError::DuplicateConflict { key: 7 }
        );

        let e = journal(b"hdr", &[b"not-a-key"]);
        assert_eq!(
            merge_journals(&[&e], key_ascii).unwrap_err(),
            MergeError::UnkeyedRecord { shard: 0, seq: 1 }
        );

        assert_eq!(
            merge_journals(&[], key_ascii).unwrap_err(),
            MergeError::NoShards
        );
    }

    proptest! {
        #[test]
        fn merge_is_shard_assignment_invariant(
            n in 1usize..40,
            assign in proptest::collection::vec(0usize..4, 40),
            order_seed in any::<u64>(),
        ) {
            // Keys 0..n assigned arbitrarily to 4 shards; within a shard a
            // worker appends its claims in the order it received them, which
            // is always key-ascending per shard block here — but shuffle
            // which shard gets which key freely. The merge must reproduce
            // the canonical single-writer image regardless.
            let payloads: Vec<String> = (0..n).map(|k| k.to_string()).collect();
            let canon_refs: Vec<&[u8]> =
                payloads.iter().map(|p| p.as_bytes()).collect();
            let single = journal(b"id", &canon_refs);

            let mut shard_payloads: Vec<Vec<&[u8]>> = vec![Vec::new(); 4];
            for (k, p) in payloads.iter().enumerate() {
                shard_payloads[assign[k]].push(p.as_bytes());
                // Sometimes a second shard repeats the same record (steal).
                if order_seed.rotate_left(k as u32) & 1 == 1 {
                    shard_payloads[(assign[k] + 1) % 4].push(p.as_bytes());
                }
            }
            let shards: Vec<Vec<u8>> = shard_payloads
                .iter()
                .map(|ps| journal(b"id", ps))
                .collect();
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            let (merged, audit) = merge_journals(&refs, key_ascii).unwrap();
            prop_assert_eq!(merged, single);
            prop_assert_eq!(audit.merged, n as u64);
        }
    }

    #[test]
    fn durable_writer_appends_and_reopens_at_valid_len() {
        let dir = std::env::temp_dir().join(format!("sea-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.seaj");
        let hdr = encode_file_header(b"h");
        {
            let mut w = DurableWriter::create(&path, FsyncPolicy::EveryN(2)).unwrap();
            w.append(&hdr).unwrap();
            w.append(&encode_record(1, b"one")).unwrap();
            w.append(&encode_record(2, b"two")).unwrap();
            assert!(w.stats().fsyncs >= 1);
        }
        // Simulate a torn tail, then recover through open_at.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let torn = std::fs::read(&path).unwrap();
        let s = scan(&torn).unwrap();
        assert_eq!(s.last_seq, 1);
        {
            let mut w =
                DurableWriter::open_at(&path, s.valid_len as u64, FsyncPolicy::None).unwrap();
            w.append(&encode_record(2, b"two")).unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), full);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_writer_poisons_after_bounded_retries() {
        // /dev/full returns ENOSPC on write — the canonical disk-full fake.
        let dev_full = Path::new("/dev/full");
        if !dev_full.exists() {
            return;
        }
        let file = OpenOptions::new().write(true).open(dev_full).unwrap();
        let mut w = DurableWriter {
            file,
            len: 0,
            policy: FsyncPolicy::None,
            since_sync: 0,
            last_sync: None,
            stats: WriterStats::default(),
            poisoned: false,
        };
        let err = w.append(b"doomed").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(w.poisoned());
        assert_eq!(w.stats().retries, WRITE_ATTEMPTS as u64);
        assert!(w.append(b"more").is_err());
        assert_eq!(w.len(), 0, "poisoned writer still reports a valid prefix");
    }

    proptest! {
        #[test]
        fn record_codec_round_trips(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..200), 0..20),
            header in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let bytes = journal(&header, &refs);
            let s = scan(&bytes).unwrap();
            prop_assert_eq!(s.header, header.as_slice());
            prop_assert_eq!(s.records, refs);
            prop_assert_eq!(s.valid_len, bytes.len());
            prop_assert_eq!(s.torn_bytes, 0);
            prop_assert_eq!(s.last_seq, payloads.len() as u64);
        }

        #[test]
        fn any_truncation_recovers_a_valid_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..12),
            cut_frac in 0.0f64..1.0,
        ) {
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let bytes = journal(b"hdr", &refs);
            let preamble = encode_file_header(b"hdr").len();
            // Cut anywhere in the record region.
            let cut = preamble
                + ((bytes.len() - preamble) as f64 * cut_frac) as usize;
            let s = scan(&bytes[..cut]).unwrap();
            // Valid prefix scans clean and is a prefix of the original.
            prop_assert!(s.valid_len <= cut);
            let again = scan(&bytes[..s.valid_len]).unwrap();
            prop_assert_eq!(again.torn_bytes, 0);
            prop_assert_eq!(again.last_seq, s.last_seq);
            prop_assert_eq!(s.records.len() as u64, s.last_seq);
        }
    }
}

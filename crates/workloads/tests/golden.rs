//! Golden cross-validation: every guest benchmark, run fault-free on the
//! full simulated stack (caches + MMU + kernel + board), must produce
//! exactly the output of its host-side Rust reference.

use sea_microarch::MachineConfig;
use sea_platform::golden_run;
use sea_workloads::{build_l1_probe, L1ProbeParams, Scale, Workload};

fn check(w: Workload, scale: Scale, budget: u64) {
    let built = w.build(scale);
    let g = golden_run(
        MachineConfig::cortex_a9(),
        &built.image,
        &sea_kernel::KernelConfig::default(),
        budget,
    )
    .unwrap_or_else(|e| panic!("{w}: golden run failed: {e}"));
    assert_eq!(
        g.output, built.golden,
        "{w}: guest output differs from the host reference"
    );
    assert!(g.cycles > 1000, "{w}: suspiciously short run");
}

#[test]
fn crc32_tiny_matches_reference() {
    check(Workload::Crc32, Scale::Tiny, 10_000_000);
}

#[test]
fn dijkstra_tiny_matches_reference() {
    check(Workload::Dijkstra, Scale::Tiny, 10_000_000);
}

#[test]
fn fft_tiny_matches_reference() {
    check(Workload::Fft, Scale::Tiny, 10_000_000);
}

#[test]
fn jpeg_encode_tiny_matches_reference() {
    check(Workload::JpegC, Scale::Tiny, 20_000_000);
}

#[test]
fn jpeg_decode_tiny_matches_reference() {
    check(Workload::JpegD, Scale::Tiny, 20_000_000);
}

#[test]
fn matmul_tiny_matches_reference() {
    check(Workload::MatMul, Scale::Tiny, 10_000_000);
}

#[test]
fn qsort_tiny_matches_reference() {
    check(Workload::Qsort, Scale::Tiny, 10_000_000);
}

#[test]
fn rijndael_encrypt_tiny_matches_reference() {
    check(Workload::RijndaelE, Scale::Tiny, 20_000_000);
}

#[test]
fn rijndael_decrypt_tiny_matches_reference() {
    check(Workload::RijndaelD, Scale::Tiny, 20_000_000);
}

#[test]
fn stringsearch_tiny_matches_reference() {
    check(Workload::StringSearch, Scale::Tiny, 10_000_000);
}

#[test]
fn susan_corners_tiny_matches_reference() {
    check(Workload::SusanC, Scale::Tiny, 20_000_000);
}

#[test]
fn susan_edges_tiny_matches_reference() {
    check(Workload::SusanE, Scale::Tiny, 20_000_000);
}

#[test]
fn susan_smoothing_tiny_matches_reference() {
    check(Workload::SusanS, Scale::Tiny, 20_000_000);
}

#[test]
fn l1_probe_reports_zero_upsets_fault_free() {
    let built = build_l1_probe(L1ProbeParams {
        buf_bytes: 4096,
        sweeps: 2,
        dwell_iters: 500,
    });
    let g = golden_run(
        MachineConfig::cortex_a9(),
        &built.image,
        &sea_kernel::KernelConfig::default(),
        20_000_000,
    )
    .unwrap();
    assert_eq!(g.output, built.golden);
}

/// Default-scale golden runs: slower, so gathered into one test that also
/// records per-benchmark cycle counts stay within the campaign envelope.
#[test]
fn all_defaults_match_reference_within_cycle_budget() {
    for w in Workload::ALL {
        let built = w.build(Scale::Default);
        let g = golden_run(
            MachineConfig::cortex_a9(),
            &built.image,
            &sea_kernel::KernelConfig::default(),
            80_000_000,
        )
        .unwrap_or_else(|e| panic!("{w}: golden run failed: {e}"));
        assert_eq!(g.output, built.golden, "{w}: default-scale output mismatch");
        assert!(
            g.cycles < 40_000_000,
            "{w}: {} cycles exceeds the campaign envelope",
            g.cycles
        );
    }
}

/// The campaign profiles run the uniformly scaled machine; golden outputs
/// are architectural and must be identical under it.
#[test]
fn scaled_machine_preserves_golden_outputs() {
    for w in [
        Workload::Crc32,
        Workload::Fft,
        Workload::SusanC,
        Workload::Qsort,
    ] {
        let built = w.build(Scale::Tiny);
        let g = golden_run(
            MachineConfig::cortex_a9_scaled(),
            &built.image,
            &sea_kernel::KernelConfig::default(),
            80_000_000,
        )
        .unwrap_or_else(|e| panic!("{w}: {e}"));
        assert_eq!(
            g.output, built.golden,
            "{w}: scaled-machine output mismatch"
        );
    }
}

//! Property tests over the host-side reference implementations — the
//! "oracle half" of every benchmark must itself be correct.

use proptest::prelude::*;
use sea_workloads::bench::{crc32, dijkstra, jpeg, qsort, rijndael, stringsearch, susan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The iterative quicksort agrees with the standard library sort.
    #[test]
    fn qsort_matches_std_sort(mut data in prop::collection::vec(any::<u32>(), 0..500)) {
        let ours = qsort::reference(&data);
        data.sort_unstable();
        prop_assert_eq!(ours, data);
    }

    /// AES: decrypt ∘ encrypt = identity on any 16-aligned buffer.
    #[test]
    fn aes_roundtrip(blocks in prop::collection::vec(any::<[u8; 16]>(), 1..16)) {
        let data: Vec<u8> = blocks.concat();
        let ct = rijndael::reference_encrypt(&data);
        prop_assert_eq!(rijndael::reference_decrypt(&ct), data.clone());
        // ECB determinism: same plaintext block → same ciphertext block.
        if blocks.len() >= 2 && blocks[0] == blocks[1] {
            prop_assert_eq!(&ct[0..16], &ct[16..32]);
        }
    }

    /// CRC32 is sensitive to any single-bit change.
    #[test]
    fn crc_detects_single_bitflips(
        data in prop::collection::vec(any::<u8>(), 1..200),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut mutated = data.clone();
        let i = byte.index(mutated.len());
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(crc32::reference(&data), crc32::reference(&mutated));
    }

    /// JPEG codec: decoding the encoded stream reconstructs to within the
    /// quantization error bound for any image.
    #[test]
    fn jpeg_reconstruction_bounded(seed in any::<u32>()) {
        let n = 16;
        let img = sea_workloads::input::test_image(n, n, seed);
        let stream = jpeg::reference_encode(&img, n);
        let back = jpeg::reference_decode(&stream, n);
        prop_assert_eq!(back.len(), img.len());
        let max_err = img
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        // Coarse quantization (q up to 121) bounds the worst pixel error.
        prop_assert!(max_err < 96, "max pixel error {max_err}");
    }

    /// Dijkstra distances satisfy the relaxation property: for every edge
    /// (u, v), dist[v] <= dist[u] + w(u, v).
    #[test]
    fn dijkstra_satisfies_relaxation(_x in 0..1i32) {
        let n = 8;
        let adj = dijkstra::adjacency(n);
        let d = dijkstra::reference(&adj, n);
        const INF: u32 = 0x3FFF_FFFF;
        for s in 0..n {
            for u in 0..n {
                if d[s * n + u] >= INF {
                    continue;
                }
                for v in 0..n {
                    let w = adj[u * n + v];
                    if w != INF {
                        prop_assert!(
                            d[s * n + v] <= d[s * n + u].saturating_add(w),
                            "relaxation violated {s}->{u}->{v}"
                        );
                    }
                }
            }
        }
    }

    /// BMH search result, when found, really is the first occurrence.
    #[test]
    fn stringsearch_results_are_first_occurrences(_x in 0..1i32) {
        let n = 12;
        let (sents, words) = stringsearch::generate(n);
        let found = stringsearch::reference(&sents, &words, n);
        for i in 0..n {
            let s = &sents[i * 64..(i + 1) * 64];
            let wlen = words[i * 12] as usize;
            let w = &words[i * 12 + 1..i * 12 + 1 + wlen];
            let naive = (0..=s.len().saturating_sub(wlen))
                .find(|&p| &s[p..p + wlen] == w)
                .map(|p| p as u32)
                .unwrap_or(u32::MAX);
            prop_assert_eq!(found[i], naive, "pair {}", i);
        }
    }

    /// SUSAN smoothing never inverts contrast wildly: the output stays
    /// within the input's min..=max range.
    #[test]
    fn susan_smoothing_stays_in_range(seed in any::<u32>()) {
        let (w, h) = (16, 16);
        let img = sea_workloads::input::test_image(w, h, seed);
        let out = susan::reference(&img, w, h, susan::Variant::Smoothing);
        let (lo, hi) = (
            *img.iter().min().unwrap(),
            *img.iter().max().unwrap(),
        );
        for (i, &p) in out.iter().enumerate() {
            prop_assert!(p >= lo && p <= hi, "pixel {i}: {p} outside [{lo}, {hi}]");
        }
    }
}

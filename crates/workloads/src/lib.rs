//! # sea-workloads — the paper's 13 MiBench-class benchmarks as guest programs
//!
//! Each benchmark from Table III of the paper is implemented twice: once as
//! an AR32 guest program (built with the `sea-isa` assembler, run on Linux-
//! lite via the syscall ABI) and once as a host-side Rust reference whose
//! output the guest must reproduce byte-for-byte. The reference closes the
//! loop: a fault-free simulated run must equal the reference, which the
//! golden-output tests verify for every benchmark.
//!
//! Inputs are deterministic ([`input`]) and scaled with the cache
//! configuration (see DESIGN.md §1): the *relative* footprint ordering of
//! the paper is preserved — Susan/StringSearch/MatMul/Dijkstra small,
//! CRC32/Rijndael/FFT/Jpeg/Qsort large.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod input;
pub mod runtime;

pub mod bench;
mod meta;

use sea_isa::Image;

pub use bench::l1probe::{build_l1_probe, L1ProbeParams};
pub use meta::{input_bytes, WorkloadMeta, FOOTPRINT_LARGE, FOOTPRINT_SMALL};

/// Input scaling preset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Campaign-sized inputs (default; hundreds of thousands to a few
    /// million simulated instructions per run).
    Default,
    /// Very small inputs for fast unit tests and smoke campaigns.
    Tiny,
}

/// A built guest benchmark: the loadable image plus the golden output the
/// board must observe on a fault-free run.
#[derive(Clone, Debug)]
pub struct BuiltWorkload {
    /// The guest program.
    pub image: Image,
    /// Expected `write()` output (digest + sample prefix; see
    /// [`runtime::expected_output`]).
    pub golden: Vec<u8>,
}

/// The 13 benchmarks of the paper's Table III.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
pub enum Workload {
    Crc32,
    Dijkstra,
    Fft,
    JpegC,
    JpegD,
    MatMul,
    Qsort,
    RijndaelE,
    RijndaelD,
    StringSearch,
    SusanC,
    SusanE,
    SusanS,
}

impl Workload {
    /// All benchmarks, in the paper's reporting order.
    pub const ALL: [Workload; 13] = [
        Workload::Crc32,
        Workload::Dijkstra,
        Workload::Fft,
        Workload::JpegC,
        Workload::JpegD,
        Workload::MatMul,
        Workload::Qsort,
        Workload::RijndaelE,
        Workload::RijndaelD,
        Workload::StringSearch,
        Workload::SusanC,
        Workload::SusanE,
        Workload::SusanS,
    ];

    /// The benchmark's display name (paper spelling).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Crc32 => "CRC32",
            Workload::Dijkstra => "Dijkstra",
            Workload::Fft => "FFT",
            Workload::JpegC => "Jpeg C",
            Workload::JpegD => "Jpeg D",
            Workload::MatMul => "MatMul",
            Workload::Qsort => "Qsort",
            Workload::RijndaelE => "Rijndael E",
            Workload::RijndaelD => "Rijndael D",
            Workload::StringSearch => "StringSearch",
            Workload::SusanC => "Susan C",
            Workload::SusanE => "Susan E",
            Workload::SusanS => "Susan S",
        }
    }

    /// Table III metadata.
    pub fn meta(self) -> WorkloadMeta {
        meta::meta(self)
    }

    /// Builds the guest image and golden output at the given scale.
    pub fn build(self, scale: Scale) -> BuiltWorkload {
        match self {
            Workload::Crc32 => bench::crc32::build(scale),
            Workload::Dijkstra => bench::dijkstra::build(scale),
            Workload::Fft => bench::fft::build(scale),
            Workload::JpegC => bench::jpeg::build_encode(scale),
            Workload::JpegD => bench::jpeg::build_decode(scale),
            Workload::MatMul => bench::matmul::build(scale),
            Workload::Qsort => bench::qsort::build(scale),
            Workload::RijndaelE => bench::rijndael::build_encrypt(scale),
            Workload::RijndaelD => bench::rijndael::build_decrypt(scale),
            Workload::StringSearch => bench::stringsearch::build(scale),
            Workload::SusanC => bench::susan::build(scale, bench::susan::Variant::Corners),
            Workload::SusanE => bench::susan::build(scale, bench::susan::Variant::Edges),
            Workload::SusanS => bench::susan::build(scale, bench::susan::Variant::Smoothing),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

//! Shared guest-side runtime: result hashing and the common epilogue.
//!
//! Every benchmark finishes the same way the paper's beam binaries do: an
//! on-line check routine condenses the result buffer into a digest, then a
//! short prefix of raw results plus the digest is shipped out through
//! `write()` and the program exits. The check routine itself is guest code
//! resident in the caches — the paper's §VI discussion of SDC-check
//! routines applies to it directly.

use sea_isa::{Asm, Cond, Label, Reg, Section};
use sea_kernel::user;

/// How many raw result bytes are shipped alongside the digest.
pub const SAMPLE_BYTES: u32 = 256;

/// FNV-1a offset basis.
pub const FNV_OFFSET: u32 = 0x811C_9DC5;
/// FNV-1a prime.
pub const FNV_PRIME: u32 = 16_777_619;

/// Host-side FNV-1a over a byte slice (the reference half of the on-line
/// check routine).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Builds the expected output bytes for a result buffer: FNV digest (LE)
/// followed by the first [`SAMPLE_BYTES`] bytes of the results.
pub fn expected_output(result: &[u8]) -> Vec<u8> {
    let mut out = fnv1a(result).to_le_bytes().to_vec();
    out.extend_from_slice(&result[..result.len().min(SAMPLE_BYTES as usize)]);
    out
}

/// Emits the standard epilogue: hash `result_len` bytes at `result`,
/// store the digest + a [`SAMPLE_BYTES`] prefix into a fresh output
/// buffer, `write()` it, send a final `alive()`, and `exit(0)`.
///
/// The FNV routine body is emitted after the (non-returning) exit path,
/// so the program simply ends at this call.
pub fn emit_finish(a: &mut Asm, result: Label, result_len: u32) {
    let out = a.label("out_buf");
    let fnv = a.label("fnv_fn");
    // Hash the results.
    a.addr(Reg::R0, result);
    a.mov32(Reg::R1, result_len);
    a.bl(fnv);
    // out[0..4] = digest.
    a.addr(Reg::R4, out);
    a.str(Reg::R0, Reg::R4, 0);
    // Copy the sample prefix.
    let n = result_len.min(SAMPLE_BYTES);
    let cp = a.label("finish_copy");
    a.addr(Reg::R1, result);
    a.add_imm(Reg::R2, Reg::R4, 4);
    a.mov32(Reg::R3, n);
    let skip = a.label("finish_skip");
    a.cmp_imm(Reg::R3, 0);
    a.b_if(Cond::Eq, skip);
    a.bind(cp).unwrap();
    a.ldrb_post(Reg::R0, Reg::R1, 1);
    a.strb_post(Reg::R0, Reg::R2, 1);
    a.subs_imm(Reg::R3, Reg::R3, 1);
    a.b_if(Cond::Ne, cp);
    a.bind(skip).unwrap();
    user::alive(a);
    a.addr(Reg::R0, out);
    a.mov32(Reg::R1, 4 + n);
    user::write(a);
    user::exit_with(a, 0);
    // The FNV body sits after the exit path, which never falls through.
    emit_fnv_fn_at(a, fnv);
    // Output buffer lives in .bss.
    a.section(Section::Bss);
    a.bind(out).unwrap();
    a.zero(4 + SAMPLE_BYTES);
    a.section(Section::Text);
}

/// Emits the FNV-1a routine body bound to a caller-provided label.
fn emit_fnv_fn_at(a: &mut Asm, f: Label) {
    let lp = a.label("fnv_loop");
    let done = a.label("fnv_done");
    a.bind(f).unwrap();
    a.mov32(Reg::R2, FNV_OFFSET);
    a.mov32(Reg::R12, FNV_PRIME);
    a.cmp_imm(Reg::R1, 0);
    a.b_if(Cond::Eq, done);
    a.bind(lp).unwrap();
    a.ldrb_post(Reg::R3, Reg::R0, 1);
    a.eor(Reg::R2, Reg::R2, Reg::R3);
    a.mul(Reg::R2, Reg::R2, Reg::R12);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
    a.bind(done).unwrap();
    a.mov(Reg::R0, Reg::R2);
    a.bx(Reg::Lr);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Known FNV-1a values.
        assert_eq!(fnv1a(b""), 0x811C_9DC5);
        assert_eq!(fnv1a(b"a"), 0xE40C_292C);
        assert_eq!(fnv1a(b"foobar"), 0xBF9C_F968);
    }

    #[test]
    fn expected_output_truncates_sample() {
        let data = vec![7u8; 1000];
        let out = expected_output(&data);
        assert_eq!(out.len(), 4 + SAMPLE_BYTES as usize);
        let short = expected_output(&[1, 2, 3]);
        assert_eq!(short.len(), 7);
    }
}

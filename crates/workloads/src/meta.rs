//! Table III metadata: inputs and computational characteristics.

use crate::{Scale, Workload};

/// Footprint class marker: small inputs that fit in the cache hierarchy
/// (the paper's Dijkstra/MatMul/StringSearch/Susan group, §V-A).
pub const FOOTPRINT_SMALL: &str = "small";
/// Footprint class marker: large inputs that pressure the hierarchy.
pub const FOOTPRINT_LARGE: &str = "large";

/// One row of Table III.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkloadMeta {
    /// Paper's INPUT column.
    pub paper_input: &'static str,
    /// This repo's scaled input (Default scale).
    pub scaled_input: &'static str,
    /// Paper's CHARACTERISTICS column.
    pub characteristics: &'static str,
    /// Footprint class ([`FOOTPRINT_SMALL`] / [`FOOTPRINT_LARGE`]),
    /// driving the kernel-cache-residency analysis.
    pub footprint: &'static str,
}

pub(crate) fn meta(w: Workload) -> WorkloadMeta {
    match w {
        Workload::Crc32 => WorkloadMeta {
            paper_input: "26.6 MB file",
            scaled_input: "96 KB byte stream",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::Dijkstra => WorkloadMeta {
            paper_input: "100x100 integer adjacency matrix",
            scaled_input: "24x24 integer adjacency matrix, 24 paths",
            characteristics: "Control intensive, memory intensive",
            footprint: FOOTPRINT_SMALL,
        },
        Workload::Fft => WorkloadMeta {
            paper_input: "32768-element floating point array",
            scaled_input: "1024-point complex float array",
            characteristics: "Memory intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::JpegC => WorkloadMeta {
            paper_input: "512x512 PPM image (786.5 KB)",
            scaled_input: "48x48 grayscale image",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::JpegD => WorkloadMeta {
            paper_input: "512x512 JPEG image",
            scaled_input: "encoded 48x48 stream",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::MatMul => WorkloadMeta {
            paper_input: "128x128 single-precision float",
            scaled_input: "24x24 single-precision float",
            characteristics: "Memory intensive",
            footprint: FOOTPRINT_SMALL,
        },
        Workload::Qsort => WorkloadMeta {
            paper_input: "list of 50K doubles",
            scaled_input: "list of 12K words",
            characteristics: "Memory intensive and control intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::RijndaelE => WorkloadMeta {
            paper_input: "3.2 MB file",
            scaled_input: "40 KB file (AES-128 encrypt)",
            characteristics: "Memory intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::RijndaelD => WorkloadMeta {
            paper_input: "3.2 MB file",
            scaled_input: "40 KB ciphertext (AES-128 decrypt)",
            characteristics: "Memory intensive",
            footprint: FOOTPRINT_LARGE,
        },
        Workload::StringSearch => WorkloadMeta {
            paper_input: "1332 words in 1332 sentences",
            scaled_input: "160 words in 160 sentences",
            characteristics: "Memory intensive and control intensive",
            footprint: FOOTPRINT_SMALL,
        },
        Workload::SusanC => WorkloadMeta {
            paper_input: "76x95 pixels, 7.3 KB",
            scaled_input: "40x48 pixels, ~1.9 KB",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_SMALL,
        },
        Workload::SusanE => WorkloadMeta {
            paper_input: "76x95 pixels, 7.3 KB",
            scaled_input: "40x48 pixels, ~1.9 KB",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_SMALL,
        },
        Workload::SusanS => WorkloadMeta {
            paper_input: "76x95 pixels, 7.3 KB",
            scaled_input: "40x48 pixels, ~1.9 KB",
            characteristics: "CPU intensive",
            footprint: FOOTPRINT_SMALL,
        },
    }
}

/// Rough input-bytes estimate for the footprint analysis (Default scale).
pub fn input_bytes(w: Workload, scale: Scale) -> u32 {
    let default = match w {
        Workload::Crc32 => 96 * 1024,
        Workload::Dijkstra => 24 * 24 * 4,
        Workload::Fft => 1024 * 8,
        Workload::JpegC => 48 * 48,
        Workload::JpegD => 2 * 1024,
        Workload::MatMul => 2 * 24 * 24 * 4,
        Workload::Qsort => 12 * 1024 * 4,
        Workload::RijndaelE | Workload::RijndaelD => 40 * 1024,
        Workload::StringSearch => 160 * 64,
        Workload::SusanC | Workload::SusanE | Workload::SusanS => 40 * 48,
    };
    match scale {
        Scale::Default => default,
        Scale::Tiny => (default / 16).max(64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_footprint_set_matches_paper() {
        // §V-A: Dijkstra, MatMul, StringSearch and the Susans have the
        // smallest inputs.
        let small: Vec<_> = Workload::ALL
            .iter()
            .filter(|w| w.meta().footprint == FOOTPRINT_SMALL)
            .collect();
        assert_eq!(small.len(), 6);
        for w in [Workload::Dijkstra, Workload::MatMul, Workload::StringSearch] {
            assert_eq!(w.meta().footprint, FOOTPRINT_SMALL, "{w}");
        }
    }

    #[test]
    fn every_workload_has_metadata() {
        for w in Workload::ALL {
            let m = w.meta();
            assert!(!m.paper_input.is_empty());
            assert!(!m.characteristics.is_empty());
            assert!(input_bytes(w, Scale::Default) > input_bytes(w, Scale::Tiny));
        }
    }
}

//! Dijkstra — all-pairs shortest paths over an adjacency matrix (paper:
//! 100×100 matrix, 100 paths; scaled to 24×24, 24 sources). Like MiBench's
//! version it uses the O(V²) scan-for-minimum formulation, making it
//! control- and memory-intensive with a small footprint.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::XorShift32;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0xD1D5_0001;
const INF: u32 = 0x3FFF_FFFF;

fn nodes(scale: Scale) -> usize {
    match scale {
        Scale::Default => 24,
        Scale::Tiny => 8,
    }
}

/// Generates the adjacency matrix: weights 1..=100, ~25% of edges absent
/// (INF), zero diagonal.
pub fn adjacency(n: usize) -> Vec<u32> {
    let mut rng = XorShift32::new(SEED);
    let mut m = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = if i == j {
                0
            } else if rng.below(4) == 0 {
                INF
            } else {
                1 + rng.below(100)
            };
        }
    }
    m
}

/// Host-side reference: O(V²) Dijkstra from every source, distances
/// concatenated.
pub fn reference(adj: &[u32], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n * n);
    for src in 0..n {
        let mut dist = vec![INF; n];
        let mut visited = vec![false; n];
        dist[src] = 0;
        for _ in 0..n {
            // Find the unvisited node with the smallest distance.
            let mut best = INF;
            let mut u = n;
            for v in 0..n {
                if !visited[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == n {
                break;
            }
            visited[u] = true;
            for v in 0..n {
                let w = adj[u * n + v];
                if w != INF {
                    let nd = dist[u].saturating_add(w);
                    if nd < dist[v] {
                        dist[v] = nd;
                    }
                }
            }
        }
        out.extend_from_slice(&dist);
    }
    out
}

/// Builds the guest program and golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = nodes(scale);
    let adj = adjacency(n);
    let dists = reference(&adj, n);
    let result: Vec<u8> = dists.iter().flat_map(|w| w.to_le_bytes()).collect();
    let n32 = n as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let ladj = a.label("adj");
    let lout = a.label("dist_out");
    let ldist = a.label("dist");
    let lvis = a.label("visited");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r8 = adj, r9 = out cursor, r10 = dist, r11 = visited, r12 = n (careful:
    // r12 is clobbered by the finish epilogue only, which runs after).
    a.addr(Reg::R8, ladj);
    a.addr(Reg::R9, lout);
    a.addr(Reg::R10, ldist);
    a.addr(Reg::R11, lvis);

    let src_loop = a.label("src_loop");
    let init_loop = a.label("init_loop");
    let iter_loop = a.label("iter_loop");
    let scan_loop = a.label("scan_loop");
    let scan_next = a.label("scan_next");
    let relax_loop = a.label("relax_loop");
    let relax_next = a.label("relax_next");
    let copy_loop = a.label("copy_loop");
    let iter_done = a.label("iter_done");
    let src_next = a.label("src_next");

    // r4 = src
    a.mov_imm(Reg::R4, 0);
    a.bind(src_loop).unwrap();
    // init dist[v] = INF, visited[v] = 0; dist[src] = 0.
    a.mov_imm(Reg::R0, 0);
    a.mov32(Reg::R1, INF);
    a.bind(init_loop).unwrap();
    a.str_idx(Reg::R1, Reg::R10, Reg::R0, 2);
    a.mov_imm(Reg::R2, 0);
    a.strb_idx(Reg::R2, Reg::R11, Reg::R0);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, n32);
    a.b_if(Cond::Ne, init_loop);
    a.mov_imm(Reg::R0, 0);
    a.str_idx(Reg::R0, Reg::R10, Reg::R4, 2);

    // r5 = iteration counter
    a.mov_imm(Reg::R5, 0);
    a.bind(iter_loop).unwrap();
    // scan for unvisited minimum: r6 = best dist, r7... r7 is the syscall
    // register but no syscalls happen inside; still avoid it. Use r2 = u,
    // r6 = best, r0 = v, r1/r3 scratch.
    a.mov32(Reg::R6, INF);
    a.mov32(Reg::R2, n32); // u = n (none)
    a.mov_imm(Reg::R0, 0);
    a.bind(scan_loop).unwrap();
    a.ldrb_idx(Reg::R1, Reg::R11, Reg::R0);
    a.cmp_imm(Reg::R1, 0);
    a.b_if(Cond::Ne, scan_next);
    a.ldr_idx(Reg::R3, Reg::R10, Reg::R0, 2);
    a.cmp(Reg::R3, Reg::R6);
    // Strictly smaller → new minimum; both conditional moves run under the
    // same flags (neither sets them).
    a.ifc(Cond::Cc).mov(Reg::R6, Reg::R3);
    a.ifc(Cond::Cc).mov(Reg::R2, Reg::R0);
    a.bind(scan_next).unwrap();
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, n32);
    a.b_if(Cond::Ne, scan_loop);
    // if u == n: done
    a.cmp_imm(Reg::R2, n32);
    a.b_if(Cond::Eq, iter_done);
    // visited[u] = 1
    a.mov_imm(Reg::R0, 1);
    a.strb_idx(Reg::R0, Reg::R11, Reg::R2);
    // relax neighbors: base r3 = adj + u*n*4
    a.mov32(Reg::R0, n32);
    a.mul(Reg::R3, Reg::R2, Reg::R0);
    a.lsl(Reg::R3, Reg::R3, 2);
    a.add(Reg::R3, Reg::R8, Reg::R3);
    // r6 = dist[u]
    a.ldr_idx(Reg::R6, Reg::R10, Reg::R2, 2);
    a.mov_imm(Reg::R0, 0); // v
    a.bind(relax_loop).unwrap();
    a.ldr_idx(Reg::R1, Reg::R3, Reg::R0, 2); // w = adj[u][v]
    a.mov32(Reg::R12, INF);
    a.cmp(Reg::R1, Reg::R12);
    a.b_if(Cond::Eq, relax_next);
    a.add(Reg::R1, Reg::R6, Reg::R1); // nd = dist[u] + w (no overflow: INF is small)
    a.ldr_idx(Reg::R12, Reg::R10, Reg::R0, 2);
    a.cmp(Reg::R1, Reg::R12);
    a.ifc(Cond::Cc).str_idx(Reg::R1, Reg::R10, Reg::R0, 2);
    a.bind(relax_next).unwrap();
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, n32);
    a.b_if(Cond::Ne, relax_loop);
    // next iteration
    a.add_imm(Reg::R5, Reg::R5, 1);
    a.cmp_imm(Reg::R5, n32);
    a.b_if(Cond::Ne, iter_loop);
    a.bind(iter_done).unwrap();
    // copy dist[] to the output cursor
    a.mov_imm(Reg::R0, 0);
    a.bind(copy_loop).unwrap();
    a.ldr_idx(Reg::R1, Reg::R10, Reg::R0, 2);
    a.str_post(Reg::R1, Reg::R9, 4);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, n32);
    a.b_if(Cond::Ne, copy_loop);
    a.bind(src_next).unwrap();
    a.add_imm(Reg::R4, Reg::R4, 1);
    a.cmp_imm(Reg::R4, n32);
    a.b_if(Cond::Ne, src_loop);

    emit_finish(&mut a, lout, (n * n * 4) as u32);

    a.section(Section::Data);
    a.bind(ladj).unwrap();
    a.words(&adj);
    a.section(Section::Bss);
    a.bind(lout).unwrap();
    a.zero((n * n * 4) as u32);
    a.bind(ldist).unwrap();
    a.zero(n as u32 * 4);
    a.bind(lvis).unwrap();
    a.zero(n as u32);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_triangle_inequality_and_diagonal() {
        let n = nodes(Scale::Tiny);
        let adj = adjacency(n);
        let d = reference(&adj, n);
        for s in 0..n {
            assert_eq!(d[s * n + s], 0, "self distance must be zero");
            for v in 0..n {
                // Any direct edge bounds the shortest path.
                if adj[s * n + v] != INF {
                    assert!(d[s * n + v] <= adj[s * n + v]);
                }
            }
        }
    }
}

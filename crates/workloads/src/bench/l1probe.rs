//! The L1 raw-FIT probe (§VI): fill the L1 data cache with a known
//! pattern, let it sit exposed, read it back, and report upsets.
//!
//! Under the beam model this measures `FIT_raw` per bit — the paper's
//! 2.76×10⁻⁵ FIT/bit calibration constant — because any strike into the
//! resident lines flips a pattern bit that the read-back detects.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::runtime::{emit_finish, expected_output};
use crate::BuiltWorkload;

/// Probe parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L1ProbeParams {
    /// Buffer size in bytes (normally the L1D capacity).
    pub buf_bytes: u32,
    /// Number of wait/read-back sweeps.
    pub sweeps: u32,
    /// Idle loop iterations between fill and read-back (exposure window).
    pub dwell_iters: u32,
}

impl Default for L1ProbeParams {
    fn default() -> L1ProbeParams {
        L1ProbeParams {
            buf_bytes: 32 * 1024,
            sweeps: 4,
            dwell_iters: 20_000,
        }
    }
}

/// The pattern word for buffer index `i` (word-granular).
pub fn pattern(i: u32) -> u32 {
    (i.wrapping_mul(0x9E37_79B9)) ^ 0xA5A5_A5A5
}

/// Builds the probe program. The golden output reports zero upsets.
pub fn build_l1_probe(p: L1ProbeParams) -> BuiltWorkload {
    let words = p.buf_bytes / 4;
    // Result: [upset_count: u32][first_bad_index: u32]
    let golden_result = [0u32, 0xFFFF_FFFF];
    let result: Vec<u8> = golden_result.iter().flat_map(|w| w.to_le_bytes()).collect();

    let mut a = Asm::new();
    let entry = a.label("main");
    let buf = a.label("probe_buf");
    let res = a.label("probe_result");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r8 = buf, r9 = upsets, r10 = first bad index, r11 = sweep counter.
    a.addr(Reg::R8, buf);
    a.mov_imm(Reg::R9, 0);
    a.mov_imm(Reg::R10, 0);
    a.mvn(Reg::R10, Reg::R10);
    a.mov32(Reg::R11, p.sweeps);

    let fill = a.label("fill");
    let sweep = a.label("sweep");
    let dwell = a.label("dwell");
    let check = a.label("check");
    let ok = a.label("ok");
    let done = a.label("done");

    // Fill: buf[i] = pattern(i) = i*0x9E3779B9 ^ 0xA5A5A5A5.
    a.mov_imm(Reg::R0, 0);
    a.mov32(Reg::R2, 0x9E37_79B9);
    a.mov32(Reg::R3, 0xA5A5_A5A5);
    a.bind(fill).unwrap();
    a.mul(Reg::R1, Reg::R0, Reg::R2);
    a.eor(Reg::R1, Reg::R1, Reg::R3);
    a.str_idx(Reg::R1, Reg::R8, Reg::R0, 2);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, words);
    a.b_if(Cond::Ne, fill);

    a.bind(sweep).unwrap();
    // Dwell: spin to accumulate exposure while the lines sit in the cache.
    a.mov32(Reg::R0, p.dwell_iters);
    a.bind(dwell).unwrap();
    a.subs_imm(Reg::R0, Reg::R0, 1);
    a.b_if(Cond::Ne, dwell);
    // Read back and compare.
    a.mov_imm(Reg::R0, 0);
    a.mov32(Reg::R2, 0x9E37_79B9);
    a.mov32(Reg::R3, 0xA5A5_A5A5);
    a.bind(check).unwrap();
    a.mul(Reg::R1, Reg::R0, Reg::R2);
    a.eor(Reg::R1, Reg::R1, Reg::R3);
    a.ldr_idx(Reg::R4, Reg::R8, Reg::R0, 2);
    a.cmp(Reg::R4, Reg::R1);
    a.b_if(Cond::Eq, ok);
    // Upset: count it, remember the first index, repair the word.
    a.add_imm(Reg::R9, Reg::R9, 1);
    a.cmp_imm(Reg::R10, 0);
    a.ifc(Cond::Mi).mov(Reg::R10, Reg::R0); // only if still 0xFFFF_FFFF (negative)
    a.str_idx(Reg::R1, Reg::R8, Reg::R0, 2);
    a.bind(ok).unwrap();
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, words);
    a.b_if(Cond::Ne, check);
    user::alive(&mut a);
    a.subs_imm(Reg::R11, Reg::R11, 1);
    a.b_if(Cond::Ne, sweep);

    a.bind(done).unwrap();
    a.addr(Reg::R0, res);
    a.str(Reg::R9, Reg::R0, 0);
    a.str(Reg::R10, Reg::R0, 4);
    emit_finish(&mut a, res, 8);

    a.section(Section::Bss);
    a.bind(buf).unwrap();
    a.zero(p.buf_bytes);
    a.bind(res).unwrap();
    a.zero(8);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_word_unique_for_small_indices() {
        let set: std::collections::BTreeSet<_> = (0..8192).map(pattern).collect();
        assert_eq!(set.len(), 8192);
    }

    #[test]
    fn probe_builds() {
        let b = build_l1_probe(L1ProbeParams {
            buf_bytes: 1024,
            sweeps: 1,
            dwell_iters: 10,
        });
        assert!(b.image.text_bytes() > 0);
        assert_eq!(b.golden.len(), 4 + 8);
    }
}

//! Rijndael — AES-128 ECB encryption/decryption over a byte stream
//! (paper: 3.2 MB file; scaled to 40 KB). The classic 32-bit T-table
//! formulation: four 1 KB lookup tables per direction, eleven round keys,
//! exactly the memory-intensive profile the paper describes.
//!
//! The round keys and tables are precomputed host-side (as a real AES
//! library would at `setkey` time) and placed in `.rodata`; the per-block
//! rounds run in the guest. The reference implementation is validated
//! against the FIPS-197 test vector.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::random_bytes;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0xAE50_0001;
/// The fixed AES-128 key used by both directions.
pub const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];

fn input_len(scale: Scale) -> usize {
    match scale {
        Scale::Default => 40 * 1024,
        Scale::Tiny => 512,
    }
}

// ----- table construction ------------------------------------------------

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1B)
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// The AES S-box, generated from first principles (multiplicative inverse
/// in GF(2⁸) + affine transform).
pub fn sbox() -> [u8; 256] {
    // Build inverses by brute force (fine at build time).
    let mut inv = [0u8; 256];
    for x in 1..=255u8 {
        for y in 1..=255u8 {
            if gmul(x, y) == 1 {
                inv[x as usize] = y;
                break;
            }
        }
    }
    let mut s = [0u8; 256];
    for (i, e) in s.iter_mut().enumerate() {
        let x = inv[i];
        *e = x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
    }
    s
}

/// Inverse S-box.
pub fn inv_sbox() -> [u8; 256] {
    let s = sbox();
    let mut inv = [0u8; 256];
    for (i, &v) in s.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Encryption T-tables `Te0..Te3` (big-endian word convention).
pub fn enc_tables() -> [[u32; 256]; 4] {
    let s = sbox();
    let mut t = [[0u32; 256]; 4];
    for i in 0..256 {
        let x = s[i];
        let w = u32::from_be_bytes([gmul(x, 2), x, x, gmul(x, 3)]);
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
    }
    t
}

/// Decryption T-tables `Td0..Td3`.
pub fn dec_tables() -> [[u32; 256]; 4] {
    let si = inv_sbox();
    let mut t = [[0u32; 256]; 4];
    for i in 0..256 {
        let x = si[i];
        let w = u32::from_be_bytes([gmul(x, 14), gmul(x, 9), gmul(x, 13), gmul(x, 11)]);
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
    }
    t
}

/// Expands the 128-bit key into 44 round-key words (big-endian).
pub fn expand_key(key: &[u8; 16]) -> [u32; 44] {
    let s = sbox();
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t = t.rotate_left(8);
            let b = t.to_be_bytes();
            t = u32::from_be_bytes([
                s[b[0] as usize],
                s[b[1] as usize],
                s[b[2] as usize],
                s[b[3] as usize],
            ]);
            t ^= (rcon as u32) << 24;
            rcon = xtime(rcon);
        }
        w[i] = w[i - 4] ^ t;
    }
    w
}

/// Decryption round keys (equivalent-inverse-cipher schedule: InvMixColumns
/// applied to the middle round keys).
pub fn expand_key_dec(key: &[u8; 16]) -> [u32; 44] {
    let enc = expand_key(key);
    let mut dec = [0u32; 44];
    // Reverse round order.
    for r in 0..11 {
        for c in 0..4 {
            dec[4 * r + c] = enc[4 * (10 - r) + c];
        }
    }
    // InvMixColumns on rounds 1..=9.
    for rk in dec.iter_mut().take(40).skip(4) {
        let b = rk.to_be_bytes();
        let mix = |i: usize| {
            gmul(b[i], 14)
                ^ gmul(b[(i + 1) % 4 + i / 4 * 4], 11)
                ^ gmul(b[(i + 2) % 4 + i / 4 * 4], 13)
                ^ gmul(b[(i + 3) % 4 + i / 4 * 4], 9)
        };
        *rk = u32::from_be_bytes([mix(0), mix(1), mix(2), mix(3)]);
    }
    dec
}

// ----- reference cipher ----------------------------------------------------

/// Encrypts one 16-byte block with the T-table algorithm.
pub fn encrypt_block(block: &[u8; 16], rk: &[u32; 44], te: &[[u32; 256]; 4]) -> [u8; 16] {
    let s = sbox();
    cipher_block(block, rk, te, &s, &ENC_IDX)
}

fn cipher_block(
    block: &[u8; 16],
    rk: &[u32; 44],
    t: &[[u32; 256]; 4],
    final_box: &[u8; 256],
    idx: &[[usize; 4]; 4],
) -> [u8; 16] {
    let mut st = [0u32; 4];
    for i in 0..4 {
        st[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap()) ^ rk[i];
    }
    for round in 1..10 {
        let mut nx = [0u32; 4];
        for (c, n) in nx.iter_mut().enumerate() {
            *n = t[0][(st[idx[c][0]] >> 24) as usize]
                ^ t[1][((st[idx[c][1]] >> 16) & 0xFF) as usize]
                ^ t[2][((st[idx[c][2]] >> 8) & 0xFF) as usize]
                ^ t[3][(st[idx[c][3]] & 0xFF) as usize]
                ^ rk[4 * round + c];
        }
        st = nx;
    }
    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    let mut out = [0u8; 16];
    for (c, chunk) in out.chunks_exact_mut(4).enumerate() {
        let w = ((final_box[(st[idx[c][0]] >> 24) as usize] as u32) << 24)
            | ((final_box[((st[idx[c][1]] >> 16) & 0xFF) as usize] as u32) << 16)
            | ((final_box[((st[idx[c][2]] >> 8) & 0xFF) as usize] as u32) << 8)
            | (final_box[(st[idx[c][3]] & 0xFF) as usize] as u32);
        chunk.copy_from_slice(&(w ^ rk[40 + c]).to_be_bytes());
    }
    out
}

/// Reference ECB encryption of a whole (16-aligned) buffer.
pub fn reference_encrypt(data: &[u8]) -> Vec<u8> {
    let rk = expand_key(&KEY);
    let te = enc_tables();
    let mut out = Vec::with_capacity(data.len());
    for blk in data.chunks_exact(16) {
        out.extend_from_slice(&encrypt_block(blk.try_into().unwrap(), &rk, &te));
    }
    out
}

/// Reference ECB decryption.
pub fn reference_decrypt(data: &[u8]) -> Vec<u8> {
    let rk = expand_key_dec(&KEY);
    let td = dec_tables();
    let si = inv_sbox();
    let mut out = Vec::with_capacity(data.len());
    for blk in data.chunks_exact(16) {
        out.extend_from_slice(&cipher_block(
            blk.try_into().unwrap(),
            &rk,
            &td,
            &si,
            &DEC_IDX,
        ));
    }
    out
}

// ----- guest ------------------------------------------------------------------

struct GuestTables {
    t: [[u32; 256]; 4],
    final_box: [u8; 256],
    rk: [u32; 44],
    idx: [[usize; 4]; 4],
}

fn guest_cipher(input: &[u8], g: &GuestTables) -> (sea_isa::Image, Vec<u8>) {
    let blocks = (input.len() / 16) as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let lin = a.label("aes_in");
    let lout = a.label("aes_out");
    let lrk = a.label("round_keys");
    let lt0 = a.label("t0");
    let lt1 = a.label("t1");
    let lt2 = a.label("t2");
    let lt3 = a.label("t3");
    let lfinal = a.label("final_box");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // Register plan (per block):
    //   r4-r7 = state columns s0..s3 (note: r7 is reloaded before syscalls,
    //   which only happen outside the block loop)
    //   r8 = input cursor, r9 = output cursor, r10 = block counter,
    //   r11 = round keys base, r12 = scratch table base.
    // State copies go through the stack for the round double-buffer.
    a.addr(Reg::R8, lin);
    a.addr(Reg::R9, lout);
    a.mov32(Reg::R10, blocks);

    let blk_loop = a.label("blk_loop");
    a.bind(blk_loop).unwrap();
    a.addr(Reg::R11, lrk);
    // Load the block big-endian and xor rk[0..4]. Loads are LE, so load
    // byte-reversed: compose from 4 byte loads.
    for col in 0..4u32 {
        let dst = [Reg::R4, Reg::R5, Reg::R6, Reg::R7][col as usize];
        // dst = (b0<<24)|(b1<<16)|(b2<<8)|b3 from input bytes 4c..4c+3
        a.ldrb(Reg::R0, Reg::R8, (4 * col) as u16);
        a.lsl(dst, Reg::R0, 24);
        a.ldrb(Reg::R0, Reg::R8, (4 * col + 1) as u16);
        a.orr_shifted(
            dst,
            dst,
            sea_isa::ShiftedReg {
                rm: Reg::R0,
                shift: sea_isa::Shift::Lsl,
                amount: 16,
            },
        );
        a.ldrb(Reg::R0, Reg::R8, (4 * col + 2) as u16);
        a.orr_shifted(
            dst,
            dst,
            sea_isa::ShiftedReg {
                rm: Reg::R0,
                shift: sea_isa::Shift::Lsl,
                amount: 8,
            },
        );
        a.ldrb(Reg::R0, Reg::R8, (4 * col + 3) as u16);
        a.orr(dst, dst, Reg::R0);
        a.ldr(Reg::R0, Reg::R11, (4 * col) as u16);
        a.eor(dst, dst, Reg::R0);
    }
    a.add_imm(Reg::R11, Reg::R11, 16); // rk cursor → round 1

    // Nine T-table rounds. Each round computes the four new columns onto
    // the stack, then reloads them into r4-r7.
    let round_loop = a.label("round_loop");
    a.mov_imm(Reg::R3, 9);
    a.push_regs(&[Reg::R3]);
    a.bind(round_loop).unwrap();
    let srcs = [Reg::R4, Reg::R5, Reg::R6, Reg::R7];
    // Columns are computed in reverse so that after the four pushes the
    // block pop (lowest address first) lands n0 in r4 … n3 in r7.
    for c in (0..4).rev() {
        // n = T0[s(idx0)>>24] ^ T1[(s(idx1)>>16)&ff] ^ T2[(s(idx2)>>8)&ff]
        //     ^ T3[s(idx3)&ff] ^ rk[c]
        let (i0, i1, i2, i3) = (g.idx[c][0], g.idx[c][1], g.idx[c][2], g.idx[c][3]);
        a.addr(Reg::R12, lt0);
        a.lsr(Reg::R0, srcs[i0], 24);
        a.ldr_idx(Reg::R1, Reg::R12, Reg::R0, 2);
        a.addr(Reg::R12, lt1);
        a.lsr(Reg::R0, srcs[i1], 16);
        a.and_imm(Reg::R0, Reg::R0, 0xFF);
        a.ldr_idx(Reg::R2, Reg::R12, Reg::R0, 2);
        a.eor(Reg::R1, Reg::R1, Reg::R2);
        a.addr(Reg::R12, lt2);
        a.lsr(Reg::R0, srcs[i2], 8);
        a.and_imm(Reg::R0, Reg::R0, 0xFF);
        a.ldr_idx(Reg::R2, Reg::R12, Reg::R0, 2);
        a.eor(Reg::R1, Reg::R1, Reg::R2);
        a.addr(Reg::R12, lt3);
        a.and_imm(Reg::R0, srcs[i3], 0xFF);
        a.ldr_idx(Reg::R2, Reg::R12, Reg::R0, 2);
        a.eor(Reg::R1, Reg::R1, Reg::R2);
        a.ldr(Reg::R2, Reg::R11, (4 * c) as u16);
        a.eor(Reg::R1, Reg::R1, Reg::R2);
        a.push_regs(&[Reg::R1]); // stash new column
    }
    // Reload new state: pushed n0,n1,n2,n3 → pop into r4..r7 preserving
    // order (stack is descending; pop yields n3 first if popped singly, so
    // pop as a block).
    a.pop_regs(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7]);
    a.add_imm(Reg::R11, Reg::R11, 16);
    a.pop_regs(&[Reg::R3]);
    a.subs_imm(Reg::R3, Reg::R3, 1);
    a.push_regs(&[Reg::R3]);
    a.b_if(Cond::Ne, round_loop);
    a.pop_regs(&[Reg::R3]);

    // Final round with the plain (inverse) S-box.
    a.addr(Reg::R12, lfinal);
    for c in 0..4 {
        let (i0, i1, i2, i3) = (g.idx[c][0], g.idx[c][1], g.idx[c][2], g.idx[c][3]);
        a.lsr(Reg::R0, srcs[i0], 24);
        a.ldrb_idx(Reg::R1, Reg::R12, Reg::R0);
        a.lsl(Reg::R1, Reg::R1, 24);
        a.lsr(Reg::R0, srcs[i1], 16);
        a.and_imm(Reg::R0, Reg::R0, 0xFF);
        a.ldrb_idx(Reg::R2, Reg::R12, Reg::R0);
        a.orr_shifted(
            Reg::R1,
            Reg::R1,
            sea_isa::ShiftedReg {
                rm: Reg::R2,
                shift: sea_isa::Shift::Lsl,
                amount: 16,
            },
        );
        a.lsr(Reg::R0, srcs[i2], 8);
        a.and_imm(Reg::R0, Reg::R0, 0xFF);
        a.ldrb_idx(Reg::R2, Reg::R12, Reg::R0);
        a.orr_shifted(
            Reg::R1,
            Reg::R1,
            sea_isa::ShiftedReg {
                rm: Reg::R2,
                shift: sea_isa::Shift::Lsl,
                amount: 8,
            },
        );
        a.and_imm(Reg::R0, srcs[i3], 0xFF);
        a.ldrb_idx(Reg::R2, Reg::R12, Reg::R0);
        a.orr(Reg::R1, Reg::R1, Reg::R2);
        a.ldr(Reg::R2, Reg::R11, (4 * c) as u16);
        a.eor(Reg::R1, Reg::R1, Reg::R2);
        // Store big-endian to the output.
        a.lsr(Reg::R0, Reg::R1, 24);
        a.strb(Reg::R0, Reg::R9, (4 * c) as u16);
        a.lsr(Reg::R0, Reg::R1, 16);
        a.strb(Reg::R0, Reg::R9, (4 * c + 1) as u16);
        a.lsr(Reg::R0, Reg::R1, 8);
        a.strb(Reg::R0, Reg::R9, (4 * c + 2) as u16);
        a.strb(Reg::R1, Reg::R9, (4 * c + 3) as u16);
    }
    a.add_imm(Reg::R8, Reg::R8, 16);
    a.add_imm(Reg::R9, Reg::R9, 16);
    a.subs_imm(Reg::R10, Reg::R10, 1);
    a.b_if(Cond::Ne, blk_loop);

    emit_finish(&mut a, lout, input.len() as u32);

    a.section(Section::Rodata);
    a.bind(lrk).unwrap();
    a.words(&g.rk);
    a.bind(lt0).unwrap();
    a.words(&g.t[0]);
    a.bind(lt1).unwrap();
    a.words(&g.t[1]);
    a.bind(lt2).unwrap();
    a.words(&g.t[2]);
    a.bind(lt3).unwrap();
    a.words(&g.t[3]);
    a.bind(lfinal).unwrap();
    a.bytes(&g.final_box);
    a.section(Section::Data);
    a.align(4);
    a.bind(lin).unwrap();
    a.bytes(input);
    a.section(Section::Bss);
    a.align(4);
    a.bind(lout).unwrap();
    a.zero(input.len() as u32);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    (image, Vec::new())
}

const ENC_IDX: [[usize; 4]; 4] = [[0, 1, 2, 3], [1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2]];
const DEC_IDX: [[usize; 4]; 4] = [[0, 3, 2, 1], [1, 0, 3, 2], [2, 1, 0, 3], [3, 2, 1, 0]];

/// Builds the encryption benchmark.
pub fn build_encrypt(scale: Scale) -> BuiltWorkload {
    let data = random_bytes(SEED, input_len(scale));
    let ct = reference_encrypt(&data);
    let g = GuestTables {
        t: enc_tables(),
        final_box: sbox(),
        rk: expand_key(&KEY),
        idx: ENC_IDX,
    };
    let (image, _) = guest_cipher(&data, &g);
    BuiltWorkload {
        image,
        golden: expected_output(&ct),
    }
}

/// Builds the decryption benchmark (input is the reference ciphertext).
pub fn build_decrypt(scale: Scale) -> BuiltWorkload {
    let data = random_bytes(SEED, input_len(scale));
    let ct = reference_encrypt(&data);
    let g = GuestTables {
        t: dec_tables(),
        final_box: inv_sbox(),
        rk: expand_key_dec(&KEY),
        idx: DEC_IDX,
    };
    let (image, _) = guest_cipher(&ct, &g);
    BuiltWorkload {
        image,
        golden: expected_output(&data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_test_vector() {
        let key = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D,
            0x0E, 0x0F,
        ];
        let pt = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD,
            0xEE, 0xFF,
        ];
        let expect = [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ];
        let rk = expand_key(&key);
        let te = enc_tables();
        assert_eq!(encrypt_block(&pt, &rk, &te), expect);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let data = random_bytes(42, 256);
        let ct = reference_encrypt(&data);
        assert_ne!(ct, data);
        assert_eq!(reference_decrypt(&ct), data);
    }

    #[test]
    fn sbox_matches_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7C);
        assert_eq!(s[0x53], 0xED);
        let si = inv_sbox();
        assert_eq!(si[0x63], 0x00);
    }
}

//! StringSearch — Boyer–Moore–Horspool word search, one word per sentence
//! (paper: 1332 pairs; scaled to 160). Small footprint, branchy control
//! flow, byte-granular memory traffic.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::XorShift32;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0x57A6_0001;
/// Fixed sentence length (bytes) so the guest can use simple indexing.
const SENT_LEN: usize = 64;

fn pairs(scale: Scale) -> usize {
    match scale {
        Scale::Default => 160,
        Scale::Tiny => 12,
    }
}

/// Generates sentences and search words. Each word is planted inside its
/// sentence with 75% probability (so hits and misses both occur), and is
/// 4–11 bytes of lowercase letters. Words are stored padded to 12 bytes
/// with a length prefix.
pub fn generate(n: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = XorShift32::new(SEED);
    let mut sentences = vec![0u8; n * SENT_LEN];
    let mut words = vec![0u8; n * 12];
    for i in 0..n {
        let s = &mut sentences[i * SENT_LEN..(i + 1) * SENT_LEN];
        for b in s.iter_mut() {
            *b = b'a' + rng.below(26) as u8;
        }
        let wlen = 4 + rng.below(8) as usize;
        let mut w = vec![0u8; wlen];
        for b in w.iter_mut() {
            *b = b'a' + rng.below(26) as u8;
        }
        if rng.below(4) != 0 {
            // Plant the word.
            let pos = rng.below((SENT_LEN - wlen) as u32) as usize;
            s[pos..pos + wlen].copy_from_slice(&w);
        }
        words[i * 12] = wlen as u8;
        words[i * 12 + 1..i * 12 + 1 + wlen].copy_from_slice(&w);
    }
    (sentences, words)
}

/// Host-side BMH reference: index of first occurrence per pair, or
/// `u32::MAX`.
pub fn reference(sentences: &[u8], words: &[u8], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let s = &sentences[i * SENT_LEN..(i + 1) * SENT_LEN];
        let wlen = words[i * 12] as usize;
        let w = &words[i * 12 + 1..i * 12 + 1 + wlen];
        out.push(bmh(s, w));
    }
    out
}

fn bmh(hay: &[u8], needle: &[u8]) -> u32 {
    let m = needle.len();
    if m == 0 || m > hay.len() {
        return u32::MAX;
    }
    let mut skip = [m as u8; 256];
    for (i, &b) in needle[..m - 1].iter().enumerate() {
        skip[b as usize] = (m - 1 - i) as u8;
    }
    let mut pos = 0usize;
    while pos + m <= hay.len() {
        let mut j = m;
        while j > 0 && hay[pos + j - 1] == needle[j - 1] {
            j -= 1;
        }
        if j == 0 {
            return pos as u32;
        }
        pos += skip[hay[pos + m - 1] as usize] as usize;
    }
    u32::MAX
}

/// Builds the guest program and golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = pairs(scale);
    let (sentences, words) = generate(n);
    let found = reference(&sentences, &words, n);
    let result: Vec<u8> = found.iter().flat_map(|w| w.to_le_bytes()).collect();

    let mut a = Asm::new();
    let entry = a.label("main");
    let lsent = a.label("sentences");
    let lwords = a.label("words");
    let lskip = a.label("skip_table");
    let lout = a.label("found_out");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r8 = sentence cursor, r9 = word cursor, r10 = out cursor, r11 = pair
    // counter, r6 = skip table.
    a.addr(Reg::R8, lsent);
    a.addr(Reg::R9, lwords);
    a.addr(Reg::R10, lout);
    a.mov32(Reg::R11, n as u32);
    a.addr(Reg::R6, lskip);

    let pair_loop = a.label("pair_loop");
    let skip_init = a.label("skip_init");
    let skip_fill = a.label("skip_fill");
    let search = a.label("search");
    let match_loop = a.label("match_loop");
    let matched = a.label("matched");
    let advance = a.label("advance");
    let not_found = a.label("not_found");
    let emit = a.label("emit");
    let next_pair = a.label("next_pair");

    a.bind(pair_loop).unwrap();
    // r4 = wlen, r5 = word base (skip the length byte).
    a.ldrb(Reg::R4, Reg::R9, 0);
    a.add_imm(Reg::R5, Reg::R9, 1);
    // skip[b] = wlen for all b.
    a.mov_imm(Reg::R0, 0);
    a.bind(skip_init).unwrap();
    a.strb_idx(Reg::R4, Reg::R6, Reg::R0);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, 256);
    a.b_if(Cond::Ne, skip_init);
    // skip[needle[i]] = wlen-1-i for i in 0..wlen-1.
    a.mov_imm(Reg::R0, 0);
    a.sub_imm(Reg::R1, Reg::R4, 1); // wlen-1
    a.cmp_imm(Reg::R1, 0);
    a.b_if(Cond::Eq, search);
    a.bind(skip_fill).unwrap();
    a.ldrb_idx(Reg::R2, Reg::R5, Reg::R0); // needle[i]
    a.sub(Reg::R3, Reg::R1, Reg::R0); // wlen-1-i
    a.strb_idx(Reg::R3, Reg::R6, Reg::R2);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp(Reg::R0, Reg::R1);
    a.b_if(Cond::Ne, skip_fill);

    a.bind(search).unwrap();
    // r0 = pos.
    a.mov_imm(Reg::R0, 0);
    let search_top = a.label("search_top");
    a.bind(search_top).unwrap();
    // while pos + wlen <= SENT_LEN
    a.add(Reg::R1, Reg::R0, Reg::R4);
    a.cmp_imm(Reg::R1, SENT_LEN as u32);
    a.b_if(Cond::Hi, not_found);
    // j = wlen; compare backwards.
    a.mov(Reg::R1, Reg::R4);
    a.bind(match_loop).unwrap();
    a.cmp_imm(Reg::R1, 0);
    a.b_if(Cond::Eq, matched);
    a.sub_imm(Reg::R1, Reg::R1, 1);
    // hay[pos + j] vs needle[j]
    a.add(Reg::R2, Reg::R0, Reg::R1);
    a.ldrb_idx(Reg::R2, Reg::R8, Reg::R2);
    a.ldrb_idx(Reg::R3, Reg::R5, Reg::R1);
    a.cmp(Reg::R2, Reg::R3);
    a.b_if(Cond::Eq, match_loop);
    a.bind(advance).unwrap();
    // pos += skip[hay[pos + wlen - 1]]
    a.add(Reg::R2, Reg::R0, Reg::R4);
    a.sub_imm(Reg::R2, Reg::R2, 1);
    a.ldrb_idx(Reg::R2, Reg::R8, Reg::R2);
    a.ldrb_idx(Reg::R2, Reg::R6, Reg::R2);
    a.add(Reg::R0, Reg::R0, Reg::R2);
    a.b(search_top);

    a.bind(matched).unwrap();
    a.b(emit); // r0 = pos
    a.bind(not_found).unwrap();
    a.mov_imm(Reg::R0, 0);
    a.mvn(Reg::R0, Reg::R0);
    a.bind(emit).unwrap();
    a.str_post(Reg::R0, Reg::R10, 4);
    a.bind(next_pair).unwrap();
    a.add_imm(Reg::R8, Reg::R8, SENT_LEN as u32);
    a.add_imm(Reg::R9, Reg::R9, 12);
    a.subs_imm(Reg::R11, Reg::R11, 1);
    a.b_if(Cond::Ne, pair_loop);

    emit_finish(&mut a, lout, (n * 4) as u32);

    a.section(Section::Data);
    a.bind(lsent).unwrap();
    a.bytes(&sentences);
    a.bind(lwords).unwrap();
    a.bytes(&words);
    a.section(Section::Bss);
    a.bind(lskip).unwrap();
    a.zero(256);
    a.bind(lout).unwrap();
    a.zero((n * 4) as u32);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bmh_finds_planted_and_misses_absent() {
        assert_eq!(bmh(b"hello world", b"world"), 6);
        assert_eq!(bmh(b"hello world", b"word"), u32::MAX);
        assert_eq!(bmh(b"aaaa", b"aaaa"), 0);
        assert_eq!(bmh(b"ab", b"abc"), u32::MAX);
    }

    #[test]
    fn generated_pairs_have_hits_and_misses() {
        let n = pairs(Scale::Default);
        let (s, w) = generate(n);
        let found = reference(&s, &w, n);
        let hits = found.iter().filter(|&&f| f != u32::MAX).count();
        assert!(hits > n / 2, "most words are planted");
        assert!(hits < n, "some searches must miss");
    }
}

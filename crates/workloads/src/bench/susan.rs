//! SUSAN — corner detection (C), edge detection (E) and structure-
//! preserving smoothing (S) over a grayscale image (paper: 76×95 input;
//! scaled to 40×48). All three variants share the USAN machinery: a
//! brightness-similarity lookup table evaluated over a circular mask.
//!
//! The similarity LUT is precomputed host-side (as the original SUSAN code
//! does) and the per-pixel arithmetic is pure integer, so guest and
//! reference agree exactly.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::test_image;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0x5005_0001;
/// Brightness threshold of the similarity function.
const BT: i32 = 20;

/// The 21-pixel quasi-circular USAN mask (5×5 without corners), as
/// (dx, dy) offsets.
pub const MASK: [(i32, i32); 21] = [
    (-1, -2),
    (0, -2),
    (1, -2),
    (-2, -1),
    (-1, -1),
    (0, -1),
    (1, -1),
    (2, -1),
    (-2, 0),
    (-1, 0),
    (0, 0),
    (1, 0),
    (2, 0),
    (-2, 1),
    (-1, 1),
    (0, 1),
    (1, 1),
    (2, 1),
    (-1, 2),
    (0, 2),
    (1, 2),
];

/// Which SUSAN variant to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Corner detection.
    Corners,
    /// Edge detection.
    Edges,
    /// Structure-preserving smoothing.
    Smoothing,
}

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Default => (40, 48),
        Scale::Tiny => (16, 16),
    }
}

/// Similarity LUT: `lut[d] = round(100 * exp(-(d/BT)^6))` for brightness
/// difference `d` — the smooth USAN membership function (0..=100).
pub fn similarity_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    for (d, e) in lut.iter_mut().enumerate() {
        let x = d as f64 / BT as f64;
        *e = (100.0 * (-x.powi(6)).exp()).round() as u8;
    }
    lut
}

/// USAN value at (x, y): sum of similarity over the mask (center included),
/// computed with border clamping.
fn usan(img: &[u8], w: usize, h: usize, x: usize, y: usize, lut: &[u8; 256]) -> u32 {
    let c = img[y * w + x] as i32;
    let mut area = 0u32;
    for (dx, dy) in MASK {
        let nx = (x as i32 + dx).clamp(0, w as i32 - 1) as usize;
        let ny = (y as i32 + dy).clamp(0, h as i32 - 1) as usize;
        let d = (img[ny * w + nx] as i32 - c).unsigned_abs() as usize;
        area += lut[d.min(255)] as u32;
    }
    area
}

/// Host-side reference for each variant. Returns the result byte buffer.
pub fn reference(img: &[u8], w: usize, h: usize, variant: Variant) -> Vec<u8> {
    let lut = similarity_lut();
    // Geometric thresholds, scaled from SUSAN's 3/4·max (edges) and
    // 1/2·max (corners); max response is 100 per mask pixel.
    let max_area = 100 * MASK.len() as u32;
    match variant {
        Variant::Edges => {
            let g = 3 * max_area / 4;
            let mut out = vec![0u8; w * h];
            for y in 0..h {
                for x in 0..w {
                    let a = usan(img, w, h, x, y, &lut);
                    let resp = g.saturating_sub(a);
                    out[y * w + x] = (resp / 8).min(255) as u8;
                }
            }
            out
        }
        Variant::Corners => {
            let g = max_area / 2;
            // Output: count (u32) then (x, y) byte pairs of detections.
            let mut pts = Vec::new();
            for y in 0..h {
                for x in 0..w {
                    let a = usan(img, w, h, x, y, &lut);
                    if a < g {
                        pts.push((x as u8, y as u8));
                    }
                }
            }
            let mut out = (pts.len() as u32).to_le_bytes().to_vec();
            for (x, y) in pts {
                out.push(x);
                out.push(y);
            }
            // Pad to the fixed result size the guest uses.
            out.resize(4 + 2 * w * h, 0);
            out
        }
        Variant::Smoothing => {
            let mut out = vec![0u8; w * h];
            for y in 0..h {
                for x in 0..w {
                    let c = img[y * w + x] as i32;
                    let mut num = 0u32;
                    let mut den = 0u32;
                    for (dx, dy) in MASK {
                        let nx = (x as i32 + dx).clamp(0, w as i32 - 1) as usize;
                        let ny = (y as i32 + dy).clamp(0, h as i32 - 1) as usize;
                        let p = img[ny * w + nx] as u32;
                        let d = (p as i32 - c).unsigned_abs() as usize;
                        let wgt = lut[d.min(255)] as u32;
                        num += wgt * p;
                        den += wgt;
                    }
                    out[y * w + x] = num.checked_div(den).map_or(c as u8, |v| v as u8);
                }
            }
            out
        }
    }
}

/// Builds the guest program for one SUSAN variant.
pub fn build(scale: Scale, variant: Variant) -> BuiltWorkload {
    let (w, h) = dims(scale);
    let img = test_image(w, h, SEED);
    let result = reference(&img, w, h, variant);
    let lut = similarity_lut();
    let (w32, h32) = (w as u32, h as u32);
    let max_area = 100 * MASK.len() as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let limg = a.label("image");
    let llut = a.label("lut");
    let lmask = a.label("mask");
    let lout = a.label("susan_out");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    a.addr(Reg::R8, limg); // image
    a.addr(Reg::R9, llut); // LUT
    a.addr(Reg::R10, lout); // output cursor (corners) / base (maps)

    // For corners, out[0..4] is the count; points append after.
    if variant == Variant::Corners {
        a.mov_imm(Reg::R0, 0);
        a.str(Reg::R0, Reg::R10, 0); // count = 0
        a.add_imm(Reg::R10, Reg::R10, 4); // cursor past the count
    }

    let ly = a.label("loop_y");
    let lx = a.label("loop_x");
    let lm = a.label("loop_mask");
    let next_x = a.label("next_x");

    // r4 = y, r5 = x.
    a.mov_imm(Reg::R4, 0);
    a.bind(ly).unwrap();
    a.mov_imm(Reg::R5, 0);
    a.bind(lx).unwrap();
    // r6 = center pixel value c; r11 = usan accumulator; for smoothing,
    // r2 = num accumulator kept in memory? Use r12 for num.
    a.mov32(Reg::R0, w32);
    a.mla(Reg::R1, Reg::R4, Reg::R0, Reg::R5);
    a.ldrb_idx(Reg::R6, Reg::R8, Reg::R1);
    a.mov_imm(Reg::R11, 0);
    if variant == Variant::Smoothing {
        a.mov_imm(Reg::R12, 0);
    }
    // Iterate the mask table: r3 = mask cursor, r0 = remaining.
    a.addr(Reg::R3, lmask);
    a.mov_imm(Reg::R0, MASK.len() as u32);
    a.push_regs(&[Reg::R0, Reg::R3]); // keep cursor+count across body
    a.bind(lm).unwrap();
    a.pop_regs(&[Reg::R0, Reg::R3]);
    a.cmp_imm(Reg::R0, 0);
    let mask_done = a.label("mask_done");
    a.b_if(Cond::Eq, mask_done);
    a.sub_imm(Reg::R0, Reg::R0, 1);
    // load dx (word), dy (word)
    a.ldr(Reg::R1, Reg::R3, 0);
    a.ldr(Reg::R2, Reg::R3, 4);
    a.add_imm(Reg::R3, Reg::R3, 8);
    a.push_regs(&[Reg::R0, Reg::R3]);
    // nx = clamp(x + dx, 0, w-1)  (signed)
    a.add(Reg::R1, Reg::R5, Reg::R1);
    a.cmp_imm(Reg::R1, 0);
    a.ifc(Cond::Lt).mov_imm(Reg::R1, 0);
    a.mov32(Reg::R0, w32 - 1);
    a.cmp(Reg::R1, Reg::R0);
    a.ifc(Cond::Gt).mov(Reg::R1, Reg::R0);
    // ny = clamp(y + dy, 0, h-1)
    a.add(Reg::R2, Reg::R4, Reg::R2);
    a.cmp_imm(Reg::R2, 0);
    a.ifc(Cond::Lt).mov_imm(Reg::R2, 0);
    a.mov32(Reg::R0, h32 - 1);
    a.cmp(Reg::R2, Reg::R0);
    a.ifc(Cond::Gt).mov(Reg::R2, Reg::R0);
    // p = img[ny*w + nx]
    a.mov32(Reg::R0, w32);
    a.mla(Reg::R2, Reg::R2, Reg::R0, Reg::R1);
    a.ldrb_idx(Reg::R2, Reg::R8, Reg::R2); // p
                                           // d = |p - c|; wgt = lut[d]
    a.subs(Reg::R1, Reg::R2, Reg::R6);
    a.ifc(Cond::Mi).rsb_imm(Reg::R1, Reg::R1, 0);
    a.ldrb_idx(Reg::R1, Reg::R9, Reg::R1); // wgt
    a.add(Reg::R11, Reg::R11, Reg::R1); // usan/den += wgt
    if variant == Variant::Smoothing {
        a.mla(Reg::R12, Reg::R1, Reg::R2, Reg::R12); // num += wgt * p
    }
    a.b(lm);
    a.bind(mask_done).unwrap();

    // Per-pixel decision.
    let store_done = a.label("store_done");
    match variant {
        Variant::Edges => {
            // resp = max(0, g - usan) / 8
            let g = 3 * max_area / 4;
            a.mov32(Reg::R0, g);
            a.subs(Reg::R0, Reg::R0, Reg::R11);
            a.ifc(Cond::Mi).mov_imm(Reg::R0, 0);
            a.lsr(Reg::R0, Reg::R0, 3);
            a.cmp_imm(Reg::R0, 255);
            a.ifc(Cond::Hi).mov_imm(Reg::R0, 255);
            a.mov32(Reg::R1, w32);
            a.mla(Reg::R1, Reg::R4, Reg::R1, Reg::R5);
            a.strb_idx(Reg::R0, Reg::R10, Reg::R1);
        }
        Variant::Corners => {
            let g = max_area / 2;
            a.mov32(Reg::R0, g);
            a.cmp(Reg::R11, Reg::R0);
            a.b_if(Cond::Cs, store_done);
            // Append (x, y); bump the count at out[0].
            a.strb_post(Reg::R5, Reg::R10, 1);
            a.strb_post(Reg::R4, Reg::R10, 1);
            a.addr(Reg::R0, lout);
            a.ldr(Reg::R1, Reg::R0, 0);
            a.add_imm(Reg::R1, Reg::R1, 1);
            a.str(Reg::R1, Reg::R0, 0);
        }
        Variant::Smoothing => {
            // out = den == 0 ? c : num / den
            a.cmp_imm(Reg::R11, 0);
            a.mov(Reg::R0, Reg::R6);
            a.ifc(Cond::Ne).udiv(Reg::R0, Reg::R12, Reg::R11);
            a.mov32(Reg::R1, w32);
            a.mla(Reg::R1, Reg::R4, Reg::R1, Reg::R5);
            a.strb_idx(Reg::R0, Reg::R10, Reg::R1);
        }
    }
    a.bind(store_done).unwrap();

    a.bind(next_x).unwrap();
    a.add_imm(Reg::R5, Reg::R5, 1);
    a.cmp_imm(Reg::R5, w32);
    a.b_if(Cond::Ne, lx);
    a.add_imm(Reg::R4, Reg::R4, 1);
    a.cmp_imm(Reg::R4, h32);
    a.b_if(Cond::Ne, ly);

    let result_len = result.len() as u32;
    emit_finish(&mut a, lout, result_len);

    a.section(Section::Rodata);
    a.bind(llut).unwrap();
    a.bytes(&lut);
    a.align(4);
    a.bind(lmask).unwrap();
    for (dx, dy) in MASK {
        a.word(dx as u32);
        a.word(dy as u32);
    }
    a.section(Section::Data);
    a.bind(limg).unwrap();
    a.bytes(&img);
    a.align(4);
    a.section(Section::Bss);
    a.align(4);
    a.bind(lout).unwrap();
    a.zero(result_len.next_multiple_of(4));
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_is_monotone_decreasing_with_plateau() {
        let lut = similarity_lut();
        assert_eq!(lut[0], 100);
        for d in 1..256 {
            assert!(lut[d] <= lut[d - 1]);
        }
        assert_eq!(lut[255], 0);
    }

    #[test]
    fn corners_found_on_structured_image() {
        let (w, h) = dims(Scale::Default);
        let img = test_image(w, h, SEED);
        let out = reference(&img, w, h, Variant::Corners);
        let count = u32::from_le_bytes(out[0..4].try_into().unwrap());
        assert!(count > 0, "the test image has corner features");
        assert!((count as usize) < w * h / 4, "not everything is a corner");
    }

    #[test]
    fn smoothing_preserves_flat_regions() {
        let img = vec![128u8; 16 * 16];
        let out = reference(&img, 16, 16, Variant::Smoothing);
        assert!(out.iter().all(|&p| p == 128));
    }

    #[test]
    fn edges_stronger_on_boundaries_than_flats() {
        let (w, h) = dims(Scale::Default);
        let img = test_image(w, h, SEED);
        let out = reference(&img, w, h, Variant::Edges);
        let max = out.iter().copied().max().unwrap();
        assert!(max > 0, "edges must respond to the block boundaries");
    }
}

//! CRC32 — cyclic redundancy check over a byte stream (MiBench telecomm).
//!
//! The paper feeds a 26.6 MB file; here the stream is scaled with the rest
//! of the setup (DESIGN.md §1) but keeps the trait that matters: a long
//! streaming pass with a footprint far exceeding the cache hierarchy.

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::random_bytes;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0xC4C3_2001;

fn input_len(scale: Scale) -> usize {
    match scale {
        Scale::Default => 96 * 1024,
        Scale::Tiny => 2 * 1024,
    }
}

/// Standard reflected CRC-32 (IEEE 802.3) lookup table.
pub fn crc_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    for (i, e) in t.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *e = c;
    }
    t
}

/// Host-side reference CRC-32.
pub fn reference(data: &[u8]) -> u32 {
    let t = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Builds the guest program and its golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let data = random_bytes(SEED, input_len(scale));
    let crc = reference(&data);
    let result = crc.to_le_bytes().to_vec();

    let mut a = Asm::new();
    let entry = a.label("main");
    let table = a.label("crc_table");
    let input = a.label("input");
    let result_buf = a.label("result");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r4 = crc, r5 = ptr, r6 = len, r8 = table base.
    a.mov_imm(Reg::R4, 0);
    a.mvn(Reg::R4, Reg::R4); // 0xFFFF_FFFF
    a.addr(Reg::R5, input);
    a.mov32(Reg::R6, data.len() as u32);
    a.addr(Reg::R8, table);
    let lp = a.label("crc_loop");
    a.bind(lp).unwrap();
    a.ldrb_post(Reg::R0, Reg::R5, 1);
    a.eor(Reg::R1, Reg::R4, Reg::R0);
    a.and_imm(Reg::R1, Reg::R1, 0xFF);
    a.ldr_idx(Reg::R2, Reg::R8, Reg::R1, 2);
    a.lsr(Reg::R4, Reg::R4, 8);
    a.eor(Reg::R4, Reg::R4, Reg::R2);
    a.subs_imm(Reg::R6, Reg::R6, 1);
    a.b_if(Cond::Ne, lp);
    a.mvn(Reg::R4, Reg::R4);
    // Store the CRC into the result buffer.
    a.addr(Reg::R0, result_buf);
    a.str(Reg::R4, Reg::R0, 0);
    emit_finish(&mut a, result_buf, 4);

    // Data sections.
    a.section(Section::Rodata);
    a.bind(table).unwrap();
    a.words(&crc_table());
    a.section(Section::Data);
    a.bind(input).unwrap();
    a.bytes(&data);
    a.section(Section::Bss);
    a.bind(result_buf).unwrap();
    a.zero(4);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(reference(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn build_produces_nonempty_golden() {
        let b = build(Scale::Tiny);
        assert_eq!(b.golden.len(), 8); // digest + 4-byte result
        assert!(b.image.text_bytes() > 0);
    }
}

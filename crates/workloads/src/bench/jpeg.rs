//! Jpeg C / Jpeg D — a DCT-based image codec (paper: IJG cjpeg/djpeg on a
//! 512×512 image; scaled to a 48×48 grayscale frame).
//!
//! The codec is a real JPEG-style pipeline — 8×8 blocks, integer 2-D DCT
//! (s12 fixed-point cosine table), luminance quantization, zigzag scan and
//! a run-length + zigzag-varint entropy stage — with the entropy coder
//! simplified from Huffman to RLE+varint (documented substitution: the
//! fault-propagation-relevant structure, a variable-length byte stream
//! whose corruption cascades through the rest of the image, is preserved).
//!
//! All arithmetic is integer and identical between guest and reference,
//! so outputs match exactly. As in the paper, the decoder is *not* the
//! encoder run backwards: it has its own control flow (stream parsing,
//! IDCT), which is why the two report different crash profiles (§V-A).

use sea_isa::{Asm, Cond, Label, Reg, Section};
use sea_kernel::user;

use crate::input::test_image;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0x16B6_0001;

fn dims(scale: Scale) -> usize {
    match scale {
        Scale::Default => 48,
        Scale::Tiny => 16,
    }
}

/// Standard JPEG luminance quantization table (quality ~50), row major.
pub const QUANT: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order: `ZIGZAG[k]` is the (row-major) index of the k-th
/// coefficient.
pub const ZIGZAG: [u8; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// End-of-block marker in the entropy stream.
pub const EOB: u8 = 0xFF;

/// Fixed-point 1-D DCT basis: `C[u*8+x] = round(k_u · cos((2x+1)uπ/16) ·
/// 4096)` with `k_0 = 1/(2√2)`, `k_u = 1/2`. Two passes give the standard
/// JPEG scaling.
pub fn cos_table() -> [i32; 64] {
    let mut c = [0i32; 64];
    for u in 0..8 {
        let k = if u == 0 { 0.5 / 2f64.sqrt() } else { 0.5 };
        for x in 0..8 {
            let v = k * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos();
            c[u * 8 + x] = (v * 4096.0).round() as i32;
        }
    }
    c
}

fn fdct_block(w: &mut [i32; 64]) {
    let c = cos_table();
    let mut t = [0i32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0i32;
            for x in 0..8 {
                acc = acc.wrapping_add(w[y * 8 + x].wrapping_mul(c[u * 8 + x]));
            }
            t[y * 8 + u] = (acc + 2048) >> 12;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i32;
            for y in 0..8 {
                acc = acc.wrapping_add(t[y * 8 + u].wrapping_mul(c[v * 8 + y]));
            }
            w[v * 8 + u] = (acc + 2048) >> 12;
        }
    }
}

fn idct_block(d: &[i32; 64]) -> [i32; 64] {
    let c = cos_table();
    let mut t = [0i32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0i32;
            for v in 0..8 {
                acc = acc.wrapping_add(d[v * 8 + u].wrapping_mul(c[v * 8 + y]));
            }
            t[y * 8 + u] = (acc + 2048) >> 12;
        }
    }
    let mut out = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0i32;
            for u in 0..8 {
                acc = acc.wrapping_add(t[y * 8 + u].wrapping_mul(c[u * 8 + x]));
            }
            out[y * 8 + x] = (acc + 2048) >> 12;
        }
    }
    out
}

fn zigzag_varint(v: i32, out: &mut Vec<u8>) {
    let mut z = ((v << 1) ^ (v >> 31)) as u32;
    while z >= 0x80 {
        out.push((z & 0x7F) as u8 | 0x80);
        z >>= 7;
    }
    out.push(z as u8);
}

/// Host-side reference encoder.
pub fn reference_encode(img: &[u8], n: usize) -> Vec<u8> {
    let blocks = n / 8;
    let mut out = Vec::new();
    for by in 0..blocks {
        for bx in 0..blocks {
            let mut w = [0i32; 64];
            for y in 0..8 {
                for x in 0..8 {
                    w[y * 8 + x] = img[(by * 8 + y) * n + bx * 8 + x] as i32 - 128;
                }
            }
            fdct_block(&mut w);
            let mut run = 0u8;
            for &zk in ZIGZAG.iter() {
                let q = w[zk as usize] / QUANT[zk as usize];
                if q == 0 {
                    run += 1;
                } else {
                    out.push(run);
                    zigzag_varint(q, &mut out);
                    run = 0;
                }
            }
            out.push(EOB);
        }
    }
    out
}

/// Host-side reference decoder.
pub fn reference_decode(stream: &[u8], n: usize) -> Vec<u8> {
    let blocks = n / 8;
    let mut img = vec![0u8; n * n];
    let mut pos = 0usize;
    for by in 0..blocks {
        for bx in 0..blocks {
            let mut d = [0i32; 64];
            let mut k = 0usize;
            loop {
                let b = stream[pos];
                pos += 1;
                if b == EOB {
                    break;
                }
                k += b as usize;
                let mut z = 0u32;
                let mut shift = 0;
                loop {
                    let byte = stream[pos];
                    pos += 1;
                    z |= ((byte & 0x7F) as u32) << shift;
                    if byte & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                }
                let v = ((z >> 1) as i32) ^ -((z & 1) as i32);
                if k < 64 {
                    d[ZIGZAG[k] as usize] = v.wrapping_mul(QUANT[ZIGZAG[k] as usize]);
                }
                k += 1;
            }
            let px = idct_block(&d);
            for y in 0..8 {
                for x in 0..8 {
                    let v = (px[y * 8 + x] + 128).clamp(0, 255);
                    img[(by * 8 + y) * n + bx * 8 + x] = v as u8;
                }
            }
        }
    }
    img
}

// ----- guest helpers ----------------------------------------------------

/// Emits a fixed-point 8×8 transform pass.
///
/// `Rows`: `dst[y*8+u] = (Σx src[y*8+x]·C[u*8+x] + 2048) >> 12`
/// `Cols`: `dst[v*8+u] = (Σy src[y*8+u]·C[v*8+y] + 2048) >> 12`
/// `IdctCols`: `dst[y*8+u] = (Σv src[v*8+u]·C[v*8+y] + 2048) >> 12`
/// `src` and `dst` are base registers of i32[64] workspaces; `ctab` is the
/// cosine-table base. Clobbers r0–r3, r12, lr.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    Rows,
    Cols,
    IdctCols,
}

fn emit_pass(a: &mut Asm, src: Reg, dst: Reg, ctab: Reg, pass: Pass) {
    // Loop structure: outer r0 (o), inner r1 (i), sum index r3 (s),
    // accumulator r2.
    let lo = a.label("pass_o");
    let li = a.label("pass_i");
    let ls = a.label("pass_s");
    a.mov_imm(Reg::R0, 0);
    a.bind(lo).unwrap();
    a.mov_imm(Reg::R1, 0);
    a.bind(li).unwrap();
    a.mov_imm(Reg::R2, 0);
    a.mov_imm(Reg::R3, 0);
    a.bind(ls).unwrap();
    // src index and C index per pass (computed into r12 / lr).
    let (src_hi, src_lo, c_hi, c_lo) = match pass {
        // (o=y, i=u, s=x): src[y,x], C[u,x]
        Pass::Rows => (Reg::R0, Reg::R3, Reg::R1, Reg::R3),
        // (o=u, i=v, s=y): src[y,u], C[v,y]
        Pass::Cols => (Reg::R3, Reg::R0, Reg::R1, Reg::R3),
        // (o=u, i=y, s=v): src[v,u], C[v,y]
        Pass::IdctCols => (Reg::R3, Reg::R0, Reg::R3, Reg::R1),
    };
    a.lsl(Reg::R12, src_hi, 3);
    a.add(Reg::R12, Reg::R12, src_lo);
    a.ldr_idx(Reg::Lr, src, Reg::R12, 2);
    a.lsl(Reg::R12, c_hi, 3);
    a.add(Reg::R12, Reg::R12, c_lo);
    a.ldr_idx(Reg::R12, ctab, Reg::R12, 2);
    a.mla(Reg::R2, Reg::Lr, Reg::R12, Reg::R2);
    a.add_imm(Reg::R3, Reg::R3, 1);
    a.cmp_imm(Reg::R3, 8);
    a.b_if(Cond::Ne, ls);
    // dst[index] = (acc + 2048) >> 12
    a.add_imm(Reg::R2, Reg::R2, 2048);
    a.asr(Reg::R2, Reg::R2, 12);
    let (d_hi, d_lo) = match pass {
        Pass::Rows => (Reg::R0, Reg::R1),     // dst[y,u]
        Pass::Cols => (Reg::R1, Reg::R0),     // dst[v,u]
        Pass::IdctCols => (Reg::R1, Reg::R0), // dst[y,u]
    };
    a.lsl(Reg::R12, d_hi, 3);
    a.add(Reg::R12, Reg::R12, d_lo);
    a.str_idx(Reg::R2, dst, Reg::R12, 2);
    a.add_imm(Reg::R1, Reg::R1, 1);
    a.cmp_imm(Reg::R1, 8);
    a.b_if(Cond::Ne, li);
    a.add_imm(Reg::R0, Reg::R0, 1);
    a.cmp_imm(Reg::R0, 8);
    a.b_if(Cond::Ne, lo);
}

/// Emits the block-coordinate loop prologue/epilogue registers: r4 = by,
/// r5 = bx, iterating `blocks`² times around `body`.
fn emit_block_loop(a: &mut Asm, blocks: u32, body: impl FnOnce(&mut Asm)) {
    let lby = a.label("blk_by");
    let lbx = a.label("blk_bx");
    a.mov_imm(Reg::R4, 0);
    a.bind(lby).unwrap();
    a.mov_imm(Reg::R5, 0);
    a.bind(lbx).unwrap();
    body(a);
    a.add_imm(Reg::R5, Reg::R5, 1);
    a.cmp_imm(Reg::R5, blocks);
    a.b_if(Cond::Ne, lbx);
    a.add_imm(Reg::R4, Reg::R4, 1);
    a.cmp_imm(Reg::R4, blocks);
    a.b_if(Cond::Ne, lby);
}

struct CommonLabels {
    lcos: Label,
    lquant: Label,
    lzig: Label,
    lw: Label,
    lt: Label,
}

fn emit_common_data(a: &mut Asm, l: &CommonLabels) {
    a.section(Section::Rodata);
    a.bind(l.lcos).unwrap();
    for v in cos_table() {
        a.word(v as u32);
    }
    a.bind(l.lquant).unwrap();
    for v in QUANT {
        a.word(v as u32);
    }
    a.bind(l.lzig).unwrap();
    a.bytes(&ZIGZAG);
    a.align(4);
    a.section(Section::Bss);
    a.align(4);
    a.bind(l.lw).unwrap();
    a.zero(64 * 4);
    a.bind(l.lt).unwrap();
    a.zero(64 * 4);
    a.section(Section::Text);
}

// ----- guest encoder -----------------------------------------------------------

/// Builds the Jpeg C (encode) benchmark.
pub fn build_encode(scale: Scale) -> BuiltWorkload {
    let n = dims(scale);
    let img = test_image(n, n, SEED);
    let stream = reference_encode(&img, n);
    let blocks = (n / 8) as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let limg = a.label("image");
    let lout = a.label("stream_out");
    let labels = CommonLabels {
        lcos: a.label("cos_tab"),
        lquant: a.label("quant"),
        lzig: a.label("zigzag"),
        lw: a.label("wksp_w"),
        lt: a.label("wksp_t"),
    };

    a.bind(entry).unwrap();
    user::alive(&mut a);
    a.addr(Reg::R8, limg);
    a.addr(Reg::R9, labels.lcos);
    a.addr(Reg::R10, labels.lw);
    a.addr(Reg::R11, labels.lt);
    a.addr(Reg::R6, lout); // output cursor

    let (lzig, lquant) = (labels.lzig, labels.lquant);
    emit_block_loop(&mut a, blocks, |a| {
        // ---- load block with level shift ----
        let ly = a.label("enc_ld_y");
        let lx = a.label("enc_ld_x");
        a.mov_imm(Reg::R0, 0);
        a.bind(ly).unwrap();
        a.mov_imm(Reg::R1, 0);
        a.bind(lx).unwrap();
        a.lsl(Reg::R2, Reg::R4, 3);
        a.add(Reg::R2, Reg::R2, Reg::R0);
        a.mov32(Reg::R3, n as u32);
        a.mul(Reg::R2, Reg::R2, Reg::R3);
        a.lsl(Reg::R3, Reg::R5, 3);
        a.add(Reg::R2, Reg::R2, Reg::R3);
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.ldrb_idx(Reg::R2, Reg::R8, Reg::R2);
        a.sub_imm(Reg::R2, Reg::R2, 128);
        a.lsl(Reg::R3, Reg::R0, 3);
        a.add(Reg::R3, Reg::R3, Reg::R1);
        a.str_idx(Reg::R2, Reg::R10, Reg::R3, 2);
        a.add_imm(Reg::R1, Reg::R1, 1);
        a.cmp_imm(Reg::R1, 8);
        a.b_if(Cond::Ne, lx);
        a.add_imm(Reg::R0, Reg::R0, 1);
        a.cmp_imm(Reg::R0, 8);
        a.b_if(Cond::Ne, ly);

        // ---- 2-D DCT (W → T → W) ----
        emit_pass(a, Reg::R10, Reg::R11, Reg::R9, Pass::Rows);
        emit_pass(a, Reg::R11, Reg::R10, Reg::R9, Pass::Cols);

        // ---- quantize + zigzag + RLE + varint ----
        let lq = a.label("q_loop");
        let lnz = a.label("q_nonzero");
        let lvar = a.label("varint_more");
        let lvlast = a.label("varint_last");
        let lnext = a.label("q_next");
        a.mov_imm(Reg::R0, 0); // k
        a.mov_imm(Reg::R1, 0); // run
        a.bind(lq).unwrap();
        a.addr(Reg::R3, lzig);
        a.ldrb_idx(Reg::R2, Reg::R3, Reg::R0); // zig[k]
        a.ldr_idx(Reg::R3, Reg::R10, Reg::R2, 2); // coefficient
        a.addr(Reg::R12, lquant);
        a.ldr_idx(Reg::R2, Reg::R12, Reg::R2, 2); // Q
        a.sdiv(Reg::R3, Reg::R3, Reg::R2);
        a.cmp_imm(Reg::R3, 0);
        a.b_if(Cond::Ne, lnz);
        a.add_imm(Reg::R1, Reg::R1, 1);
        a.b(lnext);
        a.bind(lnz).unwrap();
        a.strb_post(Reg::R1, Reg::R6, 1); // run byte
        a.mov_imm(Reg::R1, 0);
        // z = (q << 1) ^ (q >> 31)
        a.lsl(Reg::R2, Reg::R3, 1);
        a.asr(Reg::R3, Reg::R3, 31);
        a.eor(Reg::R2, Reg::R2, Reg::R3);
        a.bind(lvar).unwrap();
        a.cmp_imm(Reg::R2, 0x80);
        a.b_if(Cond::Cc, lvlast);
        a.and_imm(Reg::R3, Reg::R2, 0x7F);
        a.orr_imm(Reg::R3, Reg::R3, 0x80);
        a.strb_post(Reg::R3, Reg::R6, 1);
        a.lsr(Reg::R2, Reg::R2, 7);
        a.b(lvar);
        a.bind(lvlast).unwrap();
        a.strb_post(Reg::R2, Reg::R6, 1);
        a.bind(lnext).unwrap();
        a.add_imm(Reg::R0, Reg::R0, 1);
        a.cmp_imm(Reg::R0, 64);
        a.b_if(Cond::Ne, lq);
        // end of block marker
        a.mov_imm(Reg::R0, EOB as u32);
        a.strb_post(Reg::R0, Reg::R6, 1);
    });

    emit_finish(&mut a, lout, stream.len() as u32);
    emit_common_data(&mut a, &labels);

    a.section(Section::Data);
    a.bind(limg).unwrap();
    a.bytes(&img);
    a.align(4);
    a.section(Section::Bss);
    a.align(4);
    a.bind(lout).unwrap();
    // Slack beyond the reference length absorbs fault-corrupted streams.
    a.zero(stream.len() as u32 + 4096);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&stream),
    }
}

// ----- guest decoder ------------------------------------------------------------

/// Builds the Jpeg D (decode) benchmark. The input is the *reference*
/// encoder's stream, so the decoder is independent of the encoder guest.
pub fn build_decode(scale: Scale) -> BuiltWorkload {
    let n = dims(scale);
    let img = test_image(n, n, SEED);
    let stream = reference_encode(&img, n);
    let decoded = reference_decode(&stream, n);
    let blocks = (n / 8) as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let lstream = a.label("stream_in");
    let lout = a.label("image_out");
    let labels = CommonLabels {
        lcos: a.label("cos_tab"),
        lquant: a.label("quant"),
        lzig: a.label("zigzag"),
        lw: a.label("wksp_d"),
        lt: a.label("wksp_t"),
    };

    a.bind(entry).unwrap();
    user::alive(&mut a);
    a.addr(Reg::R8, lstream); // stream cursor
    a.addr(Reg::R9, labels.lcos);
    a.addr(Reg::R10, labels.lw); // D coefficients
    a.addr(Reg::R11, labels.lt);
    a.addr(Reg::R6, lout); // image base

    let (lzig, lquant) = (labels.lzig, labels.lquant);
    emit_block_loop(&mut a, blocks, |a| {
        // ---- clear D ----
        let lc = a.label("dec_clear");
        a.mov_imm(Reg::R0, 0);
        a.mov_imm(Reg::R1, 0);
        a.bind(lc).unwrap();
        a.str_idx(Reg::R1, Reg::R10, Reg::R0, 2);
        a.add_imm(Reg::R0, Reg::R0, 1);
        a.cmp_imm(Reg::R0, 64);
        a.b_if(Cond::Ne, lc);

        // ---- parse the block's token stream ----
        let lparse = a.label("dec_parse");
        let lvread = a.label("dec_vread");
        let lskip = a.label("dec_skip_store");
        let ldone = a.label("dec_parse_done");
        a.mov_imm(Reg::R1, 0); // k
        a.bind(lparse).unwrap();
        a.ldrb_post(Reg::R0, Reg::R8, 1);
        a.cmp_imm(Reg::R0, EOB as u32);
        a.b_if(Cond::Eq, ldone);
        a.add(Reg::R1, Reg::R1, Reg::R0); // k += run
                                          // varint → r2 (z), shift in r3
        a.mov_imm(Reg::R2, 0);
        a.mov_imm(Reg::R3, 0);
        a.bind(lvread).unwrap();
        a.ldrb_post(Reg::R0, Reg::R8, 1);
        a.and_imm(Reg::R12, Reg::R0, 0x7F);
        a.lslv(Reg::R12, Reg::R12, Reg::R3);
        a.orr(Reg::R2, Reg::R2, Reg::R12);
        a.add_imm(Reg::R3, Reg::R3, 7);
        a.tst_imm(Reg::R0, 0x80);
        a.b_if(Cond::Ne, lvread);
        // v = (z >> 1) ^ -(z & 1)
        a.lsr(Reg::R0, Reg::R2, 1);
        a.and_imm(Reg::R12, Reg::R2, 1);
        a.rsb_imm(Reg::R12, Reg::R12, 0);
        a.eor(Reg::R0, Reg::R0, Reg::R12);
        // bounds check: k < 64 (a corrupted stream must not escape D)
        a.cmp_imm(Reg::R1, 64);
        a.b_if(Cond::Cs, lskip);
        a.addr(Reg::R12, lzig);
        a.ldrb_idx(Reg::R3, Reg::R12, Reg::R1); // zig[k]
        a.addr(Reg::R12, lquant);
        a.ldr_idx(Reg::R12, Reg::R12, Reg::R3, 2);
        a.mul(Reg::R0, Reg::R0, Reg::R12);
        a.str_idx(Reg::R0, Reg::R10, Reg::R3, 2);
        a.bind(lskip).unwrap();
        a.add_imm(Reg::R1, Reg::R1, 1);
        a.b(lparse);
        a.bind(ldone).unwrap();

        // ---- IDCT: D → T → pixels ----
        emit_pass(a, Reg::R10, Reg::R11, Reg::R9, Pass::IdctCols);
        // Pixel pass inlined to add +128 and clamp.
        let lo = a.label("px_y");
        let li = a.label("px_x");
        let ls = a.label("px_u");
        a.mov_imm(Reg::R0, 0); // y
        a.bind(lo).unwrap();
        a.mov_imm(Reg::R1, 0); // x
        a.bind(li).unwrap();
        a.mov_imm(Reg::R2, 0);
        a.mov_imm(Reg::R3, 0); // u
        a.bind(ls).unwrap();
        a.lsl(Reg::R12, Reg::R0, 3);
        a.add(Reg::R12, Reg::R12, Reg::R3);
        a.ldr_idx(Reg::Lr, Reg::R11, Reg::R12, 2); // T[y,u]
        a.lsl(Reg::R12, Reg::R3, 3);
        a.add(Reg::R12, Reg::R12, Reg::R1);
        a.ldr_idx(Reg::R12, Reg::R9, Reg::R12, 2); // C[u,x]
        a.mla(Reg::R2, Reg::Lr, Reg::R12, Reg::R2);
        a.add_imm(Reg::R3, Reg::R3, 1);
        a.cmp_imm(Reg::R3, 8);
        a.b_if(Cond::Ne, ls);
        a.add_imm(Reg::R2, Reg::R2, 2048);
        a.asr(Reg::R2, Reg::R2, 12);
        a.add_imm(Reg::R2, Reg::R2, 128);
        // clamp 0..255
        a.cmp_imm(Reg::R2, 0);
        a.ifc(Cond::Lt).mov_imm(Reg::R2, 0);
        a.cmp_imm(Reg::R2, 255);
        a.ifc(Cond::Gt).mov_imm(Reg::R2, 255);
        // img[(by*8+y)*n + bx*8+x] = r2
        a.lsl(Reg::R3, Reg::R4, 3);
        a.add(Reg::R3, Reg::R3, Reg::R0);
        a.mov32(Reg::R12, n as u32);
        a.mul(Reg::R3, Reg::R3, Reg::R12);
        a.lsl(Reg::R12, Reg::R5, 3);
        a.add(Reg::R3, Reg::R3, Reg::R12);
        a.add(Reg::R3, Reg::R3, Reg::R1);
        a.strb_idx(Reg::R2, Reg::R6, Reg::R3);
        a.add_imm(Reg::R1, Reg::R1, 1);
        a.cmp_imm(Reg::R1, 8);
        a.b_if(Cond::Ne, li);
        a.add_imm(Reg::R0, Reg::R0, 1);
        a.cmp_imm(Reg::R0, 8);
        a.b_if(Cond::Ne, lo);
    });

    emit_finish(&mut a, lout, (n * n) as u32);
    emit_common_data(&mut a, &labels);

    a.section(Section::Data);
    a.bind(lstream).unwrap();
    a.bytes(&stream);
    // Guard tail: a fault-corrupted parser can run the cursor past the
    // stream; EOB bytes stop each block's scan without faulting the guest
    // in ways the paper's decoder wouldn't.
    for _ in 0..64 {
        a.bytes(&[EOB]);
    }
    a.align(4);
    a.section(Section::Bss);
    a.align(4);
    a.bind(lout).unwrap();
    a.zero((n * n) as u32);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&decoded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_close_to_original() {
        let n = 48;
        let img = test_image(n, n, SEED);
        let stream = reference_encode(&img, n);
        assert!(
            stream.len() < n * n,
            "compression must shrink the test image"
        );
        let back = reference_decode(&stream, n);
        assert_eq!(back.len(), img.len());
        // Lossy codec: mean absolute error should be modest.
        let mae: f64 = img
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / img.len() as f64;
        assert!(mae < 12.0, "mean absolute error too high: {mae}");
    }

    #[test]
    fn dct_of_flat_block_is_dc_only() {
        let mut w = [100i32; 64];
        fdct_block(&mut w);
        assert!(w[0] > 700, "DC should capture the flat level, got {}", w[0]);
        for (i, &c) in w.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "AC[{i}] = {c} should be ~0 for a flat block");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [-300i32, -1, 0, 1, 63, 64, 127, 128, 100_000] {
            let mut buf = Vec::new();
            zigzag_varint(v, &mut buf);
            // decode
            let mut z = 0u32;
            let mut shift = 0;
            for &b in &buf {
                z |= ((b & 0x7F) as u32) << shift;
                shift += 7;
                if b & 0x80 == 0 {
                    break;
                }
            }
            let back = ((z >> 1) as i32) ^ -((z & 1) as i32);
            assert_eq!(back, v);
        }
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let set: std::collections::BTreeSet<_> = ZIGZAG.iter().collect();
        assert_eq!(set.len(), 64);
    }
}

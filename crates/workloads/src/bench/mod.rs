//! The benchmark implementations (guest builders + host references).

pub mod crc32;
pub mod dijkstra;
pub mod fft;
pub mod jpeg;
pub mod l1probe;
pub mod matmul;
pub mod qsort;
pub mod rijndael;
pub mod stringsearch;
pub mod susan;

//! Qsort — in-place quicksort over a word array (paper: 50 K doubles via
//! glibc qsort; scaled to 12 K words sorted by an iterative Hoare-partition
//! quicksort with an explicit stack, preserving the memory + control-flow
//! intensity the paper attributes to it).

use sea_isa::{Asm, Cond, Reg, Section};
use sea_kernel::user;

use crate::input::random_words;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0x9507_0001;

fn len(scale: Scale) -> usize {
    match scale {
        Scale::Default => 12 * 1024,
        Scale::Tiny => 256,
    }
}

/// Host-side reference: the same iterative quicksort, step for step.
pub fn reference(data: &[u32]) -> Vec<u32> {
    let mut v = data.to_vec();
    if v.len() < 2 {
        return v;
    }
    let mut stack: Vec<(i32, i32)> = vec![(0, v.len() as i32 - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if lo >= hi {
            continue;
        }
        let pivot = v[((lo + hi) / 2) as usize];
        let (mut i, mut j) = (lo, hi);
        loop {
            while v[i as usize] < pivot {
                i += 1;
            }
            while v[j as usize] > pivot {
                j -= 1;
            }
            if i <= j {
                v.swap(i as usize, j as usize);
                i += 1;
                j -= 1;
            }
            if i > j {
                break;
            }
        }
        stack.push((lo, j));
        stack.push((i, hi));
    }
    v
}

/// Builds the guest program and golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let data = random_words(SEED, len(scale));
    let sorted = reference(&data);
    let result: Vec<u8> = sorted.iter().flat_map(|w| w.to_le_bytes()).collect();
    let n = data.len() as u32;

    let mut a = Asm::new();
    let entry = a.label("main");
    let arr = a.label("array");
    let wstack = a.label("work_stack");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r8 = array base, r9 = work-stack pointer (grows up, pairs of words).
    // Indices are kept as signed element indices.
    a.addr(Reg::R8, arr);
    a.addr(Reg::R9, wstack);
    // push (0, n-1)
    a.mov_imm(Reg::R0, 0);
    a.str_post(Reg::R0, Reg::R9, 4);
    a.mov32(Reg::R0, n - 1);
    a.str_post(Reg::R0, Reg::R9, 4);

    let top = a.label("qs_top");
    let done = a.label("qs_done");
    let part = a.label("qs_part");
    let scan_i = a.label("qs_scan_i");
    let scan_j = a.label("qs_scan_j");
    let no_swap = a.label("qs_no_swap");
    let after = a.label("qs_after");

    a.bind(top).unwrap();
    // Empty stack? (r9 back at base)
    a.addr(Reg::R0, wstack);
    a.cmp(Reg::R9, Reg::R0);
    a.b_if(Cond::Eq, done);
    // pop hi (r5), lo (r4)
    a.sub_imm(Reg::R9, Reg::R9, 4);
    a.ldr(Reg::R5, Reg::R9, 0);
    a.sub_imm(Reg::R9, Reg::R9, 4);
    a.ldr(Reg::R4, Reg::R9, 0);
    // if lo >= hi continue (signed)
    a.cmp(Reg::R4, Reg::R5);
    a.b_if(Cond::Ge, top);
    // pivot r6 = arr[(lo+hi)/2]
    a.add(Reg::R0, Reg::R4, Reg::R5);
    a.asr(Reg::R0, Reg::R0, 1);
    a.ldr_idx(Reg::R6, Reg::R8, Reg::R0, 2);
    // i = lo (r10), j = hi (r11)
    a.mov(Reg::R10, Reg::R4);
    a.mov(Reg::R11, Reg::R5);
    a.bind(part).unwrap();
    // while arr[i] < pivot: i++   (unsigned compare)
    a.bind(scan_i).unwrap();
    a.ldr_idx(Reg::R0, Reg::R8, Reg::R10, 2);
    a.cmp(Reg::R0, Reg::R6);
    a.ifc(Cond::Cc).add_imm(Reg::R10, Reg::R10, 1);
    a.b_if(Cond::Cc, scan_i);
    // while arr[j] > pivot: j--
    a.bind(scan_j).unwrap();
    a.ldr_idx(Reg::R1, Reg::R8, Reg::R11, 2);
    a.cmp(Reg::R1, Reg::R6);
    a.ifc(Cond::Hi).sub_imm(Reg::R11, Reg::R11, 1);
    a.b_if(Cond::Hi, scan_j);
    // if i <= j: swap; i++; j-- (signed compare)
    a.cmp(Reg::R10, Reg::R11);
    a.b_if(Cond::Gt, no_swap);
    // swap arr[i] (r0) and arr[j] (r1), already loaded
    a.str_idx(Reg::R1, Reg::R8, Reg::R10, 2);
    a.str_idx(Reg::R0, Reg::R8, Reg::R11, 2);
    a.add_imm(Reg::R10, Reg::R10, 1);
    a.sub_imm(Reg::R11, Reg::R11, 1);
    a.bind(no_swap).unwrap();
    a.cmp(Reg::R10, Reg::R11);
    a.b_if(Cond::Le, part);
    a.bind(after).unwrap();
    // push (lo, j) and (i, hi)
    a.str_post(Reg::R4, Reg::R9, 4);
    a.str_post(Reg::R11, Reg::R9, 4);
    a.str_post(Reg::R10, Reg::R9, 4);
    a.str_post(Reg::R5, Reg::R9, 4);
    a.b(top);

    a.bind(done).unwrap();
    emit_finish(&mut a, arr, n * 4);

    a.section(Section::Data);
    a.bind(arr).unwrap();
    a.words(&data);
    a.section(Section::Bss);
    a.bind(wstack).unwrap();
    a.zero(4 * 2 * 64); // depth 64 pairs is ample for the scaled sizes
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sorts() {
        let data = random_words(SEED, 500);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(reference(&data), expect);
    }

    #[test]
    fn reference_handles_duplicates_and_sorted_input() {
        assert_eq!(reference(&[5, 5, 5, 5]), vec![5, 5, 5, 5]);
        assert_eq!(reference(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(reference(&[4, 3, 2, 1]), vec![1, 2, 3, 4]);
        assert_eq!(reference(&[]), Vec::<u32>::new());
        assert_eq!(reference(&[9]), vec![9]);
    }
}

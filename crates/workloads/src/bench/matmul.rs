//! MatMul — single-precision matrix multiply (paper: 128×128, scaled to
//! 24×24). One of the paper's *small-footprint* workloads: all three
//! matrices fit comfortably in the L1 data cache, which is exactly what
//! drives its outsized beam System-Crash rate (§V-A).

use sea_isa::{s, Asm, Cond, Reg, Section, Shift, ShiftedReg};
use sea_kernel::user;

use crate::input::random_floats;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED_A: u32 = 0x3A70_0001;
const SEED_B: u32 = 0x3A70_0002;

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Default => 24,
        Scale::Tiny => 6,
    }
}

/// Host-side reference: `C = A × B`, accumulating in the same order (and
/// with the same two-rounding multiply-add) as the guest.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Builds the guest program and golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = dim(scale);
    let ma = random_floats(SEED_A, n * n);
    let mb = random_floats(SEED_B, n * n);
    let mc = reference(&ma, &mb, n);
    let result: Vec<u8> = mc.iter().flat_map(|f| f.to_le_bytes()).collect();

    let mut a = Asm::new();
    let entry = a.label("main");
    let la = a.label("mat_a");
    let lb = a.label("mat_b");
    let lc = a.label("mat_c");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    // r8 = A, r9 = B, r10 = C, r11 = n.
    a.addr(Reg::R8, la);
    a.addr(Reg::R9, lb);
    a.addr(Reg::R10, lc);
    a.mov32(Reg::R11, n as u32);

    let li = a.label("loop_i");
    let lj = a.label("loop_j");
    let lk = a.label("loop_k");
    // r4 = i, r5 = j, r6 = k.
    a.mov_imm(Reg::R4, 0);
    a.bind(li).unwrap();
    a.mov_imm(Reg::R5, 0);
    a.bind(lj).unwrap();
    // acc (s0) = 0.0
    a.mov_imm(Reg::R0, 0);
    a.vmov_from_core(s(0), Reg::R0);
    a.mov_imm(Reg::R6, 0);
    a.bind(lk).unwrap();
    // s1 = A[i*n + k]
    a.mla(Reg::R0, Reg::R4, Reg::R11, Reg::R6); // i*n + k
    a.add_shifted(
        Reg::R1,
        Reg::R8,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 2,
        },
    );
    a.vldr(s(1), Reg::R1, 0);
    // s2 = B[k*n + j]
    a.mla(Reg::R0, Reg::R6, Reg::R11, Reg::R5);
    a.add_shifted(
        Reg::R1,
        Reg::R9,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 2,
        },
    );
    a.vldr(s(2), Reg::R1, 0);
    // acc += s1 * s2
    a.vmla(s(0), s(1), s(2));
    a.add_imm(Reg::R6, Reg::R6, 1);
    a.cmp(Reg::R6, Reg::R11);
    a.b_if(Cond::Ne, lk);
    // C[i*n + j] = acc
    a.mla(Reg::R0, Reg::R4, Reg::R11, Reg::R5);
    a.add_shifted(
        Reg::R1,
        Reg::R10,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 2,
        },
    );
    a.vstr(s(0), Reg::R1, 0);
    a.add_imm(Reg::R5, Reg::R5, 1);
    a.cmp(Reg::R5, Reg::R11);
    a.b_if(Cond::Ne, lj);
    a.add_imm(Reg::R4, Reg::R4, 1);
    a.cmp(Reg::R4, Reg::R11);
    a.b_if(Cond::Ne, li);

    emit_finish(&mut a, lc, (n * n * 4) as u32);

    a.section(Section::Data);
    a.bind(la).unwrap();
    a.floats(&ma);
    a.bind(lb).unwrap();
    a.floats(&mb);
    a.section(Section::Bss);
    a.bind(lc).unwrap();
    a.zero((n * n * 4) as u32);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_identity_matrix() {
        // A × I = A for a 3×3 case.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let i = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(reference(&a, &i, 3), a);
    }

    #[test]
    fn build_is_deterministic() {
        let x = build(Scale::Tiny);
        let y = build(Scale::Tiny);
        assert_eq!(x.golden, y.golden);
    }
}

//! FFT — iterative radix-2 complex FFT in single precision (paper: 32768
//! points; scaled to 1024). Heavy FP and strided memory traffic.
//!
//! Guest and reference perform the *identical* sequence of f32 operations
//! (same association, same multiply/add split), so results match bit for
//! bit — no epsilon comparisons anywhere.

use sea_isa::{s, Asm, Cond, Reg, Section, Shift, ShiftedReg};
use sea_kernel::user;

use crate::input::random_floats;
use crate::runtime::{emit_finish, expected_output};
use crate::{BuiltWorkload, Scale};

const SEED: u32 = 0xFF70_0001;

fn points(scale: Scale) -> usize {
    match scale {
        Scale::Default => 1024,
        Scale::Tiny => 64,
    }
}

/// Bit-reversal permutation table for `n` (power of two).
pub fn bitrev_table(n: usize) -> Vec<u16> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| ((i as u32).reverse_bits() >> (32 - bits)) as u16)
        .collect()
}

/// Twiddle factors `w_k = exp(-2πik/n)` for `k` in `0..n/2`, interleaved
/// `(re, im)` in f32.
pub fn twiddles(n: usize) -> Vec<f32> {
    let mut t = Vec::with_capacity(n);
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        t.push(ang.cos() as f32);
        t.push(ang.sin() as f32);
    }
    t
}

/// Host-side reference FFT over interleaved `(re, im)` f32 data, mirroring
/// the guest's exact operation order.
pub fn reference(data: &[f32], n: usize) -> Vec<f32> {
    let mut a = data.to_vec();
    let rev = bitrev_table(n);
    for (i, &r) in rev.iter().enumerate().take(n) {
        let j = r as usize;
        if i < j {
            a.swap(2 * i, 2 * j);
            a.swap(2 * i + 1, 2 * j + 1);
        }
    }
    let tw = twiddles(n);
    let mut half = 1usize;
    let mut step = n / 2;
    while half < n {
        let len = half * 2;
        let mut base = 0;
        while base < n {
            for j in 0..half {
                let (wr, wi) = (tw[2 * (j * step)], tw[2 * (j * step) + 1]);
                let ui = base + j;
                let vi = base + j + half;
                let (ur, uim) = (a[2 * ui], a[2 * ui + 1]);
                let (vr, vim) = (a[2 * vi], a[2 * vi + 1]);
                // Complex multiply v*w, matching the guest op-for-op.
                let tr = vr * wr - vim * wi;
                let ti = vr * wi + vim * wr;
                a[2 * ui] = ur + tr;
                a[2 * ui + 1] = uim + ti;
                a[2 * vi] = ur - tr;
                a[2 * vi + 1] = uim - ti;
            }
            base += len;
        }
        half = len;
        step /= 2;
    }
    a
}

/// Builds the guest program and golden output.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = points(scale);
    let mut data = random_floats(SEED, 2 * n);
    // Scale inputs to ~[0,1) to keep magnitudes tame over 10 stages.
    for v in &mut data {
        *v /= 1000.0;
    }
    let out = reference(&data, n);
    let result: Vec<u8> = out.iter().flat_map(|f| f.to_le_bytes()).collect();

    let rev = bitrev_table(n);
    let tw = twiddles(n);

    let mut a = Asm::new();
    let entry = a.label("main");
    let ldata = a.label("fft_data");
    let lrev = a.label("fft_rev");
    let ltw = a.label("fft_tw");

    a.bind(entry).unwrap();
    user::alive(&mut a);
    a.addr(Reg::R8, ldata); // r8 = data
    a.addr(Reg::R9, lrev); // r9 = bit-reverse table (u16)
    a.addr(Reg::R10, ltw); // r10 = twiddles

    // ---- bit-reversal permutation ----
    let brv = a.label("brv_loop");
    let brv_skip = a.label("brv_skip");
    a.mov_imm(Reg::R4, 0); // i
    a.bind(brv).unwrap();
    // j = rev[i]
    a.lsl(Reg::R0, Reg::R4, 1);
    a.mem(
        true,
        sea_isa::MemSize::Half,
        Reg::R5,
        Reg::R9,
        sea_isa::MemOffset::Reg {
            rm: Reg::R0,
            shl: 0,
        },
        sea_isa::AddrMode::offset(),
    );
    a.cmp(Reg::R4, Reg::R5);
    a.b_if(Cond::Cs, brv_skip); // only swap when i < j
                                // swap complex elements i and j (each 8 bytes).
    a.add_shifted(
        Reg::R0,
        Reg::R8,
        ShiftedReg {
            rm: Reg::R4,
            shift: Shift::Lsl,
            amount: 3,
        },
    );
    a.add_shifted(
        Reg::R1,
        Reg::R8,
        ShiftedReg {
            rm: Reg::R5,
            shift: Shift::Lsl,
            amount: 3,
        },
    );
    a.ldr(Reg::R2, Reg::R0, 0);
    a.ldr(Reg::R3, Reg::R1, 0);
    a.str(Reg::R3, Reg::R0, 0);
    a.str(Reg::R2, Reg::R1, 0);
    a.ldr(Reg::R2, Reg::R0, 4);
    a.ldr(Reg::R3, Reg::R1, 4);
    a.str(Reg::R3, Reg::R0, 4);
    a.str(Reg::R2, Reg::R1, 4);
    a.bind(brv_skip).unwrap();
    a.add_imm(Reg::R4, Reg::R4, 1);
    a.cmp_imm(Reg::R4, n as u32);
    a.b_if(Cond::Ne, brv);

    // ---- butterfly stages ----
    // r4 = half, r5 = step, r6 = base, r11 = j.
    let stage = a.label("stage");
    let group = a.label("group");
    let bfly = a.label("bfly");
    let group_next = a.label("group_next");
    let stage_next = a.label("stage_next");
    let done = a.label("fft_done");
    a.mov_imm(Reg::R4, 1);
    a.mov32(Reg::R5, (n / 2) as u32);
    a.bind(stage).unwrap();
    a.cmp_imm(Reg::R4, n as u32);
    a.b_if(Cond::Cs, done);
    a.mov_imm(Reg::R6, 0);
    a.bind(group).unwrap();
    a.mov_imm(Reg::R11, 0);
    a.bind(bfly).unwrap();
    // twiddle index = j*step → address = tw + (j*step)*8
    a.mul(Reg::R0, Reg::R11, Reg::R5);
    a.add_shifted(
        Reg::R1,
        Reg::R10,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 3,
        },
    );
    a.vldr(s(4), Reg::R1, 0); // wr
    a.vldr(s(5), Reg::R1, 1); // wi
                              // u index = base + j; v index = u + half
    a.add(Reg::R0, Reg::R6, Reg::R11);
    a.add_shifted(
        Reg::R1,
        Reg::R8,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 3,
        },
    );
    a.add(Reg::R0, Reg::R0, Reg::R4);
    a.add_shifted(
        Reg::R2,
        Reg::R8,
        ShiftedReg {
            rm: Reg::R0,
            shift: Shift::Lsl,
            amount: 3,
        },
    );
    a.vldr(s(0), Reg::R1, 0); // ur
    a.vldr(s(1), Reg::R1, 1); // ui
    a.vldr(s(2), Reg::R2, 0); // vr
    a.vldr(s(3), Reg::R2, 1); // vi
                              // tr = vr*wr - vi*wi ; ti = vr*wi + vi*wr
    a.vmul(s(6), s(2), s(4));
    a.vmul(s(7), s(3), s(5));
    a.vsub(s(6), s(6), s(7)); // tr
    a.vmul(s(7), s(2), s(5));
    a.vmul(s(8), s(3), s(4));
    a.vadd(s(7), s(7), s(8)); // ti
                              // u' = u + t ; v' = u - t
    a.vadd(s(9), s(0), s(6));
    a.vadd(s(10), s(1), s(7));
    a.vsub(s(11), s(0), s(6));
    a.vsub(s(12), s(1), s(7));
    a.vstr(s(9), Reg::R1, 0);
    a.vstr(s(10), Reg::R1, 1);
    a.vstr(s(11), Reg::R2, 0);
    a.vstr(s(12), Reg::R2, 1);
    a.add_imm(Reg::R11, Reg::R11, 1);
    a.cmp(Reg::R11, Reg::R4);
    a.b_if(Cond::Ne, bfly);
    a.bind(group_next).unwrap();
    // base += 2*half
    a.add(Reg::R6, Reg::R6, Reg::R4);
    a.add(Reg::R6, Reg::R6, Reg::R4);
    a.cmp_imm(Reg::R6, n as u32);
    a.b_if(Cond::Cc, group);
    a.bind(stage_next).unwrap();
    a.lsl(Reg::R4, Reg::R4, 1);
    a.lsr(Reg::R5, Reg::R5, 1);
    a.b(stage);

    a.bind(done).unwrap();
    emit_finish(&mut a, ldata, (8 * n) as u32);

    a.section(Section::Rodata);
    a.bind(lrev).unwrap();
    for r in &rev {
        a.half(*r);
    }
    a.align(4);
    a.bind(ltw).unwrap();
    a.floats(&tw);
    a.section(Section::Data);
    a.bind(ldata).unwrap();
    a.floats(&data);
    a.section(Section::Text);

    let image = a.finish(entry).unwrap();
    BuiltWorkload {
        image,
        golden: expected_output(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_is_an_involution() {
        let rev = bitrev_table(64);
        for i in 0..64 {
            assert_eq!(rev[rev[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        // FFT(δ) = all-ones spectrum.
        let n = 16;
        let mut data = vec![0f32; 2 * n];
        data[0] = 1.0;
        let out = reference(&data, n);
        for k in 0..n {
            assert!((out[2 * k] - 1.0).abs() < 1e-6, "re[{k}]");
            assert!(out[2 * k + 1].abs() < 1e-6, "im[{k}]");
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let n = 8;
        let data: Vec<f32> = (0..n).flat_map(|_| [1.0f32, 0.0]).collect();
        let out = reference(&data, n);
        assert!((out[0] - n as f32).abs() < 1e-5);
        for k in 1..n {
            assert!(out[2 * k].abs() < 1e-5 && out[2 * k + 1].abs() < 1e-5);
        }
    }
}

//! Deterministic input generation.
//!
//! Every benchmark derives its input from a fixed-seed xorshift32 stream,
//! so the guest image, the Rust reference implementation and the golden
//! output are all reproducible bit-for-bit — the paper's requirement that
//! fault injection and beam runs use "the exact same input vector" (§IV-A).

/// A xorshift32 PRNG. Deterministic, seedable, and intentionally simple
/// enough to re-derive anywhere.
#[derive(Clone, Copy, Debug)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u32) -> XorShift32 {
        XorShift32 {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next value in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }

    /// Next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() >> 16) as u8
    }

    /// Fills a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.next_u8();
        }
    }

    /// A positive, finite `f32` in roughly `[0, 1000)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() % 1_000_000) as f32 / 1000.0
    }
}

/// Bytes of `n` pseudo-random values from `seed`.
pub fn random_bytes(seed: u32, n: usize) -> Vec<u8> {
    let mut rng = XorShift32::new(seed);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

/// `n` pseudo-random words from `seed`.
pub fn random_words(seed: u32, n: usize) -> Vec<u32> {
    let mut rng = XorShift32::new(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// `n` positive pseudo-random floats from `seed`.
pub fn random_floats(seed: u32, n: usize) -> Vec<f32> {
    let mut rng = XorShift32::new(seed);
    (0..n).map(|_| rng.next_f32()).collect()
}

/// A deterministic grayscale test image with smooth gradients, edges and
/// corner features (for the Susan and JPEG benchmarks).
pub fn test_image(width: usize, height: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift32::new(seed);
    let mut img = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            // Gradient base + blocky structure + light noise.
            let grad = (x * 255 / width.max(1)) as u32;
            let block = if (x / 8 + y / 8) % 2 == 0 { 64 } else { 0 };
            let noise = rng.below(16);
            img[y * width + x] = ((grad / 2 + block + noise).min(255)) as u8;
        }
    }
    // A bright rectangle to provide strong corners/edges.
    for y in height / 4..height / 2 {
        for x in width / 4..width / 2 {
            img[y * width + x] = 230;
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        assert_eq!(random_bytes(7, 16), random_bytes(7, 16));
        assert_ne!(random_bytes(7, 16), random_bytes(8, 16));
        let w = random_words(1, 4);
        assert_eq!(w.len(), 4);
        assert!(w.iter().any(|&x| x != 0));
    }

    #[test]
    fn floats_are_positive_and_finite() {
        for f in random_floats(3, 1000) {
            assert!(f.is_finite() && (0.0..1000.0).contains(&f));
        }
    }

    #[test]
    fn test_image_has_structure() {
        let img = test_image(40, 48, 5);
        assert_eq!(img.len(), 40 * 48);
        let distinct: std::collections::BTreeSet<_> = img.iter().collect();
        assert!(distinct.len() > 32, "image should not be flat");
        assert_eq!(img, test_image(40, 48, 5));
    }

    #[test]
    fn zero_seed_is_remapped() {
        assert_ne!(XorShift32::new(0).next_u32(), 0);
    }
}

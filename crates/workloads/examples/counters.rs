//! Prints the §IV-D counter profile of every benchmark (the 7 counters the
//! paper compares between board and simulator).
use sea_microarch::MachineConfig;
use sea_platform::golden_run;
use sea_workloads::{Scale, Workload};
fn main() {
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "br/kinst", "brmiss%", "l1d/kinst", "l1dmiss%", "l2miss/ki", "dtlb/ki"
    );
    for w in Workload::ALL {
        let b = w.build(Scale::Default);
        let g = golden_run(
            MachineConfig::cortex_a9_scaled(),
            &b.image,
            &sea_kernel::KernelConfig::default(),
            200_000_000,
        )
        .unwrap();
        let c = g.counters;
        let ki = g.instructions as f64 / 1000.0;
        println!(
            "{:<14} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.2} {:>8.2}",
            w.name(),
            c.branches as f64 / ki,
            100.0 * c.branch_misses as f64 / c.branches.max(1) as f64,
            c.l1d_access as f64 / ki,
            100.0 * c.l1d_miss as f64 / c.l1d_access.max(1) as f64,
            c.l2_miss as f64 / ki,
            c.dtlb_miss as f64 / ki,
        );
    }
}

use sea_microarch::MachineConfig;
use sea_platform::golden_run;
use sea_workloads::{Scale, Workload};
fn main() {
    let mut total = 0u64;
    for w in Workload::ALL {
        let b = w.build(Scale::Default);
        let t0 = std::time::Instant::now();
        let g = golden_run(
            MachineConfig::cortex_a9(),
            &b.image,
            &sea_kernel::KernelConfig::default(),
            200_000_000,
        )
        .unwrap();
        println!(
            "{:<14} {:>10} cycles {:>10} insts  {:>7.1}ms wall  out={}B",
            w.name(),
            g.cycles,
            g.instructions,
            t0.elapsed().as_secs_f64() * 1e3,
            g.output.len()
        );
        total += g.cycles;
    }
    println!("total: {total} cycles");
}

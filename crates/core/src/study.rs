//! The end-to-end study: both methodologies over the benchmark suite.

use sea_analysis::{beam_fit, fi_fit, Comparison, Overview};
use sea_beam::{measure_fit_raw, run_session, BeamConfig, BeamResult, RawFitResult};
use sea_injection::{run_campaign, CampaignConfig, CampaignResult};
use sea_kernel::KernelConfig;
use sea_microarch::MachineConfig;
use sea_workloads::{Scale, Workload};

/// Everything measured for one workload.
#[derive(Clone, Debug)]
pub struct WorkloadStudy {
    /// The workload.
    pub workload: Workload,
    /// Fault-injection campaign results (per-component AVFs).
    pub campaign: CampaignResult,
    /// Beam session results.
    pub beam: BeamResult,
    /// FIT comparison derived from both.
    pub comparison: Comparison,
}

/// Results across the whole suite.
#[derive(Clone, Debug)]
pub struct StudyResult {
    /// Per-workload results, in the paper's order.
    pub workloads: Vec<WorkloadStudy>,
    /// The Fig 10 aggregate.
    pub overview: Overview,
    /// Per-bit raw FIT used for the AVF→FIT conversion.
    pub fit_raw: f64,
}

impl StudyResult {
    /// All comparisons, borrowed.
    pub fn comparisons(&self) -> Vec<Comparison> {
        self.workloads
            .iter()
            .map(|w| w.comparison.clone())
            .collect()
    }
}

/// Study error.
#[derive(Debug)]
pub enum StudyError {
    /// An injection campaign failed.
    Campaign(sea_injection::CampaignError),
    /// A beam session failed.
    Beam(sea_beam::BeamError),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Campaign(e) => write!(f, "injection campaign failed: {e}"),
            StudyError::Beam(e) => write!(f, "beam session failed: {e}"),
        }
    }
}

impl std::error::Error for StudyError {}

/// Configuration of a full reproduction study.
///
/// The defaults give a campaign that completes in minutes; the paper-scale
/// equivalents (`samples_per_component = 1000`, more strikes) are a field
/// away.
#[derive(Clone, Debug)]
pub struct Study {
    /// Benchmark input scale.
    pub scale: Scale,
    /// Machine configuration (shared by both methodologies, Table II).
    pub machine: MachineConfig,
    /// Kernel configuration.
    pub kernel: KernelConfig,
    /// Injected faults per component per workload (paper: 1,000).
    pub samples_per_component: u32,
    /// Sampled beam strikes per workload.
    pub beam_strikes: u32,
    /// Per-bit raw FIT for the AVF→FIT conversion (paper: 2.76×10⁻⁵,
    /// measured with the L1 probe — see [`Study::measure_fit_raw`]).
    pub fit_raw: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Cycle budget for fault-free reference runs.
    pub golden_budget_cycles: u64,
    /// Journal directory for outcome/strike logs (None = no journal).
    pub journal_dir: Option<std::path::PathBuf>,
    /// Resume from an existing journal instead of starting over.
    pub resume: bool,
    /// Journal on-disk format: CRC-framed binary `.seaj` (default) or
    /// plain JSONL compatibility mode. Runtime-only: a binary journal's
    /// JSONL export is byte-identical to a JSONL-mode journal.
    pub journal_format: sea_injection::JournalFormat,
    /// Journal fsync cadence (how much recent work a power cut may cost).
    pub journal_fsync: sea_injection::FsyncPolicy,
    /// Quarantine file for anomaly records (None = no quarantine file;
    /// anomalies are still counted in results).
    pub quarantine: Option<std::path::PathBuf>,
    /// Per-run wall-clock budget in milliseconds (0 = disabled).
    pub run_wall_ms: u64,
    /// Persist golden-run checkpoints under this directory (one
    /// subdirectory per workload and methodology) and reuse matching ones
    /// on later runs. None with `checkpoint_interval == 0` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Initial checkpoint epoch interval in cycles (0 = auto). Setting
    /// this without `checkpoint_dir` keeps checkpoints in memory for the
    /// duration of each campaign/session.
    pub checkpoint_interval: u64,
    /// Write per-workload attribution profiles (hotspots + predicted-vs-
    /// measured AVF) to this file. None = profiling stays off and no
    /// profiler is ever attached to any machine.
    pub profile_out: Option<std::path::PathBuf>,
    /// Write a Chrome trace-event JSON rendering of the captured trace to
    /// this file at the end of the run (load via `chrome://tracing` or
    /// Perfetto).
    pub chrome_trace: Option<std::path::PathBuf>,
    /// Rewrite a Prometheus text-exposition snapshot of live campaign
    /// metrics to this file (~1 Hz) while campaigns run.
    pub prom_out: Option<std::path::PathBuf>,
    /// Arm the microarchitectural execution fast path (µop cache +
    /// translation latches) on every injected/struck machine. Bit-exact by
    /// construction — journals, counters and verdicts are byte-identical
    /// either way — so this is a pure speed knob like `threads`.
    pub fast_path: bool,
    /// Serve each run's machine from a per-worker warp cursor
    /// (`sea_injection::warp`) instead of re-simulating the fault-free
    /// prefix from the nearest checkpoint (or reset). Bit-exact like
    /// `fast_path` — the cursor clone is bit-equivalent to a from-reset
    /// machine by the determinism contract — so journals and verdicts are
    /// byte-identical either way; a pure speed knob.
    pub warp: bool,
    /// Bind address for the live observability HTTP server (e.g.
    /// `127.0.0.1:9099`; `None` = no server). Serves `/status`,
    /// `/metrics`, `/events`, `/journal/tail` and `/healthz` while
    /// campaigns and sessions run. A runtime-only knob: journals are
    /// byte-identical with the server on or off.
    pub serve: Option<String>,
    /// Stop each campaign/session early once every tracked stratum's
    /// adjusted 99%-confidence error margin falls to or below this value
    /// (`None` = run every planned sample). Early-stopped journals are a
    /// byte-prefix of the full run's, so a later resume without the knob
    /// completes the campaign.
    pub stop_at_margin: Option<f64>,
}

impl Default for Study {
    fn default() -> Study {
        Study {
            scale: Scale::Default,
            machine: MachineConfig::cortex_a9_scaled(),
            kernel: KernelConfig::default(),
            samples_per_component: 150,
            beam_strikes: 600,
            fit_raw: 2.76e-5,
            seed: 0x5EA_0001,
            threads: 0,
            golden_budget_cycles: 500_000_000,
            journal_dir: None,
            resume: false,
            journal_format: sea_injection::JournalFormat::default(),
            journal_fsync: sea_injection::FsyncPolicy::default(),
            quarantine: None,
            run_wall_ms: 0,
            checkpoint_dir: None,
            checkpoint_interval: 0,
            profile_out: None,
            chrome_trace: None,
            prom_out: None,
            fast_path: false,
            warp: false,
            serve: None,
            stop_at_margin: None,
        }
    }
}

impl Study {
    /// The supervision policy both methodologies run under.
    fn supervisor_config(&self) -> sea_injection::SupervisorConfig {
        sea_injection::SupervisorConfig {
            run_wall_ms: self.run_wall_ms,
            quarantine: self.quarantine.clone(),
            ..sea_injection::SupervisorConfig::default()
        }
    }

    /// The checkpoint policy for one workload under one methodology.
    /// Checkpoint provenance hashes differ between injection and beam
    /// (and between workloads), so each (workload, kind) pair gets its own
    /// subdirectory — sharing one directory would make the two
    /// methodologies endlessly invalidate each other's checkpoints.
    fn checkpoint_policy(
        &self,
        workload: &str,
        kind: &str,
    ) -> Option<sea_injection::CheckpointPolicy> {
        if self.checkpoint_dir.is_none() && self.checkpoint_interval == 0 {
            return None;
        }
        Some(sea_injection::CheckpointPolicy {
            dir: self
                .checkpoint_dir
                .as_ref()
                .map(|d| d.join(format!("{}-{kind}", workload.replace(' ', "_")))),
            interval: self.checkpoint_interval,
        })
    }

    /// The journal location both methodologies write to (they use
    /// distinct file suffixes inside the directory).
    fn journal_spec(&self) -> Option<sea_injection::JournalSpec> {
        self.journal_dir
            .as_ref()
            .map(|dir| sea_injection::JournalSpec {
                dir: dir.clone(),
                resume: self.resume,
                format: self.journal_format,
                fsync: self.journal_fsync,
            })
    }

    /// The injection-campaign configuration this study uses.
    pub fn injection_config(&self) -> CampaignConfig {
        CampaignConfig {
            machine: self.machine,
            kernel: self.kernel,
            samples_per_component: self.samples_per_component,
            components: sea_microarch::Component::ALL.to_vec(),
            seed: self.seed,
            threads: self.threads,
            fault_model: sea_injection::FaultModel::SingleBit,
            golden_budget_cycles: self.golden_budget_cycles,
            supervisor: self.supervisor_config(),
            journal: self.journal_spec(),
            checkpoints: None,
            fast_path: self.fast_path,
            serve: self.serve.clone(),
            stop_at_margin: self.stop_at_margin,
            warp: self.warp.then(sea_injection::WarpPolicy::default),
        }
    }

    /// The beam configuration this study uses.
    pub fn beam_config(&self) -> BeamConfig {
        BeamConfig {
            machine: self.machine,
            kernel: self.kernel,
            sigma_bit: sea_beam::fit_to_sigma(self.fit_raw),
            seed: self.seed,
            threads: self.threads,
            golden_budget_cycles: self.golden_budget_cycles,
            supervisor: self.supervisor_config(),
            journal: self.journal_spec(),
            fast_path: self.fast_path,
            warp: self.warp,
            serve: self.serve.clone(),
            stop_at_margin: self.stop_at_margin,
            ..BeamConfig::default()
        }
    }

    /// The injection-campaign configuration for one workload, with the
    /// study's checkpoint policy applied (the policy is per-workload
    /// because persisted checkpoints carry per-workload provenance).
    pub fn injection_config_for(&self, w: Workload) -> CampaignConfig {
        let mut cfg = self.injection_config();
        cfg.checkpoints = self.checkpoint_policy(w.name(), "inject");
        cfg
    }

    /// The beam configuration for one workload, with the study's
    /// checkpoint policy applied.
    pub fn beam_config_for(&self, w: Workload) -> BeamConfig {
        let mut cfg = self.beam_config();
        cfg.checkpoints = self.checkpoint_policy(w.name(), "beam");
        cfg
    }

    /// Runs both methodologies for one workload.
    ///
    /// # Errors
    ///
    /// Propagates campaign/beam failures (broken golden runs).
    pub fn run_workload(&self, w: Workload) -> Result<WorkloadStudy, StudyError> {
        let built = w.build(self.scale);
        let icfg = self.injection_config_for(w);
        let campaign = run_campaign(w.name(), &built, &icfg).map_err(StudyError::Campaign)?;
        let bcfg = self.beam_config_for(w);
        let beam =
            run_session(w.name(), &built, &bcfg, self.beam_strikes).map_err(StudyError::Beam)?;
        let comparison = Comparison {
            workload: w.name().to_string(),
            fi: fi_fit(&campaign, self.fit_raw),
            beam: beam_fit(&beam),
        };
        Ok(WorkloadStudy {
            workload: w,
            campaign,
            beam,
            comparison,
        })
    }

    /// Runs the full 13-benchmark study.
    ///
    /// # Errors
    ///
    /// Propagates the first per-workload failure.
    pub fn run_all(&self) -> Result<StudyResult, StudyError> {
        self.run_suite(&Workload::ALL)
    }

    /// Runs the study over a chosen subset of benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates the first per-workload failure.
    pub fn run_suite(&self, suite: &[Workload]) -> Result<StudyResult, StudyError> {
        let mut workloads = Vec::new();
        for &w in suite {
            workloads.push(self.run_workload(w)?);
        }
        let comparisons: Vec<Comparison> = workloads.iter().map(|w| w.comparison.clone()).collect();
        Ok(StudyResult {
            overview: Overview::from_comparisons(&comparisons),
            workloads,
            fit_raw: self.fit_raw,
        })
    }

    /// Runs the paper's §VI FIT_raw measurement (the L1 probe under beam).
    pub fn measure_fit_raw(&self, strikes: u32) -> RawFitResult {
        measure_fit_raw(&self.beam_config(), strikes)
    }

    /// Profiles one workload's golden run (residency/ACE tracking plus the
    /// per-PC cycle sampler), when `profile_out` asks for profiling.
    ///
    /// Runs on a dedicated boot — campaign machines never carry profilers,
    /// so journals and checkpoints are byte-identical with profiling on or
    /// off. Returns `None` when profiling is off or the golden run is not
    /// clean (campaigns will surface that error themselves).
    pub fn profile_workload(&self, w: Workload) -> Option<sea_profile::ProfileData> {
        self.profile_out.as_ref()?;
        let built = w.build(self.scale);
        sea_platform::profiled_golden_run(
            self.machine,
            &built.image,
            &self.kernel,
            self.golden_budget_cycles,
        )
        .ok()
        .map(|(_, profile)| profile)
    }
}

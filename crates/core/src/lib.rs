//! # sea-core — soft-error assessment for ARM-class CPUs
//!
//! SEA reproduces, end to end and from scratch, the methodology-comparison
//! study of *"Demystifying Soft Error Assessment Strategies on ARM CPUs:
//! Microarchitectural Fault Injection vs. Neutron Beam Experiments"*
//! (DSN 2019): the same 13 MiBench-class workloads run on a kernel over a
//! cycle-level microarchitectural CPU model, assessed both by statistical
//! fault injection (the GeFIN equivalent) and by a Monte-Carlo neutron-
//! beam model of the physical platform — and the two FIT estimates are
//! compared per effect class.
//!
//! This crate is the facade: [`Study`] orchestrates both methodologies,
//! and the building blocks re-export from the subsystem crates
//! ([`isa`], [`microarch`], [`kernel`], [`platform`], [`workloads`],
//! [`injection`], [`beam`], [`analysis`], [`trace`], [`profile`],
//! [`observe`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use sea_core::{Study, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let study = Study { samples_per_component: 50, beam_strikes: 100, ..Study::default() };
//! let r = study.run_workload(Workload::MatMul)?;
//! println!(
//!     "{}: FI total {:.1} FIT vs beam total {:.1} FIT",
//!     r.workload,
//!     r.comparison.fi.total(),
//!     r.comparison.beam.total()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod setup;
mod spec;
mod study;

pub use setup::{setup_rows, SetupRow};
pub use spec::{workload_by_name, SpecError, StudySpec};
pub use study::{Study, StudyError, StudyResult, WorkloadStudy};

pub use sea_analysis as analysis;
pub use sea_beam as beam;
pub use sea_durable as durable;
pub use sea_injection as injection;
pub use sea_isa as isa;
pub use sea_kernel as kernel;
pub use sea_microarch as microarch;
pub use sea_observe as observe;
pub use sea_platform as platform;
pub use sea_profile as profile;
pub use sea_trace as trace;
pub use sea_workloads as workloads;

pub use sea_analysis::{beam_fit, fi_fit, Comparison, FitRates, Overview};
pub use sea_beam::{BeamConfig, BeamResult, RawFitResult};
pub use sea_injection::{
    CampaignConfig, CampaignResult, ClassCounts, FsyncPolicy, JournalAudit, JournalFormat,
    JournalSpec, RunAnomaly, SupervisionStats, SupervisorConfig,
};
pub use sea_microarch::{Component, MachineConfig};
pub use sea_platform::FaultClass;
pub use sea_workloads::{Scale, Workload};

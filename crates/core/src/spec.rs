//! Wire-format study specification.
//!
//! The fleet daemon, its worker processes and the submission client all
//! need to agree on *exactly* the same [`Study`] — journal identity
//! headers hash the campaign configuration, so a spec that deserializes
//! even slightly differently in the worker than in the daemon would make
//! every shard journal unmergeable. This module is that contract: a
//! [`StudySpec`] is a `Study` plus a benchmark suite, (de)serialized
//! through the same hand-rolled JSON as everything else (DESIGN.md §5),
//! with a canonical rendering so `to_json` ∘ `from_json` is the identity
//! on documents it produced.
//!
//! Placement knobs (journal directories, checkpoint directories,
//! quarantine files, serve addresses, output paths) are deliberately
//! *not* part of the wire format: the daemon assigns per-shard locations
//! itself, and none of them participate in the configuration hash.

use crate::study::Study;
use sea_trace::json::{self, Json, ObjWriter};
use sea_workloads::{Scale, Workload};

/// A submittable study: the experiment parameters plus the benchmark
/// suite to run them over.
#[derive(Clone, Debug)]
pub struct StudySpec {
    /// The experiment parameters. Path/serve fields are ignored by
    /// serialization (the daemon owns placement).
    pub study: Study,
    /// Benchmarks to run, in order.
    pub suite: Vec<Workload>,
}

/// Why a spec document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Parse(String),
    /// A field has the wrong type or an invalid value.
    Field(&'static str, String),
    /// An unrecognized benchmark name in `suite`.
    UnknownWorkload(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec is not valid JSON: {e}"),
            SpecError::Field(k, why) => write!(f, "spec field '{k}': {why}"),
            SpecError::UnknownWorkload(w) => write!(f, "unknown workload '{w}' in suite"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Look up a benchmark by its paper display name (`Workload::name`).
pub fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.name() == name)
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Default => "default",
        Scale::Tiny => "tiny",
    }
}

fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "default" => Some(Scale::Default),
        "tiny" => Some(Scale::Tiny),
        _ => None,
    }
}

impl StudySpec {
    /// A spec over the full Table III suite with default parameters.
    pub fn all(study: Study) -> StudySpec {
        StudySpec {
            study,
            suite: Workload::ALL.to_vec(),
        }
    }

    /// Canonical single-line JSON rendering.
    ///
    /// Fields appear in a fixed order, so two equal specs render to equal
    /// bytes (the fleet daemon derives study identifiers by hashing this
    /// document).
    pub fn to_json(&self) -> String {
        let s = &self.study;
        let mut o = ObjWriter::new();
        o.str_field("scale", scale_name(s.scale))
            .u64_field("samples_per_component", u64::from(s.samples_per_component))
            .u64_field("beam_strikes", u64::from(s.beam_strikes))
            .f64_field("fit_raw", s.fit_raw)
            .str_field("seed", &format!("{:#x}", s.seed))
            .u64_field("threads", s.threads as u64)
            .u64_field("golden_budget_cycles", s.golden_budget_cycles)
            .str_field("journal_format", &s.journal_format.to_string())
            .str_field("journal_fsync", &s.journal_fsync.to_string())
            .u64_field("run_wall_ms", s.run_wall_ms)
            .u64_field("checkpoint_interval", s.checkpoint_interval)
            .bool_field("fast_path", s.fast_path)
            .bool_field("warp", s.warp);
        match s.stop_at_margin {
            Some(m) => o.f64_field("stop_at_margin", m),
            None => o.raw_field("stop_at_margin", "null"),
        };
        let mut suite = String::from("[");
        for (i, w) in self.suite.iter().enumerate() {
            if i > 0 {
                suite.push(',');
            }
            json::write_escaped(w.name(), &mut suite);
        }
        suite.push(']');
        o.raw_field("suite", &suite);
        o.finish()
    }

    /// Parse a spec document.
    ///
    /// Every parameter is optional — omitted fields keep the
    /// [`Study::default`] value — but present fields must be well-typed,
    /// and unknown benchmark names are an error, so a typo'd spec fails
    /// loudly instead of silently running the wrong experiment.
    ///
    /// # Errors
    ///
    /// [`SpecError`] describing the first offending field.
    pub fn from_json(text: &str) -> Result<StudySpec, SpecError> {
        let doc = json::parse(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        if !matches!(doc, Json::Obj(_)) {
            return Err(SpecError::Parse("expected a JSON object".to_string()));
        }
        let mut s = Study::default();
        if let Some(v) = doc.get("scale") {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::Field("scale", "expected a string".into()))?;
            s.scale = scale_by_name(name).ok_or_else(|| {
                SpecError::Field("scale", format!("'{name}' (expected default|tiny)"))
            })?;
        }
        if let Some(v) = doc.get("samples_per_component") {
            s.samples_per_component = u32_field(v, "samples_per_component")?;
        }
        if let Some(v) = doc.get("beam_strikes") {
            s.beam_strikes = u32_field(v, "beam_strikes")?;
        }
        if let Some(v) = doc.get("fit_raw") {
            s.fit_raw = v
                .as_f64()
                .ok_or_else(|| SpecError::Field("fit_raw", "expected a number".into()))?;
        }
        if let Some(v) = doc.get("seed") {
            s.seed = seed_field(v)?;
        }
        if let Some(v) = doc.get("threads") {
            s.threads = u32_field(v, "threads")? as usize;
        }
        if let Some(v) = doc.get("golden_budget_cycles") {
            s.golden_budget_cycles = v.as_u64().ok_or_else(|| {
                SpecError::Field("golden_budget_cycles", "expected an integer".into())
            })?;
        }
        if let Some(v) = doc.get("journal_format") {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::Field("journal_format", "expected a string".into()))?;
            s.journal_format = crate::JournalFormat::parse(name)
                .map_err(|e| SpecError::Field("journal_format", e))?;
        }
        if let Some(v) = doc.get("journal_fsync") {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::Field("journal_fsync", "expected a string".into()))?;
            s.journal_fsync = crate::FsyncPolicy::parse(name)
                .map_err(|e| SpecError::Field("journal_fsync", e))?;
        }
        if let Some(v) = doc.get("run_wall_ms") {
            s.run_wall_ms = v
                .as_u64()
                .ok_or_else(|| SpecError::Field("run_wall_ms", "expected an integer".into()))?;
        }
        if let Some(v) = doc.get("checkpoint_interval") {
            s.checkpoint_interval = v.as_u64().ok_or_else(|| {
                SpecError::Field("checkpoint_interval", "expected an integer".into())
            })?;
        }
        if let Some(v) = doc.get("fast_path") {
            s.fast_path = v
                .as_bool()
                .ok_or_else(|| SpecError::Field("fast_path", "expected a boolean".into()))?;
        }
        if let Some(v) = doc.get("warp") {
            s.warp = v
                .as_bool()
                .ok_or_else(|| SpecError::Field("warp", "expected a boolean".into()))?;
        }
        match doc.get("stop_at_margin") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let m = v.as_f64().ok_or_else(|| {
                    SpecError::Field("stop_at_margin", "expected a number or null".into())
                })?;
                // NaN fails this check too: only strictly positive passes.
                if m <= 0.0 || m.is_nan() {
                    return Err(SpecError::Field(
                        "stop_at_margin",
                        "must be positive".into(),
                    ));
                }
                s.stop_at_margin = Some(m);
            }
        }
        let suite = match doc.get("suite") {
            None => Workload::ALL.to_vec(),
            Some(Json::Arr(items)) => {
                let mut suite = Vec::with_capacity(items.len());
                for item in items {
                    let name = item
                        .as_str()
                        .ok_or_else(|| SpecError::Field("suite", "expected strings".into()))?;
                    suite.push(
                        workload_by_name(name)
                            .ok_or_else(|| SpecError::UnknownWorkload(name.to_string()))?,
                    );
                }
                if suite.is_empty() {
                    return Err(SpecError::Field("suite", "must not be empty".into()));
                }
                suite
            }
            Some(_) => return Err(SpecError::Field("suite", "expected an array".into())),
        };
        Ok(StudySpec { study: s, suite })
    }
}

fn u32_field(v: &Json, k: &'static str) -> Result<u32, SpecError> {
    let n = v
        .as_u64()
        .ok_or_else(|| SpecError::Field(k, "expected an integer".into()))?;
    u32::try_from(n).map_err(|_| SpecError::Field(k, "out of range".into()))
}

/// Seeds are full-width u64s, which JSON numbers only hold exactly up to
/// 2^53 — so the canonical form is a hex string, but plain integers are
/// accepted too.
fn seed_field(v: &Json) -> Result<u64, SpecError> {
    if let Some(n) = v.as_u64() {
        return Ok(n);
    }
    let text = v
        .as_str()
        .ok_or_else(|| SpecError::Field("seed", "expected an integer or hex string".into()))?;
    let digits = text.strip_prefix("0x").unwrap_or(text);
    u64::from_str_radix(digits, 16).map_err(|_| SpecError::Field("seed", "bad hex".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_modulo_placement(a: &Study, b: &Study) -> bool {
        // Compare only the wire fields; placement knobs stay default in
        // round-trips anyway.
        a.scale == b.scale
            && a.samples_per_component == b.samples_per_component
            && a.beam_strikes == b.beam_strikes
            && a.fit_raw == b.fit_raw
            && a.seed == b.seed
            && a.threads == b.threads
            && a.golden_budget_cycles == b.golden_budget_cycles
            && a.journal_format == b.journal_format
            && a.journal_fsync == b.journal_fsync
            && a.run_wall_ms == b.run_wall_ms
            && a.checkpoint_interval == b.checkpoint_interval
            && a.fast_path == b.fast_path
            && a.warp == b.warp
            && a.stop_at_margin == b.stop_at_margin
    }

    #[test]
    fn round_trips_canonically() {
        let spec = StudySpec {
            study: Study {
                scale: Scale::Tiny,
                samples_per_component: 24,
                beam_strikes: 48,
                seed: 0xDEAD_BEEF_0BAD_F00D,
                threads: 2,
                run_wall_ms: 5_000,
                journal_fsync: crate::FsyncPolicy::IntervalMs(250),
                fast_path: true,
                warp: true,
                stop_at_margin: Some(0.05),
                ..Study::default()
            },
            suite: vec![Workload::MatMul, Workload::Qsort],
        };
        let text = spec.to_json();
        let back = StudySpec::from_json(&text).unwrap();
        assert!(eq_modulo_placement(&back.study, &spec.study));
        assert_eq!(back.suite, spec.suite);
        // Canonical: re-rendering the parsed spec reproduces the bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn omitted_fields_default_and_suite_defaults_to_all() {
        let spec = StudySpec::from_json("{}").unwrap();
        assert!(eq_modulo_placement(&spec.study, &Study::default()));
        assert_eq!(spec.suite, Workload::ALL.to_vec());

        let spec = StudySpec::from_json(r#"{"samples_per_component":7}"#).unwrap();
        assert_eq!(spec.study.samples_per_component, 7);
        assert_eq!(spec.study.beam_strikes, Study::default().beam_strikes);
    }

    #[test]
    fn seeds_accept_hex_strings_and_integers() {
        let a = StudySpec::from_json(r#"{"seed":"0x5EA0001"}"#).unwrap();
        let b = StudySpec::from_json(r#"{"seed":99221505}"#).unwrap();
        assert_eq!(a.study.seed, 0x5EA_0001);
        assert_eq!(a.study.seed, b.study.seed);
    }

    #[test]
    fn bad_documents_fail_loudly() {
        assert!(matches!(
            StudySpec::from_json("not json"),
            Err(SpecError::Parse(_))
        ));
        assert!(matches!(
            StudySpec::from_json("[1,2]"),
            Err(SpecError::Parse(_))
        ));
        assert!(matches!(
            StudySpec::from_json(r#"{"scale":"huge"}"#),
            Err(SpecError::Field("scale", _))
        ));
        assert!(matches!(
            StudySpec::from_json(r#"{"suite":["NotABench"]}"#),
            Err(SpecError::UnknownWorkload(_))
        ));
        assert!(matches!(
            StudySpec::from_json(r#"{"suite":[]}"#),
            Err(SpecError::Field("suite", _))
        ));
        assert!(matches!(
            StudySpec::from_json(r#"{"stop_at_margin":-0.5}"#),
            Err(SpecError::Field("stop_at_margin", _))
        ));
        assert!(matches!(
            StudySpec::from_json(r#"{"journal_format":"xml"}"#),
            Err(SpecError::Field("journal_format", _))
        ));
    }

    #[test]
    fn workload_names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(workload_by_name(w.name()), Some(w));
        }
        assert_eq!(workload_by_name("nope"), None);
    }
}

//! The two experimental setups (paper Table II).

use sea_microarch::MachineConfig;

/// One row of the setup-attributes table.
#[derive(Clone, Debug)]
pub struct SetupRow {
    /// Attribute name.
    pub property: &'static str,
    /// The physical/beam setup's value.
    pub beam: String,
    /// The simulated setup's value.
    pub sim: String,
}

/// Produces the Table II rows for a simulated machine configuration,
/// against the paper's physical platform column.
///
/// The asterisks carry the same caveats as the paper's: the simulated
/// pipeline *resembles* the Cortex-A9 without matching it exactly, and the
/// physical part's second core is present but disabled.
pub fn setup_rows(machine: &MachineConfig) -> Vec<SetupRow> {
    let cache =
        |c: &sea_microarch::CacheConfig| format!("{} KB {}-way", c.size_bytes / 1024, c.ways);
    vec![
        SetupRow {
            property: "Microarchitecture",
            beam: "Cortex-A9".into(),
            sim: "Cortex-A9-class (AR32)*".into(),
        },
        SetupRow {
            property: "Platform",
            beam: "Zynq 7000 (ZedBoard)".into(),
            sim: "SEA board model".into(),
        },
        SetupRow {
            property: "CPU cores",
            beam: "1*".into(),
            sim: "1".into(),
        },
        SetupRow {
            property: "L1 Cache",
            beam: "32 KB 4-way".into(),
            sim: cache(&machine.l1i),
        },
        SetupRow {
            property: "L2 Cache",
            beam: "512 KB 8-way".into(),
            sim: cache(&machine.l2),
        },
        SetupRow {
            property: "Kernel version",
            beam: "Linux 3.14".into(),
            sim: "linux-lite (sea-kernel)".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_table_ii() {
        let rows = setup_rows(&MachineConfig::cortex_a9());
        let l1 = rows.iter().find(|r| r.property == "L1 Cache").unwrap();
        assert_eq!(l1.beam, l1.sim);
        let l2 = rows.iter().find(|r| r.property == "L2 Cache").unwrap();
        assert_eq!(l2.beam, l2.sim);
        assert_eq!(rows.len(), 6);
    }
}

//! Beam-model smoke tests: exposure accounting, residency measurement,
//! and the FIT_raw measurement loop.

use sea_beam::{measure_fit_raw, measure_kernel_residency, run_session, BeamConfig};
use sea_platform::FaultClass;
use sea_workloads::{Scale, Workload};

#[test]
fn session_accounting_is_self_consistent() {
    let w = Workload::MatMul.build(Scale::Tiny);
    let cfg = BeamConfig::default();
    let r = run_session("MatMul", &w, &cfg, 120).unwrap();
    assert_eq!(r.counts.total(), 120);
    assert!(r.fluence > 0.0 && r.beam_seconds > 0.0);
    assert!(
        r.runs_represented > 1.0,
        "importance sampling must compress many runs"
    );
    // Error rate per execution must respect the paper's <1/1000 design.
    let errors_per_run = r.counts.total() as f64 / r.runs_represented;
    assert!(errors_per_run < 1e-3, "errors/run = {errors_per_run}");
    // NYC-equivalent exposure should be enormous (paper: 2.9M years for
    // the full campaign).
    assert!(r.nyc_years > 1.0);
    // The unmodeled platform logic guarantees some system crashes.
    assert!(r.counts.sys_crash > 0);
}

#[test]
fn small_footprint_workload_leaves_more_kernel_in_cache() {
    let cfg = BeamConfig::default();
    let small = Workload::SusanC.build(Scale::Tiny); // tiny image
    let large = Workload::Crc32.build(Scale::Default); // 96 KB stream
    let fs = measure_kernel_residency(&small, &cfg).unwrap();
    let fl = measure_kernel_residency(&large, &cfg).unwrap();
    assert!(
        fs > fl,
        "small workload should leave more kernel lines resident ({fs:.3} vs {fl:.3})"
    );
}

#[test]
fn beam_sessions_are_deterministic() {
    let w = Workload::StringSearch.build(Scale::Tiny);
    let cfg = BeamConfig::default();
    let a = run_session("ss", &w, &cfg, 40).unwrap();
    let b = run_session("ss", &w, &cfg, 40).unwrap();
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.fluence, b.fluence);
}

#[test]
fn fit_raw_measurement_recovers_configured_sensitivity() {
    let cfg = BeamConfig::default();
    let r = measure_fit_raw(&cfg, 60);
    assert_eq!(r.strikes, 60);
    // The probe must detect a decent share of the injected upsets: data
    // bits of resident lines dominate the L1D array.
    // Efficiency can exceed 1: a tag-bit strike rehomes a whole line and
    // the read-back detects every word of it (a realistic multi-word
    // corruption signature).
    assert!(
        r.efficiency > 0.4 && r.efficiency <= 3.0,
        "detection efficiency {} out of range",
        r.efficiency
    );
    // And the measured FIT_raw must be within ~3× of the paper's value.
    assert!(
        (1.0e-5..9.0e-5).contains(&r.fit_raw_measured),
        "measured FIT_raw {}",
        r.fit_raw_measured
    );
}

#[test]
fn fit_rates_are_finite_and_positive_for_struck_sessions() {
    let w = Workload::Qsort.build(Scale::Tiny);
    let cfg = BeamConfig::default();
    let r = run_session("Qsort", &w, &cfg, 150).unwrap();
    for class in [FaultClass::Sdc, FaultClass::AppCrash, FaultClass::SysCrash] {
        let fit = r.fit(class);
        assert!(fit.is_finite() && fit >= 0.0, "{class}: {fit}");
    }
    assert!(r.total_fit() > 0.0);
}

#[test]
fn origin_accounting_sums_to_total_and_unmodeled_behaves() {
    use sea_beam::StrikeOrigin;
    let w = Workload::Dijkstra.build(Scale::Tiny);
    let cfg = BeamConfig::default();
    let r = run_session("Dijkstra", &w, &cfg, 300).unwrap();
    let by_origin_total: u64 = r.by_origin.iter().map(|(_, c)| c.total()).sum();
    assert_eq!(by_origin_total, r.counts.total());
    for (origin, counts) in &r.by_origin {
        match origin {
            StrikeOrigin::PlatformLogic => {
                assert_eq!(counts.sys_crash, counts.total(), "PL hits are SysCrash");
            }
            StrikeOrigin::CoreLatch => {
                assert_eq!(counts.app_crash, counts.total(), "latch hits are AppCrash");
            }
            StrikeOrigin::IdleSram => {
                assert_eq!(counts.sdc + counts.app_crash, 0, "idle strikes cannot SDC");
            }
            StrikeOrigin::Sram(_) => {}
        }
    }
}

//! Beam sessions: Monte-Carlo neutron exposure of the whole platform.
//!
//! Physically, a beam run is a Poisson process: strikes arrive at rate
//! `flux × σ` for every structure with cross-section `σ`, and the paper
//! keeps the error rate below one per 1,000 executions so events never
//! overlap (§IV-B). Simulating millions of clean executions would be
//! wasted work, so the session uses importance sampling: only struck
//! executions are simulated, and the represented fluence is recovered from
//! the total cross-section–time product. Strikes into *modeled* SRAM are
//! replayed through the same simulator and classifier the injection
//! campaigns use; strikes into the unmodeled platform logic take the
//! analytic paths of [`crate::UnmodeledLogic`].
//!
//! Sessions run under the same supervisor as injection campaigns
//! (`sea_injection::supervisor`): strike simulations are panic-isolated
//! and quarantined, and with [`BeamConfig::journal`] set the strike log is
//! journaled so an interrupted session resumes without losing fluence
//! accounting — the paper's watchdog/restart protocol (§IV-B).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sea_injection::supervisor::{
    attempt_run, fnv1a, golden_hash, journal_file, open_journal, run_supervised_until, Journal,
    JournalAudit, JournalError, JournalHeader, PoolStats, Quarantine, RunIdentity,
};
use sea_injection::{
    acquire_golden_and_checkpoints, class_index, CampaignConfig, ConvergenceTracker, InjectionSpec,
    RunAnomaly, SupervisionStats, CLASS_LABELS,
};
use sea_microarch::{Component, System};
use sea_platform::{boot, run, CheckpointStats, ClassCounts, FaultClass, GoldenRun, RunLimits};
use sea_snapshot::CheckpointMeta;
use sea_trace::json::{Json, ObjWriter};
use sea_trace::{event, Level, Progress, Subsystem};
use sea_workloads::BuiltWorkload;

use std::sync::Arc;

use crate::config::{sigma_to_fit, BeamConfig, NYC_FLUX_PER_HOUR};

/// What the supervised pool yields per strike: a classified outcome,
/// an anomaly record, or (for a flaky panic) both.
type StrikeVerdict = (Option<StrikeOutcome>, Option<RunAnomaly>);

/// Where a sampled strike landed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StrikeOrigin {
    /// Modeled SRAM during execution (simulated via injection).
    Sram(Component),
    /// Unmodeled platform logic (FPGA–ARM bridge, interfaces).
    PlatformLogic,
    /// Unmodeled core control latches.
    CoreLatch,
    /// Modeled SRAM during the harness idle window (kernel-only live).
    IdleSram,
}

/// Stable lowercase name of a strike origin (used in trace records).
fn origin_name(origin: StrikeOrigin) -> &'static str {
    match origin {
        StrikeOrigin::Sram(_) => "sram",
        StrikeOrigin::PlatformLogic => "platform_logic",
        StrikeOrigin::CoreLatch => "core_latch",
        StrikeOrigin::IdleSram => "idle_sram",
    }
}

/// One sampled strike and its classified effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StrikeOutcome {
    /// Strike location category.
    pub origin: StrikeOrigin,
    /// Effect class.
    pub class: FaultClass,
}

/// Result of a beam session for one workload.
#[derive(Clone, Debug)]
pub struct BeamResult {
    /// Workload display name.
    pub workload: String,
    /// Effect tallies over all sampled strikes.
    pub counts: ClassCounts,
    /// Per-origin tallies.
    pub by_origin: Vec<(StrikeOrigin, ClassCounts)>,
    /// Represented fluence in n/cm².
    pub fluence: f64,
    /// Represented effective beam time in seconds.
    pub beam_seconds: f64,
    /// Equivalent natural exposure at NYC flux, in years.
    pub nyc_years: f64,
    /// Number of executions the session represents.
    pub runs_represented: f64,
    /// Fault-free execution length in cycles.
    pub golden_cycles: u64,
    /// Measured fraction of cache SRAM holding kernel-region data at the
    /// end of a fault-free run (drives the idle-window model; §VI).
    pub kernel_resident_frac: f64,
    /// Measured I-cache residency of the program text,
    /// `min(1, L1I bytes / text bytes)` (§VI's check-routine discussion).
    pub code_residency: f64,
    /// Anomalies (panicking strike simulations) captured by the
    /// supervisor, in strike-index order.
    pub anomalies: Vec<RunAnomaly>,
    /// Supervision counters.
    pub supervision: SupervisionStats,
    /// Checkpoint usage for simulated strikes (None when checkpointing
    /// was disabled).
    pub checkpoints: Option<CheckpointStats>,
    /// Strike-log write-side audit (None when journaling was disabled).
    pub journal: Option<JournalAudit>,
}

impl BeamResult {
    /// FIT rate of one (non-masked) effect class.
    pub fn fit(&self, class: FaultClass) -> f64 {
        sigma_to_fit(self.counts.count(class) as f64 / self.fluence)
    }

    /// Total FIT across SDC + AppCrash + SysCrash.
    pub fn total_fit(&self) -> f64 {
        self.fit(FaultClass::Sdc) + self.fit(FaultClass::AppCrash) + self.fit(FaultClass::SysCrash)
    }
}

/// Beam-session error.
#[derive(Debug)]
pub enum BeamError {
    /// The fault-free run failed.
    Golden(sea_platform::GoldenError),
    /// The strike-log journal could not be opened or does not match this
    /// session.
    Journal(JournalError),
}

impl std::fmt::Display for BeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeamError::Golden(e) => write!(f, "golden run failed: {e}"),
            BeamError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BeamError {}

/// Measures the kernel-resident fraction of cache SRAM after a fault-free
/// run: the share of valid lines (weighted by size) whose physical address
/// is below the user page pool — i.e. kernel text/data/stack/page tables.
pub fn measure_kernel_residency(
    workload: &BuiltWorkload,
    cfg: &BeamConfig,
) -> Result<f64, BeamError> {
    let (mut sys, _) = boot(cfg.machine, &workload.image, &cfg.kernel)
        .map_err(|e| BeamError::Golden(sea_platform::GoldenError::Install(e)))?;
    let limits = RunLimits {
        max_cycles: cfg.golden_budget_cycles,
        tick_window: u64::MAX,
        wall_ms: 0,
    };
    let _ = run(&mut sys, limits);
    let mut kernel_bits = 0f64;
    let mut total_bits = 0f64;
    for cache in [&sys.mem.l1i, &sys.mem.l1d, &sys.mem.l2] {
        let per_line = cache.total_bits() as f64 / cache.lines() as f64;
        total_bits += cache.total_bits() as f64;
        kernel_bits += cache
            .valid_line_addrs()
            .filter(|&a| a < sea_kernel::USER_POOL_BASE)
            .count() as f64
            * per_line;
    }
    Ok(kernel_bits / total_bits)
}

struct Weights {
    sram_run: f64,
    sys_run: f64,
    app_run: f64,
    sram_idle: f64,
    sys_idle: f64,
}

impl Weights {
    fn total(&self) -> f64 {
        self.sram_run + self.sys_run + self.app_run + self.sram_idle + self.sys_idle
    }
}

/// Hash of everything that shapes a session's physics (machine, kernel,
/// beam parameters, strike count). Runtime knobs (threads, journal,
/// supervision) are excluded — resuming with a different thread count is
/// valid, resuming against different physics is not.
fn beam_config_hash(cfg: &BeamConfig, strikes: u32) -> u64 {
    fnv1a(
        format!(
            "{:?}|{:?}|{}|{}|{}|{:?}|{}|{}|{}|{}",
            cfg.machine,
            cfg.kernel,
            cfg.clock_hz,
            cfg.flux,
            cfg.sigma_bit,
            cfg.unmodeled,
            cfg.idle_frac,
            cfg.kernel_critical_frac,
            cfg.golden_budget_cycles,
            strikes,
        )
        .as_bytes(),
    )
}

/// Serializes one completed strike as a journal entry line.
fn strike_line(i: u64, out: Option<&StrikeOutcome>, anomaly: Option<&RunAnomaly>) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("i", i);
    match (out, anomaly) {
        (Some(o), flaky) => {
            w.str_field("origin", origin_name(o.origin));
            if let StrikeOrigin::Sram(c) = o.origin {
                w.str_field("component", c.short_name());
            }
            w.str_field("class", &o.class.to_string());
            if flaky.is_some() {
                w.bool_field("flaky", true);
            }
        }
        (None, Some(a)) => {
            w.bool_field("anomaly", true)
                .bool_field("deterministic", a.deterministic)
                .u64_field("attempts", a.attempts as u64)
                .str_field("panic", &a.panic_msg);
        }
        (None, None) => unreachable!("a strike yields an outcome or an anomaly"),
    }
    w.finish()
}

/// Decodes a journal entry back into a strike record.
fn decode_strike(
    j: &Json,
    specs: &[Option<InjectionSpec>],
    id: &RunIdentity,
) -> Option<(usize, Option<StrikeOutcome>, Option<RunAnomaly>)> {
    let i = j.get("i")?.as_u64()? as usize;
    if i >= specs.len() {
        return None;
    }
    if j.get("anomaly").and_then(Json::as_bool) == Some(true) {
        let anomaly = RunAnomaly {
            index: i as u64,
            spec: (*specs.get(i)?)?,
            workload: id.workload.clone(),
            seed: id.seed,
            config_hash: id.config_hash,
            golden_hash: id.golden_hash,
            attempts: j.get("attempts")?.as_u64()? as u32,
            deterministic: j.get("deterministic")?.as_bool()?,
            panic_msg: j.get("panic")?.as_str()?.to_string(),
            postmortem: String::new(),
        };
        return Some((i, None, Some(anomaly)));
    }
    let origin = match j.get("origin")?.as_str()? {
        "sram" => StrikeOrigin::Sram(Component::from_short_name(j.get("component")?.as_str()?)?),
        "platform_logic" => StrikeOrigin::PlatformLogic,
        "core_latch" => StrikeOrigin::CoreLatch,
        "idle_sram" => StrikeOrigin::IdleSram,
        _ => return None,
    };
    let class = FaultClass::from_name(j.get("class")?.as_str()?)?;
    Some((i, Some(StrikeOutcome { origin, class }), None))
}

/// Prometheus snapshot of a live beam session: strike progress, per-class
/// tallies, the represented fluence so far, and the shared supervisor-
/// health and convergence series.
fn beam_prom_snapshot(
    progress: &Progress,
    tracker: &ConvergenceTracker,
    fluence_per_strike: f64,
    resumed: u64,
) -> String {
    let mut w = sea_profile::PromWriter::new();
    w.gauge(
        "sea_beam_strikes_done",
        "Strikes sampled this session.",
        progress.done() as f64,
    );
    w.gauge(
        "sea_beam_strikes_per_sec",
        "Current session throughput.",
        progress.runs_per_sec(),
    );
    w.gauge(
        "sea_beam_fluence_n_cm2",
        "Represented fluence of the strikes sampled so far (n/cm2).",
        (resumed + progress.done()) as f64 * fluence_per_strike,
    );
    for (label, count) in CLASS_LABELS.iter().zip(progress.class_counts()) {
        w.counter(
            &format!("sea_beam_class_{label}_total"),
            "Strikes classified into this fault-effect class.",
            count,
        );
    }
    sea_injection::convergence::prom_append(&mut w, tracker);
    w.finish()
}

/// Runs a beam session sampling `strikes` struck executions.
///
/// ```no_run
/// use sea_beam::{run_session, BeamConfig};
/// use sea_platform::FaultClass;
/// use sea_workloads::{Scale, Workload};
///
/// # fn main() -> Result<(), sea_beam::BeamError> {
/// let built = Workload::Fft.build(Scale::Default);
/// let r = run_session("FFT", &built, &BeamConfig::default(), 600)?;
/// println!(
///     "{:.1} NYC-years of exposure → SDC {:.2} FIT, SysCrash {:.2} FIT",
///     r.nyc_years, r.fit(FaultClass::Sdc), r.fit(FaultClass::SysCrash),
/// );
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails if the fault-free run does not complete cleanly, or if a resumed
/// strike-log journal does not match this session.
pub fn run_session(
    name: &str,
    workload: &BuiltWorkload,
    cfg: &BeamConfig,
    strikes: u32,
) -> Result<BeamResult, BeamError> {
    // Simulated SRAM strikes reuse the injection machinery (and its
    // supervisor policy) with an inline config; the same config carries
    // the checkpoint policy into the shared golden-run acquisition.
    let inj_cfg = CampaignConfig {
        machine: cfg.machine,
        kernel: cfg.kernel,
        samples_per_component: 0,
        components: vec![],
        seed: cfg.seed,
        threads: cfg.threads,
        fault_model: sea_injection::FaultModel::SingleBit,
        golden_budget_cycles: cfg.golden_budget_cycles,
        supervisor: cfg.supervisor.clone(),
        journal: None,
        checkpoints: cfg.checkpoints.clone(),
        fast_path: cfg.fast_path,
        // The beam session drives its own server and stop predicate; the
        // inner injection config must never start a second one.
        serve: None,
        stop_at_margin: None,
        warp: cfg.warp.then(sea_injection::WarpPolicy::default),
    };
    let id = RunIdentity {
        workload: name.to_string(),
        seed: cfg.seed,
        config_hash: beam_config_hash(cfg, strikes),
        golden_hash: golden_hash(workload),
    };
    let (golden, ckpts): (GoldenRun, _) =
        acquire_golden_and_checkpoints(workload, &inj_cfg, id.config_hash, id.golden_hash)
            .map_err(|e| match e {
                sea_injection::CampaignError::Golden(g) => BeamError::Golden(g),
                sea_injection::CampaignError::Journal(j) => BeamError::Journal(j),
            })?;
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period)
        .with_wall_ms(cfg.supervisor.run_wall_ms);
    let kernel_frac = measure_kernel_residency(workload, cfg)?;

    let probe = System::new(cfg.machine, sea_microarch::NullDevice);
    let sram_bits = probe.total_modeled_bits();
    let l1i_bytes = cfg.machine.l1i.size_bytes as f64;
    let code_residency = (l1i_bytes / workload.image.text_bytes().max(1) as f64).min(1.0);

    let t_run = golden.cycles as f64 / cfg.clock_hz;
    let t_idle = t_run * cfg.idle_frac;
    let sigma_sram = cfg.sigma_bit * sram_bits as f64;
    let w = Weights {
        sram_run: sigma_sram * t_run,
        sys_run: cfg.unmodeled.sigma_syscrash * t_run,
        app_run: cfg.unmodeled.sigma_appcrash * code_residency * t_run,
        sram_idle: sigma_sram * t_idle,
        sys_idle: cfg.unmodeled.sigma_syscrash * t_idle,
    };

    // Component selection within modeled SRAM is proportional to size.
    let comp_bits: Vec<(Component, u64)> = Component::ALL
        .iter()
        .map(|&c| (c, probe.component_bits(c)))
        .collect();

    // Pre-sample every strike deterministically.
    #[derive(Clone, Copy)]
    enum Plan {
        Simulate(InjectionSpec),
        Analytic(StrikeOrigin, FaultClass),
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut plans: Vec<Plan> = Vec::with_capacity(strikes as usize);
    for _ in 0..strikes {
        let x = rng.gen_range(0.0..w.total());
        if x < w.sram_run {
            // Simulated SRAM strike during execution.
            let mut pick = rng.gen_range(0..sram_bits);
            let mut component = Component::L2;
            let mut bit = 0;
            for &(c, b) in &comp_bits {
                if pick < b {
                    component = c;
                    bit = pick;
                    break;
                }
                pick -= b;
            }
            plans.push(Plan::Simulate(InjectionSpec {
                component,
                bit,
                cycle: rng.gen_range(0..golden.cycles),
            }));
        } else if x < w.sram_run + w.sys_run + w.sys_idle {
            plans.push(Plan::Analytic(
                StrikeOrigin::PlatformLogic,
                FaultClass::SysCrash,
            ));
        } else if x < w.sram_run + w.sys_run + w.sys_idle + w.app_run {
            plans.push(Plan::Analytic(
                StrikeOrigin::CoreLatch,
                FaultClass::AppCrash,
            ));
        } else {
            // Idle-window SRAM strike: only kernel-resident lines are live;
            // a critical hit surfaces as a system crash at the next
            // execution attempt, anything else is overwritten.
            let class = if rng.gen_range(0.0..1.0) < kernel_frac * cfg.kernel_critical_frac {
                FaultClass::SysCrash
            } else {
                FaultClass::Masked
            };
            plans.push(Plan::Analytic(StrikeOrigin::IdleSram, class));
        }
    }
    let plan_specs: Vec<Option<InjectionSpec>> = plans
        .iter()
        .map(|p| match p {
            Plan::Simulate(spec) => Some(*spec),
            Plan::Analytic(..) => None,
        })
        .collect();

    // Journal: open (or resume, skipping already-simulated strikes so the
    // fluence accounting continues across restarts).
    let mut outcome_by_idx: Vec<Option<StrikeOutcome>> = vec![None; plans.len()];
    let mut anomalies: Vec<RunAnomaly> = Vec::new();
    let mut done = vec![false; plans.len()];
    let mut resumed = 0u64;
    let journal = match &cfg.journal {
        Some(spec) => {
            let header = JournalHeader {
                kind: "beam",
                workload: id.workload.clone(),
                seed: id.seed,
                config_hash: id.config_hash,
                golden_hash: id.golden_hash,
                // Stamped whether or not checkpointing is on (the value is
                // interval-independent), so checkpointed and from-reset
                // sessions write byte-identical strike logs.
                ckpt: CheckpointMeta::provenance(id.config_hash, id.golden_hash),
                total: plans.len() as u64,
            };
            let (journal, entries) = open_journal(spec, &header).map_err(BeamError::Journal)?;
            for e in &entries {
                let Some((i, outcome, anomaly)) = decode_strike(e, &plan_specs, &id) else {
                    continue;
                };
                if done[i] {
                    continue;
                }
                done[i] = true;
                resumed += 1;
                outcome_by_idx[i] = outcome;
                anomalies.extend(anomaly);
            }
            Some(journal)
        }
        None => None,
    };
    let pending: Vec<u64> = (0..plans.len() as u64)
        .filter(|&i| !done[i as usize])
        .collect();

    let quarantine = match &cfg.supervisor.quarantine {
        Some(path) => {
            Some(Quarantine::open(path).map_err(|e| BeamError::Journal(JournalError::Io(e)))?)
        }
        None => None,
    };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let session_span = sea_trace::span(Subsystem::Beam, Level::Info, "beam.session");
    let progress = Arc::new(Progress::new(
        format!("beam {name}"),
        pending.len() as u64,
        &CLASS_LABELS,
    ));

    // The beam has no per-component populations: the live margin tracks
    // the session-wide effect-class proportions over sampled strikes, with
    // an unbounded population (each strike is one draw from the Poisson
    // arrival process, not from a finite bit pool).
    let tracker = Arc::new(ConvergenceTracker::with_strata(
        sea_injection::stats::Z_99,
        [(String::from("beam"), u64::MAX)],
    ));
    for o in outcome_by_idx.iter().flatten() {
        tracker.record(0, o.class);
    }
    // Represented fluence grows linearly with sampled strikes:
    // n / (flux · Σσt) executions, each t_run of beam time, at `flux`.
    let fluence_per_strike = t_run / w.total();
    {
        let progress = progress.clone();
        let tracker = tracker.clone();
        let workload_name = name.to_string();
        let planned = pending.len() as u64;
        let stop_at = cfg.stop_at_margin;
        sea_observe::publish_status(Some(Arc::new(move || {
            let sampled = resumed + progress.done();
            sea_injection::convergence::status_document(
                "beam",
                &workload_name,
                planned,
                resumed,
                &progress,
                &tracker,
                stop_at,
                &[(
                    "fluence_n_cm2",
                    format!("{:e}", sampled as f64 * fluence_per_strike),
                )],
            )
        })));
    }
    {
        let progress = progress.clone();
        let tracker = tracker.clone();
        sea_observe::publish_metrics(Some(Arc::new(move || {
            beam_prom_snapshot(&progress, &tracker, fluence_per_strike, resumed)
        })));
    }
    match &cfg.journal {
        Some(spec) => {
            sea_observe::publish_journal(Some(&journal_file(&spec.dir, "beam", name, spec.format)))
        }
        None => sea_observe::publish_journal(None),
    }
    if let Some(addr) = &cfg.serve {
        match sea_observe::serve(addr) {
            Ok(bound) => event!(Subsystem::Beam, Level::Info, "observe.serving";
                   "addr" => bound.to_string(),
                   "workload" => name.to_string()),
            Err(e) => event!(Subsystem::Beam, Level::Warn, "observe.serve_failed";
                   "addr" => addr.clone(),
                   "error" => e.to_string()),
        }
    }

    // Stop early on statistical convergence, on a poisoned strike log
    // (after a write fault exhausts its retries, further strikes would be
    // unjournaled, unresumable), or on a process-wide stop request
    // (SIGTERM/SIGINT drain, daemon-initiated shutdown) — in every case
    // the strike log stays a valid resumable prefix.
    let margin_stop = cfg.stop_at_margin.map(|m| {
        let tracker = tracker.clone();
        move || tracker.converged(m)
    });
    let journal_ref = journal.as_ref();
    let stop_pred: Box<dyn Fn() -> bool + Sync + '_> = Box::new(move || {
        sea_injection::stop_requested()
            || journal_ref.is_some_and(|j| j.poisoned())
            || margin_stop.as_ref().is_some_and(|f| f())
    });
    let stop_ref: Option<&(dyn Fn() -> bool + Sync)> = Some(&*stop_pred);
    let (fresh, pool): (Vec<(u64, StrikeVerdict)>, PoolStats) = run_supervised_until(
        &pending,
        threads,
        &cfg.supervisor,
        Subsystem::Beam,
        "beam.worker",
        stop_ref,
        |i| {
            let (out, anomaly) = match plans[i as usize] {
                Plan::Analytic(origin, class) => {
                    // Strikes into unmodeled logic take the PL-bridge
                    // analytic path; log them with the same record shape
                    // as simulated ones.
                    event!(Subsystem::Beam, Level::Info, "beam.strike";
                           "origin" => origin_name(origin),
                           "modeled" => false,
                           "class" => class.to_string());
                    (Some(StrikeOutcome { origin, class }), None)
                }
                Plan::Simulate(spec) => {
                    let v = attempt_run(
                        workload,
                        &inj_cfg,
                        &id,
                        ckpts.as_ref(),
                        i,
                        spec,
                        limits,
                        quarantine.as_ref(),
                    );
                    let out = v.outcome.map(|o| {
                        event!(Subsystem::Beam, Level::Info, "beam.strike";
                               cycle = spec.cycle;
                               "origin" => origin_name(StrikeOrigin::Sram(spec.component)),
                               "component" => spec.component.short_name(),
                               "bit" => spec.bit,
                               "modeled" => true,
                               "class" => o.class.to_string());
                        StrikeOutcome {
                            origin: StrikeOrigin::Sram(spec.component),
                            class: o.class,
                        }
                    });
                    (out, v.anomaly)
                }
            };
            if let Some(j) = &journal {
                j.append(&strike_line(i, out.as_ref(), anomaly.as_ref()));
            }
            progress.record(out.as_ref().map(|o| class_index(o.class)));
            // Record after the journal append: a strike that trips the
            // stop predicate already has its log line, keeping an
            // early-stopped strike log a prefix of the full session's.
            if let Some(o) = &out {
                tracker.record(0, o.class);
            }
            sea_profile::prom_flush(false, || {
                beam_prom_snapshot(&progress, &tracker, fluence_per_strike, resumed)
            });
            (out, anomaly)
        },
    );
    let (done_strikes, secs) = progress.finish();
    sea_profile::prom_flush(true, || {
        beam_prom_snapshot(&progress, &tracker, fluence_per_strike, resumed)
    });
    if journal.as_ref().is_some_and(|j| j.poisoned()) {
        event!(Subsystem::Beam, Level::Error, "beam.journal_poisoned_abort";
               "workload" => name.to_string(),
               "done" => done_strikes,
               "planned" => pending.len() as u64);
    } else if pool.stopped {
        event!(Subsystem::Beam, Level::Info, "beam.early_stop";
               "workload" => name.to_string(),
               "done" => done_strikes,
               "planned" => pending.len() as u64,
               "max_adjusted_margin" => tracker.max_adjusted_margin());
    }
    sea_trace::flush_thread();
    if let Some(mut s) = session_span {
        s.field("workload", name.to_string());
        s.field("strikes", done_strikes);
        s.field(
            "strikes_per_sec",
            if secs > 0.0 {
                done_strikes as f64 / secs
            } else {
                0.0
            },
        );
        s.field("resumed", resumed);
    }

    let sampled_strikes = resumed + fresh.len() as u64;
    for (i, (out, anomaly)) in fresh {
        outcome_by_idx[i as usize] = out;
        anomalies.extend(anomaly);
    }
    anomalies.sort_by_key(|a| a.index);

    let mut counts = ClassCounts::default();
    let mut by_origin: std::collections::BTreeMap<StrikeOrigin, ClassCounts> =
        std::collections::BTreeMap::new();
    for o in outcome_by_idx.iter().flatten() {
        counts.add(o.class);
        by_origin.entry(o.origin).or_default().add(o.class);
    }
    let supervision = SupervisionStats {
        completed: counts.total(),
        resumed,
        quarantined: anomalies.len() as u64,
        flaky_recovered: anomalies.iter().filter(|a| !a.deterministic).count() as u64,
        worker_respawns: pool.respawns,
        lost: pool.lost.len() as u64,
    };
    let ckpt_stats = ckpts.as_ref().map(|c| c.stats());
    if let Some(s) = ckpt_stats {
        event!(Subsystem::Beam, Level::Info, "beam.checkpoints";
               "workload" => name.to_string(),
               "epochs" => s.epochs,
               "restores" => s.restores,
               "prefix_cycles_saved" => s.prefix_cycles_saved,
               "golden_cycles" => golden.cycles);
    }

    // Represented exposure: strikes arrive at flux × Σ(σ·t) per execution.
    // An early-stopped session represents only the strikes it actually
    // sampled — scaling the fluence down keeps the cross-sections (and so
    // the FIT rates) unbiased estimators.
    let represented = if pool.stopped {
        sampled_strikes as f64
    } else {
        strikes as f64
    };
    let runs_represented = represented / (cfg.flux * w.total());
    // FIT normalization uses *effective* beam time only — execution windows
    // — matching the paper's "260 effective beam hours (not considering
    // setup, initialization, and recover from crash times)". Strikes landed
    // during the idle windows still count (their corruption surfaces during
    // the next execution), but the overhead time does not dilute the rate.
    let beam_seconds = runs_represented * t_run;
    let fluence = cfg.flux * beam_seconds;
    let nyc_years = fluence / NYC_FLUX_PER_HOUR / 24.0 / 365.25;
    event!(Subsystem::Beam, Level::Info, "beam.fluence";
           "workload" => name.to_string(),
           "strikes" => strikes,
           "fluence_n_cm2" => fluence,
           "beam_seconds" => beam_seconds,
           "nyc_years" => nyc_years,
           "runs_represented" => runs_represented);

    if let Some(j) = &journal {
        j.sync();
    }
    let journal_audit = journal.as_ref().map(Journal::audit);

    Ok(BeamResult {
        workload: name.to_string(),
        counts,
        by_origin: by_origin.into_iter().collect(),
        fluence,
        beam_seconds,
        nyc_years,
        runs_represented,
        golden_cycles: golden.cycles,
        kernel_resident_frac: kernel_frac,
        code_residency,
        anomalies,
        supervision,
        checkpoints: ckpt_stats,
        journal: journal_audit,
    })
}

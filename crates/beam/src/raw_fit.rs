//! Measuring the raw per-bit FIT rate (§VI of the paper).
//!
//! The paper's procedure: fill the L1 data cache byte-by-byte with a known
//! pattern, wait, read it back, and count mismatches; dividing the
//! measured FIT by the tested bits gives FIT per bit (their result:
//! 2.76×10⁻⁵). Here the same guest microbenchmark runs under the beam
//! model: strikes are sampled into the L1D array during execution, and the
//! *program's own read-back check* detects and reports the upsets — the
//! detection path is end-to-end, not an oracle.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sea_injection::InjectionSpec;
use sea_microarch::{Component, System};
use sea_platform::{RunLimits, RunOutcome};
use sea_workloads::{build_l1_probe, L1ProbeParams};

use crate::config::{sigma_to_fit, BeamConfig};

/// Result of a FIT_raw measurement campaign.
#[derive(Clone, Copy, Debug)]
pub struct RawFitResult {
    /// Strikes sampled into the L1D array.
    pub strikes: u32,
    /// Upsets the guest probe detected and reported.
    pub detected_upsets: u64,
    /// Runs that crashed instead of reporting (strike hit the probe's own
    /// control state).
    pub crashed_runs: u32,
    /// Represented fluence (n/cm²).
    pub fluence: f64,
    /// Measured per-bit cross-section (cm²).
    pub sigma_bit_measured: f64,
    /// Measured FIT per bit — the paper's 2.76×10⁻⁵ quantity.
    pub fit_raw_measured: f64,
    /// Detection efficiency versus the configured (true) cross-section.
    pub efficiency: f64,
}

/// Measures FIT_raw with `strikes` sampled L1D strikes.
///
/// # Panics
///
/// Panics if the probe's fault-free run fails (setup bug).
pub fn measure_fit_raw(cfg: &BeamConfig, strikes: u32) -> RawFitResult {
    let params = L1ProbeParams {
        buf_bytes: cfg.machine.l1d.size_bytes,
        sweeps: 4,
        dwell_iters: 20_000,
    };
    let probe = build_l1_probe(params);
    let golden = sea_platform::golden_run(cfg.machine, &probe.image, &cfg.kernel, 500_000_000)
        .expect("L1 probe golden run");
    let limits = RunLimits::from_golden(golden.cycles, cfg.kernel.tick_period);

    let sys = System::new(cfg.machine, sea_microarch::NullDevice);
    let l1d_bits = sys.component_bits(Component::L1D);
    let buf_bits = params.buf_bytes as u64 * 8;

    // Pre-sample deterministically, then measure strikes in parallel.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x1117);
    let specs: Vec<InjectionSpec> = (0..strikes)
        .map(|_| InjectionSpec {
            component: Component::L1D,
            bit: rng.gen_range(0..l1d_bits),
            cycle: rng.gen_range(0..golden.cycles),
        })
        .collect();
    let detected_total = AtomicU64::new(0);
    let crashed_total = AtomicU32::new(0);
    let next = AtomicUsize::new(0);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(specs.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let spec = specs[i];
                // Re-run the probe with the strike; its own read-back
                // output reports the upsets.
                let (mut sysb, _) =
                    sea_platform::boot(cfg.machine, &probe.image, &cfg.kernel).expect("probe boot");
                while sysb.cycles() < spec.cycle {
                    sysb.step();
                }
                sysb.flip_bit(spec.component, spec.bit);
                match sea_platform::run(&mut sysb, limits) {
                    RunOutcome::Exited { output, .. } if output.len() >= 8 => {
                        let n = u32::from_le_bytes(output[4..8].try_into().unwrap());
                        detected_total.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    _ => {
                        crashed_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("raw-fit worker panicked");
    let detected = detected_total.into_inner();
    let crashed = crashed_total.into_inner();

    // Each strike represents fluence 1/(σ_bit × l1d_bits) (flux cancels).
    let fluence = strikes as f64 / (cfg.sigma_bit * l1d_bits as f64);
    let sigma_bit_measured = detected as f64 / (fluence * buf_bits as f64);
    RawFitResult {
        strikes,
        detected_upsets: detected,
        crashed_runs: crashed,
        fluence,
        sigma_bit_measured,
        fit_raw_measured: sigma_to_fit(sigma_bit_measured),
        efficiency: sigma_bit_measured / cfg.sigma_bit,
    }
}

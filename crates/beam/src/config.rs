//! Beam-experiment configuration: flux, cross-sections, and the
//! unmodeled-platform model.

use sea_kernel::KernelConfig;
use sea_microarch::MachineConfig;

/// JEDEC JESD89A reference neutron flux at New York City sea level,
/// in n/cm²/h (§II-A of the paper).
pub const NYC_FLUX_PER_HOUR: f64 = 13.0;

/// LANSCE accelerated beam flux in n/cm²/s (§IV-B: ~3.5×10⁵).
pub const LANSCE_FLUX: f64 = 3.5e5;

/// The acceleration factor the paper quotes (~8 orders of magnitude).
pub fn acceleration_factor() -> f64 {
    LANSCE_FLUX * 3600.0 / NYC_FLUX_PER_HOUR
}

/// Converts a measured cross-section (cm²) into a FIT rate (failures per
/// 10⁹ hours at NYC flux).
pub fn sigma_to_fit(sigma_cm2: f64) -> f64 {
    sigma_cm2 * NYC_FLUX_PER_HOUR * 1e9
}

/// Converts a FIT rate back into a cross-section.
pub fn fit_to_sigma(fit: f64) -> f64 {
    fit / (NYC_FLUX_PER_HOUR * 1e9)
}

/// The parts of the physical platform the simulator cannot model — the
/// paper's explanation for the beam's crash-rate excess (Fig 1, §VI):
/// the proprietary FPGA–ARM bridge and board interfaces (system crashes)
/// and the core's logic/control latches (application crashes).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct UnmodeledLogic {
    /// Effective cross-section of platform logic whose corruption hangs
    /// the system (cm²).
    pub sigma_syscrash: f64,
    /// Effective cross-section of core control latches whose corruption
    /// derails the application (cm²); scaled per benchmark by the code's
    /// I-cache residency (§VI's SDC-check-routine discussion).
    pub sigma_appcrash: f64,
}

impl Default for UnmodeledLogic {
    fn default() -> UnmodeledLogic {
        UnmodeledLogic {
            // ≈8 FIT of intrinsic platform SysCrash exposure per execution
            // window (the effective-fluence accounting multiplies this by
            // the idle-overhead share) and ≈10 FIT of control-latch
            // AppCrash at full residency. Calibrated so the Fig 10
            // aggregate lands at the paper's ~11x total ratio; see
            // EXPERIMENTS.md for the discussion.
            sigma_syscrash: fit_to_sigma(8.0),
            sigma_appcrash: fit_to_sigma(10.0),
        }
    }
}

/// Full beam-campaign configuration.
#[derive(Clone, Debug)]
pub struct BeamConfig {
    /// Machine model (must match the fault-injection setup, Table II).
    pub machine: MachineConfig,
    /// Kernel parameters.
    pub kernel: KernelConfig,
    /// Core clock for cycle→second conversion (Zynq: 667 MHz).
    pub clock_hz: f64,
    /// Accelerated beam flux (n/cm²/s).
    pub flux: f64,
    /// Per-bit SRAM cross-section (cm²). The default reproduces the
    /// paper's measured FIT_raw of 2.76×10⁻⁵ per bit.
    pub sigma_bit: f64,
    /// Unmodeled platform logic.
    pub unmodeled: UnmodeledLogic,
    /// Fraction of each execution's duration spent with the beam on but
    /// only the kernel live (harness overhead: output checks, restarts);
    /// §VI attributes part of the System-Crash excess to this exposure.
    pub idle_frac: f64,
    /// Probability that a strike into a kernel-resident cache line during
    /// the idle window takes the system down.
    pub kernel_critical_frac: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
    /// Cycle budget for the fault-free reference run and the residency
    /// measurement.
    pub golden_budget_cycles: u64,
    /// Supervision policy (panic isolation, retry, quarantine, respawn) —
    /// the simulated counterpart of the paper's watchdog/restart protocol.
    pub supervisor: sea_injection::SupervisorConfig,
    /// Strike-log journal location and resume behavior (None = no
    /// journal). Mirrors the paper's restart-without-losing-fluence
    /// protocol: a resumed session skips already-simulated strikes.
    pub journal: Option<sea_injection::JournalSpec>,
    /// Checkpoint/restore policy for simulated SRAM strikes (None = every
    /// strike boots from reset). A runtime-only knob like `threads`: it is
    /// excluded from the session hash and never changes an outcome.
    pub checkpoints: Option<sea_injection::CheckpointPolicy>,
    /// Arm the microarchitectural execution fast path on every simulated
    /// strike's machine. A runtime-only knob like `checkpoints`: bit-exact
    /// by construction, excluded from the session hash.
    pub fast_path: bool,
    /// Serve each strike's machine from a per-worker warp cursor (see
    /// `sea_injection::warp`) instead of re-simulating the fault-free
    /// prefix. A runtime-only knob like `fast_path`: cursor clones are
    /// bit-equivalent to from-reset machines, excluded from the session
    /// hash.
    pub warp: bool,
    /// Bind address for the live observability server (`None` = no
    /// server). A runtime-only knob like `threads`: it is excluded from
    /// the session hash and a served session writes a byte-identical
    /// strike log.
    pub serve: Option<String>,
    /// Stop the session early once the session-wide adjusted error margin
    /// (99% confidence over the effect-class proportions) falls to or
    /// below this value (`None` = sample every planned strike). An
    /// early-stopped strike log is a byte-prefix of the full session's,
    /// and the represented fluence is scaled to the strikes actually
    /// sampled so FIT rates stay unbiased.
    pub stop_at_margin: Option<f64>,
}

impl Default for BeamConfig {
    fn default() -> BeamConfig {
        BeamConfig {
            // Scaled with the benchmark inputs; see CampaignConfig.
            machine: MachineConfig::cortex_a9_scaled(),
            kernel: KernelConfig::default(),
            clock_hz: 667e6,
            flux: LANSCE_FLUX,
            sigma_bit: fit_to_sigma(2.76e-5),
            unmodeled: UnmodeledLogic::default(),
            idle_frac: 0.5,
            kernel_critical_frac: 0.35,
            seed: 0xBEA0_0001,
            threads: 0,
            golden_budget_cycles: 500_000_000,
            supervisor: sea_injection::SupervisorConfig::default(),
            journal: None,
            checkpoints: None,
            fast_path: false,
            warp: false,
            serve: None,
            stop_at_margin: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_is_about_eight_orders_of_magnitude() {
        let acc = acceleration_factor();
        assert!((1e7..1e9).contains(&acc), "acceleration {acc}");
    }

    #[test]
    fn sigma_fit_roundtrip_and_paper_value() {
        let sigma = fit_to_sigma(2.76e-5);
        // ≈2.1×10⁻¹⁵ cm²/bit, in line with published 28 nm SRAM data.
        assert!((1e-15..4e-15).contains(&sigma), "sigma {sigma}");
        assert!((sigma_to_fit(sigma) - 2.76e-5).abs() < 1e-12);
    }

    #[test]
    fn default_config_is_consistent() {
        let c = BeamConfig::default();
        assert!(c.idle_frac >= 0.0 && c.kernel_critical_frac <= 1.0);
        assert!(c.sigma_bit > 0.0 && c.flux > 0.0);
    }
}

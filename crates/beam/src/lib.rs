//! # sea-beam — the neutron-beam experiment model
//!
//! SEA's substitute for the paper's LANSCE campaigns (§IV-B): a Monte-
//! Carlo model of accelerated neutron exposure over the *whole* platform.
//! Strikes into the six modeled SRAM arrays are replayed through the same
//! microarchitectural simulator and classifier the injection campaigns
//! use; strikes into the structures the simulator cannot model — the
//! proprietary FPGA–ARM bridge, core control latches, and SRAM exposed
//! while only the kernel is live between executions — take calibrated
//! analytic paths. This reproduces the over/under-estimation geometry of
//! the paper's Fig. 1: beam ≥ real ≥ fault injection.
//!
//! The crate also implements the paper's §VI FIT_raw measurement: the L1
//! fill/read-back microbenchmark run under beam, whose own output reports
//! the upsets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod raw_fit;
mod session;

pub use config::{
    acceleration_factor, fit_to_sigma, sigma_to_fit, BeamConfig, UnmodeledLogic, LANSCE_FLUX,
    NYC_FLUX_PER_HOUR,
};
pub use raw_fit::{measure_fit_raw, RawFitResult};
pub use session::{
    measure_kernel_residency, run_session, BeamError, BeamResult, StrikeOrigin, StrikeOutcome,
};

//! Rough simulator throughput measurement (cycles/sec), used to sanity-check
//! campaign budgets. Run with --release.
use sea_isa::{Asm, Cond, MemSize, Reg};
use sea_microarch::{
    l1_entry, pte, MachineConfig, NullDevice, StepOutcome, System, PTE_EXEC, PTE_WRITE,
};

fn main() {
    for (name, cfg) in [
        ("detailed", MachineConfig::cortex_a9()),
        ("atomic", MachineConfig::cortex_a9().atomic()),
    ] {
        let mut sys = System::new(cfg, NullDevice);
        // identity map 8MB
        for mib in 0..8u32 {
            let l2 = 0x8000 + mib * 0x400;
            sys.mem
                .phys
                .write(0x4000 + mib * 4, MemSize::Word, l1_entry(l2));
            for page in 0..256u32 {
                sys.mem.phys.write(
                    l2 + page * 4,
                    MemSize::Word,
                    pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
                );
            }
        }
        sys.cpu.ttbr = 0x4000;
        let mut a = Asm::new();
        let e = a.label("e");
        let lp = a.label("lp");
        a.bind(e).unwrap();
        a.mov32(Reg::R1, 2_000_000);
        a.mov32(Reg::R3, 0x0030_0000);
        a.bind(lp).unwrap();
        a.and_imm(Reg::R2, Reg::R1, 0xFF0);
        a.ldr_idx(Reg::R0, Reg::R3, Reg::R2, 0);
        a.add(Reg::R0, Reg::R0, Reg::R1);
        a.str_idx(Reg::R0, Reg::R3, Reg::R2, 0);
        a.subs_imm(Reg::R1, Reg::R1, 1);
        a.b_if(Cond::Ne, lp);
        a.push(sea_isa::Insn::Halt { cond: Cond::Al });
        let img = a.finish(e).unwrap();
        for seg in img.segments() {
            sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
        }
        sys.cpu.pc = img.entry();
        let t0 = std::time::Instant::now();
        loop {
            match sys.step() {
                StepOutcome::Halted => break,
                StepOutcome::LockedUp => panic!("lockup"),
                StepOutcome::Executed => {}
            }
        }
        let dt = t0.elapsed();
        let insts = sys.cpu.counters.instructions;
        let cyc = sys.cpu.counters.cycles;
        println!(
            "{name}: {insts} insts, {cyc} cycles in {dt:?} → {:.1} M inst/s, {:.1} M cyc/s",
            insts as f64 / dt.as_secs_f64() / 1e6,
            cyc as f64 / dt.as_secs_f64() / 1e6
        );
    }
}

//! Fast-path equivalence tests: the µop cache + translation-latch fast
//! path must be *bit-for-bit* transparent — identical counters, identical
//! deep state fingerprints, identical step outcomes — on fault-free runs,
//! across self-modifying code, and across injected flips into every
//! modeled SRAM array (including the L1I, the D-TLB, and the L2 lines that
//! cache page-table memory).

use sea_isa::{Asm, Cond, MemSize, Reg, SysReg};
use sea_microarch::{
    l1_entry, pte, Component, Device, FastPathConfig, MachineConfig, NullDevice, StepOutcome,
    System, PAGE_SHIFT, PTE_EXEC, PTE_VALID, PTE_WRITE,
};

const TTBR: u32 = 0x0000_4000; // 16 KB L1 table at 16 KB
const L2_POOL: u32 = 0x0000_8000; // L2 tables allocated upward from here
const TEXT: u32 = 0x0001_0000;

/// Identity map VA=PA for the first 8 MB (supervisor rwx) plus the first
/// device page — same layout as the baremetal suite, so the page tables
/// themselves live in cacheable physical memory and are walked through the
/// L2 (an L2 flip can therefore corrupt page-table data).
fn build_tables<D: Device>(sys: &mut System<D>) {
    let mut next_l2 = L2_POOL;
    let mut alloc_l2 = || {
        let a = next_l2;
        next_l2 += 0x400;
        a
    };
    for mib in 0..8u32 {
        let l2 = alloc_l2();
        sys.mem
            .phys
            .write(TTBR + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            let ppn = (mib << 8) + page;
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte(ppn, PTE_WRITE | PTE_EXEC | PTE_VALID),
            );
        }
    }
    let l2 = alloc_l2();
    sys.mem.phys.write(
        TTBR + (0xF000_0000u32 >> 20) * 4,
        MemSize::Word,
        l1_entry(l2),
    );
    sys.mem.phys.write(
        l2,
        MemSize::Word,
        pte(0xF000_0000 >> PAGE_SHIFT, PTE_WRITE | PTE_VALID),
    );
    sys.cpu.ttbr = TTBR;
}

fn machine_with(cfg: MachineConfig, build: impl FnOnce(&mut Asm)) -> System<NullDevice> {
    let mut sys = System::new(cfg, NullDevice);
    build_tables(&mut sys);
    let mut a = Asm::new();
    let entry = a.label("entry");
    a.bind(entry).unwrap();
    build(&mut a);
    let img = a.finish(entry).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

fn halt(a: &mut Asm) {
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
}

/// A mixed workload: tight arithmetic (µop-cache heaven), a two-page
/// memory sweep (read-latch streaks + DTLB pressure), an explicit TLB
/// flush, and an SVC round trip (exception entry + ERET, both of which
/// clear the translation latches). Ends by storing the checksum.
fn mixed_workload(a: &mut Asm) {
    let loop1 = a.label("loop1");
    let outer = a.label("outer");
    let inner = a.label("inner");
    a.mov_imm(Reg::R0, 0);
    a.mov_imm(Reg::R1, 100);
    a.bind(loop1).unwrap();
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, loop1);
    a.mov_imm(Reg::R4, 2);
    a.bind(outer).unwrap();
    a.mov32(Reg::R1, 0x0030_0000);
    a.mov32(Reg::R2, 2048); // two 4 KB pages of words
    a.bind(inner).unwrap();
    a.ldr_post(Reg::R5, Reg::R1, 4);
    a.add(Reg::R0, Reg::R0, Reg::R5);
    a.subs_imm(Reg::R2, Reg::R2, 1);
    a.b_if(Cond::Ne, inner);
    a.subs_imm(Reg::R4, Reg::R4, 1);
    a.b_if(Cond::Ne, outer);
    a.mov_imm(Reg::R3, 2);
    a.msr(SysReg::CacheOp, Reg::R3); // TLB flush mid-run
    a.svc(7); // exception entry + eret
    a.mov32(Reg::R2, 0x0030_0000);
    a.str(Reg::R0, Reg::R2, 0);
    halt(a);
}

/// Builds the mixed-workload machine with an SVC handler that just ERETs
/// (planted at PA 0x100, reached via a branch in the SVC vector slot).
fn mixed_machine() -> System<NullDevice> {
    let mut sys = machine_with(MachineConfig::cortex_a9(), mixed_workload);
    let mut h = Asm::new();
    h.set_bases(0x100, 0x1000_0000, 0x2000_0000);
    let e = h.label("h");
    h.bind(e).unwrap();
    h.push(sea_isa::Insn::Eret { cond: Cond::Al });
    let himg = h.finish(e).unwrap();
    sys.mem.phys.write_bytes(0x100, &himg.segments()[0].data);
    let b = sea_isa::encode(&sea_isa::Insn::Branch {
        cond: Cond::Al,
        link: false,
        offset: (0x100 - 0x8 - 4) / 4,
    });
    sys.mem.phys.write(0x8, MemSize::Word, b);
    sys
}

/// Steps `fast` and `slow` in lockstep, asserting identical outcome,
/// identical counters, and identical deep state fingerprints after every
/// single step. Returns the terminal outcome, or `None` if the budget ran
/// out (both machines still in matching states — e.g. a fault-induced
/// hang, which is a legitimate campaign outcome).
fn run_lockstep(
    fast: &mut System<NullDevice>,
    slow: &mut System<NullDevice>,
    max_steps: u64,
) -> Option<StepOutcome> {
    for step in 0..max_steps {
        let a = fast.step();
        let b = slow.step();
        assert_eq!(a, b, "step outcome diverged at step {step}");
        assert_eq!(
            fast.cpu.counters, slow.cpu.counters,
            "counters diverged at step {step} (pc={:#x})",
            slow.cpu.pc
        );
        assert_eq!(
            fast.state_fingerprint_deep(),
            slow.state_fingerprint_deep(),
            "machine state diverged at step {step} (pc={:#x})",
            slow.cpu.pc
        );
        if a != StepOutcome::Executed {
            return Some(a);
        }
    }
    None
}

#[test]
fn fault_free_run_is_step_for_step_identical() {
    let mut fast = mixed_machine();
    let mut slow = mixed_machine();
    fast.fastpath_enable(FastPathConfig::default());
    let out = run_lockstep(&mut fast, &mut slow, 200_000);
    assert_eq!(out, Some(StepOutcome::Halted));
    let stats = fast.fastpath_stats().unwrap();
    assert!(stats.uop_hits > 0, "µop cache never hit: {stats:?}");
    assert!(stats.uop_misses > 0, "µop cache never missed: {stats:?}");
    assert!(
        stats.latch_hits > 0,
        "translation latch never hit: {stats:?}"
    );
    assert!(stats.line_hits > 0, "L1 line latch never hit: {stats:?}");
    // The fast path must actually be doing most of the work on a loopy
    // workload, not just technically engaging.
    assert!(stats.uop_hits > stats.uop_misses * 10);
    assert!(slow.fastpath_stats().is_none());
}

#[test]
fn self_modifying_store_is_seen_by_the_next_fetch() {
    // The program's first word is a NOP that the program itself overwrites
    // with HALT, then cleans+invalidates the caches and jumps back to it.
    // If a stale predecoded µop survived the store, the machine would loop
    // forever; seeing the new encoding halts it on the second pass.
    let build = |a: &mut Asm| {
        let x = a.label("x");
        a.bind(x).unwrap();
        a.nop(); // patched to HALT at run time
        a.mov32(Reg::R1, TEXT);
        a.mov32(
            Reg::R2,
            sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al }),
        );
        a.str(Reg::R2, Reg::R1, 0);
        a.mov_imm(Reg::R3, 1);
        a.msr(SysReg::CacheOp, Reg::R3); // clean + invalidate caches
        a.b(x);
    };
    let mut fast = machine_with(MachineConfig::cortex_a9(), build);
    let mut slow = machine_with(MachineConfig::cortex_a9(), build);
    fast.fastpath_enable(FastPathConfig::default());
    let out = run_lockstep(&mut fast, &mut slow, 10_000);
    assert_eq!(out, Some(StepOutcome::Halted));
    // The patched word really was predecoded before being overwritten.
    let stats = fast.fastpath_stats().unwrap();
    assert!(stats.uop_misses >= 2, "{stats:?}"); // NOP and HALT decodes
}

#[test]
fn self_modifying_store_in_atomic_mode_too() {
    // Atomic mode has no caches: the store is fetch-visible immediately,
    // and only the (paddr, word) µop key protects the fast path.
    let build = |a: &mut Asm| {
        let x = a.label("x");
        a.bind(x).unwrap();
        a.nop();
        a.mov32(Reg::R1, TEXT);
        a.mov32(
            Reg::R2,
            sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al }),
        );
        a.str(Reg::R2, Reg::R1, 0);
        a.b(x);
    };
    let mut fast = machine_with(MachineConfig::cortex_a9().atomic(), build);
    let mut slow = machine_with(MachineConfig::cortex_a9().atomic(), build);
    fast.fastpath_enable(FastPathConfig::default());
    let out = run_lockstep(&mut fast, &mut slow, 10_000);
    assert_eq!(out, Some(StepOutcome::Halted));
}

#[test]
fn injected_flips_are_equivalent_across_every_component() {
    // Warm both machines up (valid lines and TLB entries everywhere),
    // flip the same bit on both, then demand step-for-step identity to the
    // terminal state. Sweeps all six components with bits at both ends and
    // the middle of each array: for the TLBs that covers tag (VPN) bits —
    // the latch-alias hazard — and for the L2 it covers lines caching
    // page-table memory (the walker reads PTEs through the L2).
    for component in Component::ALL {
        let probe_bits = |bits: u64| [0, bits / 2, bits - 1, 21, bits / 2 + 20];
        let bits = mixed_machine().component_bits(component);
        for bit in probe_bits(bits) {
            let bit = bit % bits;
            let mut fast = mixed_machine();
            let mut slow = mixed_machine();
            fast.fastpath_enable(FastPathConfig::default());
            assert_eq!(run_lockstep(&mut fast, &mut slow, 400), None);
            // Same flip on both machines, with the provenance probe armed
            // (campaigns always arm it), so the fast path also has to keep
            // watch reports identical.
            let sf = fast.flip_bit_probed(component, bit);
            let ss = slow.flip_bit_probed(component, bit);
            assert_eq!(sf, ss);
            let out = run_lockstep(&mut fast, &mut slow, 200_000);
            // Terminal state may be a halt, a lock-up, or a hang — the
            // only requirement is that both machines agree (asserted
            // inside run_lockstep), and neither diverged on the way.
            let _ = out;
            let pf = fast.take_probe().unwrap();
            let ps = slow.take_probe().unwrap();
            assert_eq!(
                pf.activated(),
                ps.activated(),
                "{component} bit {bit}: activation diverged"
            );
        }
    }
}

#[test]
fn snapshot_excludes_fastpath_state() {
    use sea_snapshot::{SnapReader, SnapWriter, Snapshot};
    let mut sys = mixed_machine();
    sys.fastpath_enable(FastPathConfig::default());
    for _ in 0..500 {
        sys.step();
    }
    let mut w = SnapWriter::new();
    sys.save(&mut w);
    let buf = w.into_bytes();
    let restored = System::<NullDevice>::load(&mut SnapReader::new(&buf)).unwrap();
    // The restored machine is cold (no fast path) yet bit-identical.
    assert!(!restored.fastpath_enabled());
    assert_eq!(
        restored.state_fingerprint_deep(),
        sys.state_fingerprint_deep()
    );
    // And a warm fast path serializes to exactly the same bytes as no
    // fast path at all: memoization never leaks into .seackpt state.
    sys.fastpath_disable();
    let mut w2 = SnapWriter::new();
    sys.save(&mut w2);
    assert_eq!(buf, w2.into_bytes());
}

#[test]
fn enabling_mid_run_keeps_equivalence() {
    let mut fast = mixed_machine();
    let mut slow = mixed_machine();
    // Run warm, then arm the fast path mid-stream: it must start cold and
    // stay transparent from that point on.
    assert_eq!(run_lockstep(&mut fast, &mut slow, 1_000), None);
    fast.fastpath_enable(FastPathConfig::default());
    let out = run_lockstep(&mut fast, &mut slow, 200_000);
    assert_eq!(out, Some(StepOutcome::Halted));
}

//! Cache-policy property tests: LRU invariants under arbitrary access
//! sequences, and fault-injection bit accounting.

use proptest::prelude::*;
use sea_microarch::{Cache, CacheConfig, Probe};

fn small_cfg() -> CacheConfig {
    CacheConfig {
        size_bytes: 512,
        ways: 4,
        line_bytes: 32,
    } // 4 sets × 4 ways
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The most recently accessed line is never the next victim in its set.
    #[test]
    fn mru_line_survives_the_next_eviction(addrs in prop::collection::vec(0u32..0x2000, 2..100)) {
        let mut c = Cache::new(small_cfg(), true);
        for &a in &addrs {
            let a = a & !31;
            if let Probe::Miss = c.probe(a) {
                let (idx, _) = c.evict_for(a);
                c.fill(idx, a, &[0u8; 32], false);
            }
        }
        // Touch the last address again (MRU), then force an eviction in its
        // set with a fresh conflicting line.
        let hot = *addrs.last().unwrap() & !31;
        let _ = c.probe(hot);
        let conflict = hot ^ 0x4000; // same set, different tag
        if let Probe::Miss = c.probe(conflict) {
            let (idx, _) = c.evict_for(conflict);
            c.fill(idx, conflict, &[0u8; 32], false);
        }
        prop_assert!(matches!(c.probe(hot), Probe::Hit(_)), "MRU line was evicted");
    }

    /// A cache of N ways retains the last N distinct lines of one set.
    #[test]
    fn working_set_of_ways_size_is_retained(tags in prop::collection::vec(0u32..64, 1..20)) {
        let ways = 4usize;
        let mut c = Cache::new(small_cfg(), true);
        let set_stride = 0x80u32; // 4 sets × 32B
        let addrs: Vec<u32> = tags.iter().map(|t| t * set_stride * 4).collect(); // all set 0
        for &a in &addrs {
            if let Probe::Miss = c.probe(a) {
                let (idx, _) = c.evict_for(a);
                c.fill(idx, a, &[0u8; 32], false);
            }
        }
        // The last `ways` *distinct* addresses must all be resident.
        let mut seen = Vec::new();
        for &a in addrs.iter().rev() {
            if !seen.contains(&a) {
                seen.push(a);
            }
            if seen.len() == ways {
                break;
            }
        }
        for &a in &seen {
            prop_assert!(matches!(c.probe(a), Probe::Hit(_)), "line {a:#x} missing");
        }
    }

    /// Every bit index maps onto exactly one cell: flipping it twice is the
    /// identity on all observable state.
    #[test]
    fn double_flip_is_identity(bit_frac in 0.0f64..1.0, addrs in prop::collection::vec(0u32..0x1000, 0..20)) {
        let mut c = Cache::new(small_cfg(), true);
        for &a in &addrs {
            let a = a & !31;
            if let Probe::Miss = c.probe(a) {
                let (idx, _) = c.evict_for(a);
                c.fill(idx, a, &[a as u8; 32], true);
            }
        }
        let reference = c.clone();
        let bit = (bit_frac * (c.total_bits() - 1) as f64) as u64;
        c.flip_bit(bit);
        c.flip_bit(bit);
        // Compare observable state: probes and data for every address.
        for &a in &addrs {
            let a = a & !31;
            let (pa, pb) = (c.peek(a, 4), reference.peek(a, 4));
            prop_assert_eq!(pa, pb, "addr {:#x}", a);
        }
    }
}

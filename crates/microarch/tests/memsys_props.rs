//! Property tests for the memory hierarchy: against a flat reference
//! model, the cache stack must be invisible to a single coherent agent —
//! any interleaving of reads, writes, fetches, walks and flushes.

use proptest::prelude::*;
use sea_isa::MemSize;
use sea_microarch::{Counters, MachineConfig, MemSystem};

#[derive(Clone, Debug)]
enum Op {
    Write {
        addr: u32,
        size: MemSize,
        value: u32,
    },
    Read {
        addr: u32,
        size: MemSize,
    },
    Fetch {
        addr: u32,
    },
    WalkRead {
        addr: u32,
    },
    Flush,
}

fn aligned(addr: u32, size: MemSize) -> u32 {
    addr & !(size.bytes() - 1)
}

fn any_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::Word),
        Just(MemSize::Byte),
        Just(MemSize::Half)
    ]
}

fn any_op(mem_bytes: u32) -> impl Strategy<Value = Op> {
    let addr = 0u32..(mem_bytes - 4);
    prop_oneof![
        (addr.clone(), any_size(), any::<u32>()).prop_map(|(a, s, v)| Op::Write {
            addr: aligned(a, s),
            size: s,
            value: v
        }),
        (addr.clone(), any_size()).prop_map(|(a, s)| Op::Read {
            addr: aligned(a, s),
            size: s
        }),
        addr.clone().prop_map(|a| Op::Fetch { addr: a & !3 }),
        addr.prop_map(|a| Op::WalkRead { addr: a & !3 }),
        Just(Op::Flush),
    ]
}

/// A tiny machine config so evictions and conflicts happen constantly.
fn tiny_machine() -> MachineConfig {
    let mut cfg = MachineConfig::cortex_a9_scaled();
    cfg.l1i.size_bytes = 512;
    cfg.l1i.ways = 2;
    cfg.l1d.size_bytes = 512;
    cfg.l1d.ways = 2;
    cfg.l2.size_bytes = 2048;
    cfg.l2.ways = 2;
    cfg.mem_bytes = 64 * 1024;
    cfg
}

fn mask(size: MemSize) -> u32 {
    match size {
        MemSize::Byte => 0xFF,
        MemSize::Half => 0xFFFF,
        MemSize::Word => u32::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any operation mix, every read path agrees with a flat byte
    /// array (single-agent coherence across L1I/L1D/L2/DRAM + flushes).
    #[test]
    fn hierarchy_is_coherent_against_flat_model(ops in prop::collection::vec(any_op(64 * 1024), 1..200)) {
        let cfg = tiny_machine();
        let mut sys = MemSystem::new(&cfg);
        let mut flat = vec![0u8; cfg.mem_bytes as usize];
        let mut ctr = Counters::default();
        for op in &ops {
            match *op {
                Op::Write { addr, size, value } => {
                    sys.write_data(addr, size, value, &mut ctr);
                    let v = value & mask(size);
                    for b in 0..size.bytes() {
                        flat[(addr + b) as usize] = (v >> (8 * b)) as u8;
                    }
                }
                Op::Read { addr, size } => {
                    let (got, _) = sys.read_data(addr, size, &mut ctr);
                    let mut want = 0u32;
                    for b in 0..size.bytes() {
                        want |= (flat[(addr + b) as usize] as u32) << (8 * b);
                    }
                    prop_assert_eq!(got, want, "read {:#x} {:?}", addr, size);
                }
                Op::Fetch { addr } => {
                    let (got, _) = sys.fetch(addr, &mut ctr);
                    // I-fetch coherence holds after flushes; mid-stream it
                    // may see stale text (real ARM behaves the same), so we
                    // only check that it returns *some* value without
                    // disturbing data coherence.
                    let _ = got;
                }
                Op::WalkRead { addr } => {
                    let (got, _) = sys.walk_read(addr, &mut ctr);
                    // Walks go through L2 only; they may be stale with
                    // respect to dirty L1D lines (hardware walkers share
                    // this hazard until tables are cleaned), so assert only
                    // totality here.
                    let _ = got;
                }
                Op::Flush => sys.clean_invalidate_all(),
            }
        }
        // After a final flush, DRAM itself must equal the flat model.
        sys.clean_invalidate_all();
        for (i, &b) in flat.iter().enumerate() {
            prop_assert_eq!(sys.phys.read(i as u32, MemSize::Byte) as u8, b, "byte {:#x}", i);
        }
    }

    /// `peek` never perturbs subsequent reads (it is a pure observer).
    #[test]
    fn peek_is_side_effect_free(
        writes in prop::collection::vec((0u32..1024, any::<u32>()), 1..40),
        probes in prop::collection::vec(0u32..1024, 1..40),
    ) {
        let cfg = tiny_machine();
        let mut a = MemSystem::new(&cfg);
        let mut b = MemSystem::new(&cfg);
        let mut ctr = Counters::default();
        for &(addr, v) in &writes {
            let addr = addr & !3;
            a.write_data(addr, MemSize::Word, v, &mut ctr);
            b.write_data(addr, MemSize::Word, v, &mut ctr);
        }
        // Peek storm on `a` only.
        for &p in &probes {
            let _ = a.peek(p & !3, MemSize::Word);
        }
        // Both systems must still read identically.
        for &(addr, _) in &writes {
            let addr = addr & !3;
            let (va, _) = a.read_data(addr, MemSize::Word, &mut ctr);
            let (vb, _) = b.read_data(addr, MemSize::Word, &mut ctr);
            prop_assert_eq!(va, vb);
        }
    }

    /// Fetch coherence after a clean+invalidate: the I-side sees every
    /// committed data write.
    #[test]
    fn fetch_sees_writes_after_flush(
        writes in prop::collection::vec((0u32..2048, any::<u32>()), 1..30),
    ) {
        let cfg = tiny_machine();
        let mut sys = MemSystem::new(&cfg);
        let mut flat = vec![0u8; cfg.mem_bytes as usize];
        let mut ctr = Counters::default();
        for &(addr, v) in &writes {
            let addr = addr & !3;
            sys.write_data(addr, MemSize::Word, v, &mut ctr);
            flat[addr as usize..addr as usize + 4].copy_from_slice(&v.to_le_bytes());
        }
        sys.clean_invalidate_all();
        for &(addr, _) in &writes {
            let addr = addr & !3;
            let (got, _) = sys.fetch(addr, &mut ctr);
            let want = u32::from_le_bytes(flat[addr as usize..addr as usize + 4].try_into().unwrap());
            prop_assert_eq!(got, want, "fetch {:#x}", addr);
        }
    }
}

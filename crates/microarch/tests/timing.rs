//! Timing-model tests: the cycle accounting that decides *when* a strike
//! lands (and therefore which state is live) must behave sanely.

use sea_isa::{Asm, Cond, MemSize, Reg};
use sea_microarch::{
    l1_entry, pte, MachineConfig, NullDevice, StepOutcome, System, PTE_EXEC, PTE_WRITE,
};

fn machine() -> System<NullDevice> {
    let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
    for mib in 0..2u32 {
        let l2 = 0x8000 + mib * 0x400;
        sys.mem
            .phys
            .write(0x4000 + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
            );
        }
    }
    sys.cpu.ttbr = 0x4000;
    sys
}

fn run_cycles(body: impl FnOnce(&mut Asm)) -> u64 {
    let mut sys = machine();
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    body(&mut a);
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    for _ in 0..1_000_000 {
        match sys.step() {
            StepOutcome::Halted => return sys.cycles(),
            StepOutcome::LockedUp => panic!("lockup"),
            StepOutcome::Executed => {}
        }
    }
    panic!("did not halt");
}

#[test]
fn divides_cost_more_than_adds() {
    let adds = run_cycles(|a| {
        for _ in 0..64 {
            a.add(Reg::R0, Reg::R0, Reg::R1);
        }
    });
    let divs = run_cycles(|a| {
        a.mov_imm(Reg::R1, 3);
        for _ in 0..64 {
            a.udiv(Reg::R0, Reg::R0, Reg::R1);
        }
    });
    assert!(
        divs > adds + 64 * 8,
        "64 divides ({divs}) should far exceed 64 adds ({adds})"
    );
}

#[test]
fn cache_misses_cost_more_than_hits() {
    // Same access count; one program strides across sets (all misses),
    // the other hammers one line (all hits after the first).
    let hits = run_cycles(|a| {
        a.mov32(Reg::R1, 0x0010_0000);
        for _ in 0..128 {
            a.ldr(Reg::R0, Reg::R1, 0);
        }
    });
    let misses = run_cycles(|a| {
        a.mov32(Reg::R1, 0x0010_0000);
        let lp = a.label("lp");
        a.mov32(Reg::R2, 128);
        a.bind(lp).unwrap();
        a.ldr(Reg::R0, Reg::R1, 0);
        a.add_imm(Reg::R1, Reg::R1, 0x80); // new set every time
        a.subs_imm(Reg::R2, Reg::R2, 1);
        a.b_if(Cond::Ne, lp);
    });
    assert!(misses > hits + 128 * 20, "misses {misses} vs hits {hits}");
}

#[test]
fn mispredicted_branches_are_charged() {
    // A data-dependent alternating branch defeats the bimodal predictor;
    // a monotone loop branch trains it.
    let trained = run_cycles(|a| {
        let lp = a.label("lp");
        a.mov32(Reg::R2, 256);
        a.bind(lp).unwrap();
        a.subs_imm(Reg::R2, Reg::R2, 1);
        a.b_if(Cond::Ne, lp);
    });
    let alternating = run_cycles(|a| {
        // Branch taken on every other iteration.
        let lp = a.label("lp");
        let skip = a.label("skip");
        a.mov32(Reg::R2, 256);
        a.bind(lp).unwrap();
        a.tst_imm(Reg::R2, 1);
        a.b_if(Cond::Eq, skip);
        a.nop();
        a.bind(skip).unwrap();
        a.subs_imm(Reg::R2, Reg::R2, 1);
        a.b_if(Cond::Ne, lp);
    });
    // Not a strict accounting check — just that the alternating pattern
    // pays noticeably more than pure loop overhead would explain.
    assert!(
        alternating > trained,
        "alternating {alternating} vs trained {trained}"
    );
    let mut sys = machine();
    assert_eq!(sys.cpu.counters.branch_misses, 0);
    let _ = sys.step(); // touch the system so the variable is used
}

#[test]
fn tlb_misses_are_counted_and_bounded() {
    // Touch 128 distinct pages: first touch misses, second pass hits
    // (64-entry TLB can't hold 128 pages, so some re-misses are fine).
    let mut sys = machine();
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    a.mov32(Reg::R1, 0x0010_0000);
    let lp = a.label("lp");
    a.mov32(Reg::R2, 128);
    a.bind(lp).unwrap();
    a.ldr(Reg::R0, Reg::R1, 0);
    a.mov32(Reg::R3, 0x1000);
    a.add(Reg::R1, Reg::R1, Reg::R3);
    a.subs_imm(Reg::R2, Reg::R2, 1);
    a.b_if(Cond::Ne, lp);
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    loop {
        match sys.step() {
            StepOutcome::Halted => break,
            StepOutcome::LockedUp => panic!("lockup"),
            StepOutcome::Executed => {}
        }
    }
    let c = sys.cpu.counters;
    assert!(
        c.dtlb_miss >= 128,
        "every new page must miss: {}",
        c.dtlb_miss
    );
    assert!(
        c.dtlb_miss <= 140,
        "re-misses should be rare: {}",
        c.dtlb_miss
    );
    assert!(c.itlb_miss >= 1);
}

#[test]
fn exception_entry_costs_cycles() {
    // An SVC (vector fetch + pipeline flush) must cost more than a nop.
    let base = run_cycles(|a| {
        a.nop();
    });
    let with_exc = run_cycles(|a| {
        // Plant a minimal SVC vector at runtime is not possible here (no
        // handler mapped), so instead take an exception path we recover
        // from: conditional-fail SVC costs nothing extra.
        a.ifc(Cond::Nv).svc(0);
        a.nop();
    });
    // The Nv-condition SVC retires without vectoring; cost ≈ 1 cycle.
    assert!(with_exc >= base && with_exc <= base + 4);
}

#[test]
fn pc_trace_records_recent_history() {
    let mut sys = machine();
    sys.cpu.enable_trace(8);
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    for _ in 0..20 {
        a.nop();
    }
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    loop {
        if sys.step() == StepOutcome::Halted {
            break;
        }
    }
    let trace = sys.cpu.trace();
    assert_eq!(trace.len(), 8, "ring must be full");
    // The last entry is the halt; entries are consecutive PCs.
    for w in trace.windows(2) {
        assert_eq!(w[1], w[0] + 4);
    }
    assert_eq!(*trace.last().unwrap(), img.entry() + 20 * 4);
}

//! Execution-semantics property tests: random straight-line programs must
//! produce identical architectural state under the atomic and detailed
//! models, and ALU flag semantics must match the host's arithmetic.

use proptest::prelude::*;
use sea_isa::{encode, Cond, DpOp, Insn, MemSize, MulOp, Operand2, Reg, Shift, ShiftedReg};
use sea_microarch::{
    l1_entry, pte, MachineConfig, Mode, NullDevice, StepOutcome, System, PTE_EXEC, PTE_WRITE,
};

const TTBR: u32 = 0x4000;

fn machine(cfg: MachineConfig) -> System<NullDevice> {
    let mut sys = System::new(cfg, NullDevice);
    for mib in 0..2u32 {
        let l2 = 0x8000 + mib * 0x400;
        sys.mem
            .phys
            .write(TTBR + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
            );
        }
    }
    sys.cpu.ttbr = TTBR;
    sys
}

/// Registers safe for random programs (no sp/lr/pc).
fn any_low_reg() -> impl Strategy<Value = Reg> {
    (0u32..11).prop_map(Reg::from_index)
}

fn any_safe_insn() -> impl Strategy<Value = Insn> {
    let dp_ops = prop_oneof![
        Just(DpOp::And),
        Just(DpOp::Eor),
        Just(DpOp::Sub),
        Just(DpOp::Rsb),
        Just(DpOp::Add),
        Just(DpOp::Adc),
        Just(DpOp::Sbc),
        Just(DpOp::Orr),
        Just(DpOp::Mov),
        Just(DpOp::Bic),
        Just(DpOp::Mvn),
        Just(DpOp::Cmp),
        Just(DpOp::Cmn),
        Just(DpOp::Tst),
        Just(DpOp::Teq),
    ];
    let op2 = prop_oneof![
        (any_low_reg(), 0usize..4, 0u8..32).prop_map(|(rm, s, amount)| Operand2::Reg(ShiftedReg {
            rm,
            shift: Shift::ALL[s],
            amount
        })),
        (any::<u8>(), 0u8..8).prop_map(|(base, ror4)| Operand2::Imm { base, ror4 }),
    ];
    let cond = (0u32..15).prop_map(Cond::from_bits); // skip Nv for variety
    prop_oneof![
        (
            cond.clone(),
            dp_ops,
            any::<bool>(),
            any_low_reg(),
            any_low_reg(),
            op2
        )
            .prop_map(|(cond, op, s, rd, rn, op2)| {
                let s = s || op.is_compare();
                let rd = if op.is_compare() { Reg::R0 } else { rd };
                let rn = if op.ignores_rn() { Reg::R0 } else { rn };
                Insn::Dp {
                    cond,
                    op,
                    s,
                    rd,
                    rn,
                    op2,
                }
            }),
        (cond.clone(), any::<bool>(), any_low_reg(), any::<u16>())
            .prop_map(|(cond, top, rd, imm)| Insn::MovW { cond, top, rd, imm }),
        (
            cond,
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Udiv),
                Just(MulOp::Sdiv),
                Just(MulOp::Urem),
                Just(MulOp::Srem),
                Just(MulOp::Lslv),
                Just(MulOp::Lsrv),
                Just(MulOp::Asrv),
                Just(MulOp::Rorv),
            ],
            any::<bool>(),
            any_low_reg(),
            any_low_reg(),
            any_low_reg()
        )
            .prop_map(|(cond, op, s, rd, rn, rm)| Insn::Mul {
                cond,
                op,
                s,
                rd,
                rn,
                rm,
                ra: Reg::R0
            }),
    ]
}

fn load_program(sys: &mut System<NullDevice>, insns: &[Insn], seeds: &[u32; 11]) {
    let base = 0x0001_0000u32;
    let mut addr = base;
    for insn in insns {
        sys.mem.phys.write(addr, MemSize::Word, encode(insn));
        addr += 4;
    }
    sys.mem
        .phys
        .write(addr, MemSize::Word, encode(&Insn::Halt { cond: Cond::Al }));
    sys.cpu.pc = base;
    for (i, &v) in seeds.iter().enumerate() {
        sys.cpu.regs.set(Reg::from_index(i as u32), Mode::Svc, v);
    }
}

fn run(sys: &mut System<NullDevice>, max: u64) {
    for _ in 0..max {
        match sys.step() {
            StepOutcome::Halted => return,
            StepOutcome::LockedUp => panic!("lockup"),
            StepOutcome::Executed => {}
        }
    }
    panic!("did not halt");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random ALU programs retire identically in atomic and detailed mode:
    /// caches, TLBs and the predictor are architecturally invisible.
    #[test]
    fn atomic_detailed_equivalence(
        insns in prop::collection::vec(any_safe_insn(), 1..60),
        seeds in prop::array::uniform11(any::<u32>()),
    ) {
        let mut det = machine(MachineConfig::cortex_a9());
        let mut atm = machine(MachineConfig::cortex_a9().atomic());
        load_program(&mut det, &insns, &seeds);
        load_program(&mut atm, &insns, &seeds);
        run(&mut det, 10_000);
        run(&mut atm, 10_000);
        for i in 0..11u32 {
            let r = Reg::from_index(i);
            prop_assert_eq!(
                det.cpu.regs.get(r, Mode::Svc),
                atm.cpu.regs.get(r, Mode::Svc),
                "r{} differs", i
            );
        }
        prop_assert_eq!(det.cpu.cpsr.to_bits(), atm.cpu.cpsr.to_bits(), "flags differ");
        prop_assert_eq!(det.cpu.counters.instructions, atm.cpu.counters.instructions);
    }

    /// ADD/SUB flag semantics agree with the host's widening arithmetic.
    #[test]
    fn add_sub_flags_match_host(a in any::<u32>(), b in any::<u32>()) {
        // ADDS r2, r0, r1
        let mut sys = machine(MachineConfig::cortex_a9().atomic());
        let insns = [Insn::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(ShiftedReg::plain(Reg::R1)),
        }];
        let mut seeds = [0u32; 11];
        seeds[0] = a;
        seeds[1] = b;
        load_program(&mut sys, &insns, &seeds);
        run(&mut sys, 10);
        let sum = a.wrapping_add(b);
        prop_assert_eq!(sys.cpu.regs.get(Reg::R2, Mode::Svc), sum);
        prop_assert_eq!(sys.cpu.cpsr.c, (a as u64 + b as u64) > u32::MAX as u64);
        prop_assert_eq!(sys.cpu.cpsr.v, (a as i32).checked_add(b as i32).is_none());
        prop_assert_eq!(sys.cpu.cpsr.z, sum == 0);
        prop_assert_eq!(sys.cpu.cpsr.n, (sum as i32) < 0);

        // SUBS r2, r0, r1: C = no borrow.
        let mut sys = machine(MachineConfig::cortex_a9().atomic());
        let insns = [Insn::Dp {
            cond: Cond::Al,
            op: DpOp::Sub,
            s: true,
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(ShiftedReg::plain(Reg::R1)),
        }];
        load_program(&mut sys, &insns, &seeds);
        run(&mut sys, 10);
        prop_assert_eq!(sys.cpu.regs.get(Reg::R2, Mode::Svc), a.wrapping_sub(b));
        prop_assert_eq!(sys.cpu.cpsr.c, a >= b);
        prop_assert_eq!(sys.cpu.cpsr.v, (a as i32).checked_sub(b as i32).is_none());
    }

    /// Division semantics: divide-by-zero yields zero, as on ARMv7-R.
    #[test]
    fn division_by_zero_yields_zero(a in any::<u32>()) {
        let mut sys = machine(MachineConfig::cortex_a9().atomic());
        let insns = [
            Insn::Mul {
                cond: Cond::Al,
                op: MulOp::Udiv,
                s: false,
                rd: Reg::R2,
                rn: Reg::R0,
                rm: Reg::R1,
                ra: Reg::R0,
            },
            Insn::Mul {
                cond: Cond::Al,
                op: MulOp::Srem,
                s: false,
                rd: Reg::R3,
                rn: Reg::R0,
                rm: Reg::R1,
                ra: Reg::R0,
            },
        ];
        let mut seeds = [0u32; 11];
        seeds[0] = a;
        seeds[1] = 0;
        load_program(&mut sys, &insns, &seeds);
        run(&mut sys, 10);
        prop_assert_eq!(sys.cpu.regs.get(Reg::R2, Mode::Svc), 0);
        prop_assert_eq!(sys.cpu.regs.get(Reg::R3, Mode::Svc), 0);
    }

    /// Long multiplies produce the full 64-bit product.
    #[test]
    fn long_multiply_is_exact(a in any::<u32>(), b in any::<u32>()) {
        for (op, wide) in [
            (MulOp::Umull, a as u64 * b as u64),
            (MulOp::Smull, (a as i32 as i64 * b as i32 as i64) as u64),
        ] {
            let mut sys = machine(MachineConfig::cortex_a9().atomic());
            let insns = [Insn::Mul {
                cond: Cond::Al,
                op,
                s: false,
                rd: Reg::R2,
                rn: Reg::R0,
                rm: Reg::R1,
                ra: Reg::R3,
            }];
            let mut seeds = [0u32; 11];
            seeds[0] = a;
            seeds[1] = b;
            load_program(&mut sys, &insns, &seeds);
            run(&mut sys, 10);
            prop_assert_eq!(sys.cpu.regs.get(Reg::R2, Mode::Svc), wide as u32);
            prop_assert_eq!(sys.cpu.regs.get(Reg::R3, Mode::Svc), (wide >> 32) as u32);
        }
    }
}

//! Warp-tier (functional execution) tests.
//!
//! The warp tier is *architecturally* exact while interrupts are
//! quiescent: registers, status registers, PC, memory contents and the
//! retired-instruction count all match detailed stepping — only timing
//! (cycles) and microarchitectural residency (caches, TLBs, predictor)
//! may differ. These tests pin that contract down across control flow,
//! exceptions + mode changes, TLB flushes and self-modifying code, and
//! check the trace cache's hit/invalidation bookkeeping.

use sea_isa::{Asm, Cond, MemSize, Reg, SysReg};
use sea_microarch::{
    l1_entry, pte, MachineConfig, NullDevice, StepOutcome, System, WarpConfig, PAGE_SHIFT,
    PTE_EXEC, PTE_VALID, PTE_WRITE,
};

const TTBR: u32 = 0x0000_4000;
const L2_POOL: u32 = 0x0000_8000;
const TEXT: u32 = 0x0001_0000;
const RESULT: u32 = 0x0030_0000;

/// Identity map VA=PA for the first 8 MB (supervisor rwx) plus the first
/// device page — same layout as the fastpath and baremetal suites.
fn build_tables(sys: &mut System<NullDevice>) {
    let mut next_l2 = L2_POOL;
    let mut alloc_l2 = || {
        let a = next_l2;
        next_l2 += 0x400;
        a
    };
    for mib in 0..8u32 {
        let l2 = alloc_l2();
        sys.mem
            .phys
            .write(TTBR + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            let ppn = (mib << 8) + page;
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte(ppn, PTE_WRITE | PTE_EXEC | PTE_VALID),
            );
        }
    }
    let l2 = alloc_l2();
    sys.mem.phys.write(
        TTBR + (0xF000_0000u32 >> 20) * 4,
        MemSize::Word,
        l1_entry(l2),
    );
    sys.mem.phys.write(
        l2,
        MemSize::Word,
        pte(0xF000_0000 >> PAGE_SHIFT, PTE_WRITE | PTE_VALID),
    );
    sys.cpu.ttbr = TTBR;
}

fn machine_with(cfg: MachineConfig, build: impl FnOnce(&mut Asm)) -> System<NullDevice> {
    let mut sys = System::new(cfg, NullDevice);
    build_tables(&mut sys);
    let mut a = Asm::new();
    let entry = a.label("entry");
    a.bind(entry).unwrap();
    build(&mut a);
    let img = a.finish(entry).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

fn halt(a: &mut Asm) {
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
}

/// A mixed workload: tight arithmetic, a two-page memory sweep, an
/// explicit TLB flush, and an SVC round trip (exception entry + ERET —
/// both mode changes, both warp-trace flush points). Stores the checksum
/// at RESULT and halts.
fn mixed_workload(a: &mut Asm) {
    let loop1 = a.label("loop1");
    let outer = a.label("outer");
    let inner = a.label("inner");
    a.mov_imm(Reg::R0, 0);
    a.mov_imm(Reg::R1, 100);
    a.bind(loop1).unwrap();
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, loop1);
    a.mov_imm(Reg::R4, 2);
    a.bind(outer).unwrap();
    a.mov32(Reg::R1, RESULT);
    a.mov32(Reg::R2, 2048);
    a.bind(inner).unwrap();
    a.ldr_post(Reg::R5, Reg::R1, 4);
    a.add(Reg::R0, Reg::R0, Reg::R5);
    a.subs_imm(Reg::R2, Reg::R2, 1);
    a.b_if(Cond::Ne, inner);
    a.subs_imm(Reg::R4, Reg::R4, 1);
    a.b_if(Cond::Ne, outer);
    a.mov_imm(Reg::R3, 2);
    a.msr(SysReg::CacheOp, Reg::R3); // TLB flush mid-run
    a.svc(7); // exception entry + eret
    a.mov32(Reg::R2, RESULT);
    a.str(Reg::R0, Reg::R2, 0);
    halt(a);
}

/// Builds the mixed-workload machine with an SVC handler that just ERETs.
fn mixed_machine() -> System<NullDevice> {
    let mut sys = machine_with(MachineConfig::cortex_a9(), mixed_workload);
    let mut h = Asm::new();
    h.set_bases(0x100, 0x1000_0000, 0x2000_0000);
    let e = h.label("h");
    h.bind(e).unwrap();
    h.push(sea_isa::Insn::Eret { cond: Cond::Al });
    let himg = h.finish(e).unwrap();
    sys.mem.phys.write_bytes(0x100, &himg.segments()[0].data);
    let b = sea_isa::encode(&sea_isa::Insn::Branch {
        cond: Cond::Al,
        link: false,
        offset: (0x100 - 0x8 - 4) / 4,
    });
    sys.mem.phys.write(0x8, MemSize::Word, b);
    sys
}

/// The architectural face of a machine: every register word, the status/
/// fault registers, PC and the retired-instruction count — everything the
/// warp tier promises to keep exact (cycles and residency excluded).
fn arch_state(sys: &System<NullDevice>) -> (Vec<u32>, u32, u32, u32, u32, u32, u32, u32, u64) {
    (
        sys.cpu.regs.words().to_vec(),
        sys.cpu.cpsr.to_bits(),
        sys.cpu.pc,
        sys.cpu.spsr,
        sys.cpu.elr,
        sys.cpu.esr,
        sys.cpu.far,
        sys.cpu.ttbr,
        sys.cpu.counters.instructions,
    )
}

#[test]
fn warp_matches_detailed_architecturally_across_modes_and_flushes() {
    let mut detailed = mixed_machine();
    let mut steps = 0u64;
    while detailed.step() == StepOutcome::Executed {
        steps += 1;
        assert!(steps < 200_000, "detailed run never halted");
    }

    let mut warp = mixed_machine();
    warp.warp_enable(WarpConfig::default());
    let out = warp.run_warp(u64::MAX);
    assert_eq!(out, StepOutcome::Halted);

    assert_eq!(arch_state(&warp), arch_state(&detailed));
    assert_eq!(
        warp.mem.peek(RESULT, MemSize::Word),
        detailed.mem.peek(RESULT, MemSize::Word)
    );
    let stats = warp.warp_stats().unwrap();
    assert!(stats.block_hits > 0, "trace cache never hit: {stats:?}");
    assert!(
        stats.block_misses > 0,
        "trace cache never missed: {stats:?}"
    );
    // SVC entry, ERET and the TLB flush each flushed the trace cache.
    assert!(stats.flushes >= 3, "{stats:?}");
    // A loopy workload must mostly run from fused traces.
    assert!(stats.block_hits > stats.block_misses * 4, "{stats:?}");
    assert!(stats.insns > 0);
}

#[test]
fn run_warp_budget_counts_steps_like_the_detailed_tier() {
    // Splitting the budget across several run_warp calls and comparing
    // against detailed step()-call counts pins the "one step = one step"
    // accounting (retired instruction or vectored exception).
    let mut detailed = mixed_machine();
    let mut warp = mixed_machine();
    warp.warp_enable(WarpConfig::default());
    for budget in [1u64, 7, 100, 1000, 2000] {
        assert_eq!(warp.run_warp(budget), StepOutcome::Executed);
        for _ in 0..budget {
            assert_eq!(detailed.step(), StepOutcome::Executed);
        }
        assert_eq!(arch_state(&warp), arch_state(&detailed));
    }
}

#[test]
fn self_modifying_store_invalidates_the_fused_trace() {
    // The program overwrites its own first word (a NOP) with HALT and
    // loops back to it. A stale fused trace would spin forever; the SMC
    // page filter must drop it so the re-fetch sees the HALT.
    let build = |a: &mut Asm| {
        let x = a.label("x");
        a.bind(x).unwrap();
        a.nop(); // patched to HALT at run time
        a.mov32(Reg::R1, TEXT);
        a.mov32(
            Reg::R2,
            sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al }),
        );
        a.str(Reg::R2, Reg::R1, 0);
        a.b(x);
    };
    // Baseline with the same memory semantics as the warp tier (atomic):
    // stores are immediately fetch-visible.
    let mut atomic = machine_with(MachineConfig::cortex_a9().atomic(), build);
    let mut steps = 0u64;
    while atomic.step() == StepOutcome::Executed {
        steps += 1;
        assert!(steps < 10_000, "atomic baseline never halted");
    }

    let mut warp = machine_with(MachineConfig::cortex_a9(), build);
    warp.warp_enable(WarpConfig::default());
    assert_eq!(warp.run_warp(10_000), StepOutcome::Halted);
    assert_eq!(arch_state(&warp), arch_state(&atomic));
    let stats = warp.warp_stats().unwrap();
    assert!(stats.smc_invalidations >= 1, "{stats:?}");
}

#[test]
fn warp_handoff_to_detailed_reaches_the_same_result() {
    // Warp partway, then finish on the detailed tier: the architectural
    // result must match a pure detailed run (timing differs — the
    // detailed resume starts with cold caches).
    let mut detailed = mixed_machine();
    while detailed.step() == StepOutcome::Executed {}

    let mut two_tier = mixed_machine();
    two_tier.warp_enable(WarpConfig::default());
    assert_eq!(two_tier.run_warp(5_000), StepOutcome::Executed);
    let mut steps = 0u64;
    while two_tier.step() == StepOutcome::Executed {
        steps += 1;
        assert!(steps < 200_000, "two-tier run never halted");
    }
    assert_eq!(
        two_tier.mem.peek(RESULT, MemSize::Word),
        detailed.mem.peek(RESULT, MemSize::Word)
    );
    assert_eq!(two_tier.cpu.regs.words(), detailed.cpu.regs.words());
    assert_eq!(
        two_tier.cpu.counters.instructions,
        detailed.cpu.counters.instructions
    );
}

#[test]
fn detailed_stepping_is_untouched_by_an_armed_warp_engine() {
    // Arming the warp tier without calling run_warp must leave detailed
    // stepping bit-exact (the equivalence bar the campaign cursor needs).
    let mut plain = mixed_machine();
    let mut armed = mixed_machine();
    armed.warp_enable(WarpConfig::default());
    loop {
        let a = plain.step();
        let b = armed.step();
        assert_eq!(a, b);
        assert_eq!(
            plain.state_fingerprint_deep(),
            armed.state_fingerprint_deep()
        );
        if a != StepOutcome::Executed {
            break;
        }
    }
}

#[test]
fn snapshot_excludes_warp_state() {
    use sea_snapshot::{SnapReader, SnapWriter, Snapshot};
    let mut sys = mixed_machine();
    sys.warp_enable(WarpConfig::default());
    sys.run_warp(500);
    let mut w = SnapWriter::new();
    sys.save(&mut w);
    let buf = w.into_bytes();
    let restored = System::<NullDevice>::load(&mut SnapReader::new(&buf)).unwrap();
    assert!(!restored.warp_enabled());
    // A warm trace cache serializes to exactly the same bytes as none.
    sys.warp_disable();
    let mut w2 = SnapWriter::new();
    sys.save(&mut w2);
    assert_eq!(buf, w2.into_bytes());
}

//! Bare-metal end-to-end tests of the system model: hand-built page tables,
//! supervisor-mode programs, exceptions, IRQs, and atomic/detailed
//! equivalence.

use sea_isa::{Asm, Cond, MemSize, Reg, SysReg};
use sea_microarch::{
    l1_entry, pte, Device, MachineConfig, NullDevice, StepOutcome, System, PAGE_SHIFT, PTE_EXEC,
    PTE_USER, PTE_VALID, PTE_WRITE,
};

const TTBR: u32 = 0x0000_4000; // 16 KB L1 table at 16 KB
const L2_POOL: u32 = 0x0000_8000; // L2 tables allocated upward from here

/// Builds page tables in physical memory mapping identity VA=PA for the
/// first 8 MB (supervisor rwx; the low vector page is part of it) plus the
/// first device page.
fn build_tables<D: Device>(sys: &mut System<D>) {
    let mut next_l2 = L2_POOL;
    let mut alloc_l2 = || {
        let a = next_l2;
        next_l2 += 0x400;
        a
    };
    // Identity map 8 MB = 8 × 1 MB L1 entries.
    for mib in 0..8u32 {
        let l2 = alloc_l2();
        sys.mem
            .phys
            .write(TTBR + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            let ppn = (mib << 8) + page;
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte(ppn, PTE_WRITE | PTE_EXEC | PTE_VALID),
            );
        }
    }
    // Device window: identity-map the first device page.
    let l2 = alloc_l2();
    sys.mem.phys.write(
        TTBR + (0xF000_0000u32 >> 20) * 4,
        MemSize::Word,
        l1_entry(l2),
    );
    sys.mem.phys.write(
        l2,
        MemSize::Word,
        pte(0xF000_0000 >> PAGE_SHIFT, PTE_WRITE | PTE_VALID),
    );
    sys.cpu.ttbr = TTBR;
}

/// Assembles `build` into a fresh supervisor-mode machine at VA/PA
/// 0x0001_0000 and returns the machine ready to run.
fn machine_with(cfg: MachineConfig, build: impl FnOnce(&mut Asm)) -> System<NullDevice> {
    let mut sys = System::new(cfg, NullDevice);
    build_tables(&mut sys);
    let mut a = Asm::new();
    let entry = a.label("entry");
    a.bind(entry).unwrap();
    build(&mut a);
    let img = a.finish(entry).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

fn run_to_halt<D: Device>(sys: &mut System<D>, max_steps: u64) {
    for _ in 0..max_steps {
        match sys.step() {
            StepOutcome::Halted => return,
            StepOutcome::LockedUp => panic!("machine locked up at pc={:#x}", sys.cpu.pc),
            StepOutcome::Executed => {}
        }
    }
    panic!(
        "program did not halt within {max_steps} steps (pc={:#x})",
        sys.cpu.pc
    );
}

fn halt(a: &mut Asm) {
    a.push(sea_isa::Insn::Halt { cond: Cond::Al });
}

#[test]
fn arithmetic_loop_sums_to_expected() {
    // sum = 1 + 2 + … + 100 = 5050, stored to memory.
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        let loop_ = a.label("loop");
        a.mov_imm(Reg::R0, 0); // sum
        a.mov_imm(Reg::R1, 100); // i
        a.bind(loop_).unwrap();
        a.add(Reg::R0, Reg::R0, Reg::R1);
        a.subs_imm(Reg::R1, Reg::R1, 1);
        a.b_if(Cond::Ne, loop_);
        a.mov32(Reg::R2, 0x0030_0000);
        a.str(Reg::R0, Reg::R2, 0);
        halt(a);
    });
    run_to_halt(&mut sys, 10_000);
    assert_eq!(sys.mem.peek(0x0030_0000, MemSize::Word), 5050);
    assert!(sys.cpu.counters.instructions > 300);
    assert!(sys.cpu.counters.cycles > sys.cpu.counters.instructions);
}

#[test]
fn atomic_and_detailed_modes_agree_architecturally() {
    let build = |a: &mut Asm| {
        let loop_ = a.label("loop");
        a.mov_imm(Reg::R0, 0);
        a.mov_imm(Reg::R1, 37);
        a.mov32(Reg::R3, 0x0030_0000);
        a.bind(loop_).unwrap();
        a.mul(Reg::R2, Reg::R1, Reg::R1);
        a.add(Reg::R0, Reg::R0, Reg::R2);
        a.str_idx(Reg::R0, Reg::R3, Reg::R1, 2);
        a.subs_imm(Reg::R1, Reg::R1, 1);
        a.b_if(Cond::Ne, loop_);
        halt(a);
    };
    let mut det = machine_with(MachineConfig::cortex_a9(), build);
    let mut atm = machine_with(MachineConfig::cortex_a9().atomic(), build);
    run_to_halt(&mut det, 10_000);
    run_to_halt(&mut atm, 10_000);
    assert_eq!(
        det.cpu.regs.get(Reg::R0, sea_microarch::Mode::Svc),
        atm.cpu.regs.get(Reg::R0, sea_microarch::Mode::Svc)
    );
    for i in 1..=37u32 {
        let addr = 0x0030_0000 + i * 4;
        assert_eq!(
            det.mem.peek(addr, MemSize::Word),
            atm.mem.peek(addr, MemSize::Word)
        );
    }
    // Detailed mode pays cache/mispredict latency; atomic must be faster.
    assert!(det.cpu.counters.cycles > atm.cpu.counters.cycles);
    assert_eq!(det.cpu.counters.instructions, atm.cpu.counters.instructions);
}

#[test]
fn fp_pipeline_computes_dot_product() {
    use sea_isa::s;
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        // r0 = int(Σ i·i for i in 1..=10) = 385
        let loop_ = a.label("loop");
        a.mov_imm(Reg::R1, 10);
        a.mov_imm(Reg::R2, 0);
        a.vcvt_from_int(s(0), Reg::R2); // acc = 0.0
        a.bind(loop_).unwrap();
        a.vcvt_from_int(s(1), Reg::R1);
        a.vmla(s(0), s(1), s(1));
        a.subs_imm(Reg::R1, Reg::R1, 1);
        a.b_if(Cond::Ne, loop_);
        a.vcvt_to_int(Reg::R0, s(0));
        halt(a);
    });
    run_to_halt(&mut sys, 10_000);
    assert_eq!(sys.cpu.regs.get(Reg::R0, sea_microarch::Mode::Svc), 385);
}

#[test]
fn svc_vectors_to_handler_and_eret_returns() {
    // Vector page is PA 0; plant a tiny handler there: the SVC slot (offset
    // 8) branches to a stub that sets r5 and ERETs.
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        a.mov_imm(Reg::R5, 0);
        a.svc(42);
        halt(a); // reached only after eret
    });
    // Handler stub at PA/VA 0x100, just past the vector slots:
    let mut h = Asm::new();
    h.set_bases(0x100, 0x1000_0000, 0x2000_0000);
    let e = h.label("h");
    h.bind(e).unwrap();
    h.mrs(Reg::R5, SysReg::Esr);
    h.push(sea_isa::Insn::Eret { cond: Cond::Al });
    let himg = h.finish(e).unwrap();
    sys.mem.phys.write_bytes(0x100, &himg.segments()[0].data);
    // SVC vector slot: branch 0x8 → 0x100.
    let b = sea_isa::encode(&sea_isa::Insn::Branch {
        cond: Cond::Al,
        link: false,
        offset: (0x100 - 0x8 - 4) / 4,
    });
    sys.mem.phys.write(0x8, MemSize::Word, b);
    run_to_halt(&mut sys, 1_000);
    let esr = sys.cpu.regs.get(Reg::R5, sea_microarch::Mode::Svc);
    assert_eq!(esr >> 24, sea_microarch::ESR_CLASS_SVC);
    assert_eq!(esr & 0xFFFF, 42);
}

#[test]
fn undefined_instruction_vectors_with_esr() {
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        a.nop(); // replaced below with an invalid word
        halt(a);
    });
    // Plant a handler at the undefined vector (offset 4) that halts.
    let hw = sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al });
    sys.mem.phys.write(0x4, MemSize::Word, hw);
    // Overwrite the program's first word with a truly invalid encoding.
    sys.mem.phys.write(0x0001_0000, MemSize::Word, 0xE900_0000);
    run_to_halt(&mut sys, 100);
    assert_eq!(sys.cpu.esr >> 24, sea_microarch::ESR_CLASS_UNDEFINED);
}

#[test]
fn data_abort_on_unmapped_address_reports_far() {
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        a.mov32(Reg::R1, 0x4000_0000); // far beyond the 8 MB identity map
        a.ldr(Reg::R0, Reg::R1, 0);
        halt(a);
    });
    let hw = sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al });
    sys.mem.phys.write(0x10, MemSize::Word, hw); // data-abort vector
    run_to_halt(&mut sys, 100);
    assert_eq!(sys.cpu.esr >> 24, sea_microarch::ESR_CLASS_DATA_ABORT);
    assert_eq!(sys.cpu.far, 0x4000_0000);
}

#[test]
fn alignment_fault_on_unaligned_word_access() {
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        a.mov32(Reg::R1, 0x0030_0001);
        a.ldr(Reg::R0, Reg::R1, 0);
        halt(a);
    });
    let hw = sea_isa::encode(&sea_isa::Insn::Halt { cond: Cond::Al });
    sys.mem.phys.write(0x10, MemSize::Word, hw);
    run_to_halt(&mut sys, 100);
    assert_eq!(sys.cpu.esr & 0xFFFF, 3); // AbortCause::Alignment
}

/// Device with a one-shot timer that raises IRQ after N cycles.
struct OneShotTimer {
    deadline: u64,
    fired: bool,
}

impl Device for OneShotTimer {
    fn read(&mut self, _o: u32, _s: MemSize) -> u32 {
        0
    }
    fn write(&mut self, _o: u32, _s: MemSize, _v: u32) {
        self.fired = true; // any write acknowledges
    }
    fn poll_irq(&mut self, now: u64) -> bool {
        !self.fired && now >= self.deadline
    }
}

#[test]
fn irq_is_taken_when_unmasked_and_wfi_wakes() {
    let mut sys = System::new(
        MachineConfig::cortex_a9(),
        OneShotTimer {
            deadline: 200,
            fired: false,
        },
    );
    build_tables(&mut sys);
    // Program: enable IRQs, spin WFI; IRQ handler acknowledges the device
    // and halts.
    let mut a = Asm::new();
    let entry = a.label("entry");
    a.bind(entry).unwrap();
    a.push(sea_isa::Insn::Cps {
        cond: Cond::Al,
        enable_irq: true,
    });
    let spin = a.label("spin");
    a.bind(spin).unwrap();
    a.push(sea_isa::Insn::Wfi { cond: Cond::Al });
    a.b(spin);
    let img = a.finish(entry).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    // IRQ vector (offset 0x14): store to device (ack) then halt.
    let mut h = Asm::new();
    h.set_bases(0x0000_0200, 0x1000_0000, 0x2000_0000);
    let e = h.label("irq");
    h.bind(e).unwrap();
    h.mov32(Reg::R1, 0xF000_0000);
    h.str(Reg::R0, Reg::R1, 0); // ack → deasserts the line
    halt(&mut h);
    let himg = h.finish(e).unwrap();
    sys.mem.phys.write_bytes(0x200, &himg.segments()[0].data);
    let b = sea_isa::encode(&sea_isa::Insn::Branch {
        cond: Cond::Al,
        link: false,
        offset: (0x200 - 0x14 - 4) / 4,
    });
    sys.mem.phys.write(0x14, MemSize::Word, b);
    run_to_halt(&mut sys, 10_000);
    assert_eq!(sys.cpu.esr >> 24, sea_microarch::ESR_CLASS_IRQ);
    assert!(sys.cpu.counters.cycles >= 200);
}

#[test]
fn detailed_mode_counts_cache_misses_then_hits() {
    let mut sys = machine_with(MachineConfig::cortex_a9(), |a| {
        // Two passes over a 4 KB buffer: first pass misses, second hits.
        let outer = a.label("outer");
        let inner = a.label("inner");
        a.mov_imm(Reg::R4, 2);
        a.bind(outer).unwrap();
        a.mov32(Reg::R1, 0x0030_0000);
        a.mov32(Reg::R2, 1024);
        a.bind(inner).unwrap();
        a.ldr_post(Reg::R0, Reg::R1, 4);
        a.subs_imm(Reg::R2, Reg::R2, 1);
        a.b_if(Cond::Ne, inner);
        a.subs_imm(Reg::R4, Reg::R4, 1);
        a.b_if(Cond::Ne, outer);
        halt(a);
    });
    run_to_halt(&mut sys, 100_000);
    let c = sys.cpu.counters;
    assert_eq!(c.l1d_access, 2048);
    // 4 KB / 32 B lines = 128 compulsory misses; second pass hits.
    assert_eq!(c.l1d_miss, 128);
    assert!(c.dtlb_miss >= 1);
    assert!(c.branch_misses > 0);
}

#[test]
fn lockup_when_vector_page_unmapped_is_reported() {
    // No vector mapping at all: SVC → vector fetch faults → LockedUp.
    let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
    // Identity-map 1 MiB *except* the vector page (page 0).
    let l2 = L2_POOL;
    sys.mem.phys.write(TTBR, MemSize::Word, l1_entry(l2));
    for page in 1..256u32 {
        sys.mem.phys.write(
            l2 + page * 4,
            MemSize::Word,
            pte(page, PTE_WRITE | PTE_EXEC | PTE_USER),
        );
    }
    sys.cpu.ttbr = TTBR;
    let mut a = Asm::new();
    a.set_bases(0x0001_0000, 0x0008_0000, 0x000A_0000);
    let e = a.label("e");
    a.bind(e).unwrap();
    a.svc(1);
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    let mut locked = false;
    for _ in 0..100 {
        match sys.step() {
            StepOutcome::LockedUp => {
                locked = true;
                break;
            }
            StepOutcome::Halted => panic!("unexpected halt"),
            StepOutcome::Executed => {}
        }
    }
    assert!(locked, "vector-page fault must lock the machine up");
}

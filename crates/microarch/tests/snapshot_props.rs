//! Property tests for checkpoint/restore: under any operation mix, saving
//! a component, mutating the original further, and loading the saved bytes
//! must reproduce the component exactly as it was at save time — observably
//! (identical subsequent behavior) and byte-exactly (re-saving the restored
//! component yields the same stream).

use proptest::prelude::*;
use sea_isa::MemSize;
use sea_microarch::{Counters, MachineConfig, MemSystem, RegFile, Tlb, TlbEntry};
use sea_snapshot::{SnapReader, SnapWriter, Snapshot};

fn save_bytes<T: Snapshot>(v: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    v.save(&mut w);
    w.into_bytes()
}

fn load<T: Snapshot>(bytes: &[u8]) -> T {
    let mut r = SnapReader::new(bytes);
    let v = T::load(&mut r).expect("round-trip load");
    assert!(r.is_exhausted(), "loader left trailing bytes");
    v
}

#[derive(Clone, Debug)]
enum Op {
    Write { addr: u32, value: u32 },
    Read { addr: u32 },
    Fetch { addr: u32 },
    Flush,
}

fn any_op(mem_bytes: u32) -> impl Strategy<Value = Op> {
    let addr = 0u32..(mem_bytes - 4);
    prop_oneof![
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write {
            addr: a & !3,
            value: v
        }),
        addr.clone().prop_map(|a| Op::Read { addr: a & !3 }),
        addr.prop_map(|a| Op::Fetch { addr: a & !3 }),
        Just(Op::Flush),
    ]
}

fn tiny_machine() -> MachineConfig {
    let mut cfg = MachineConfig::cortex_a9_scaled();
    cfg.l1i.size_bytes = 512;
    cfg.l1i.ways = 2;
    cfg.l1d.size_bytes = 512;
    cfg.l1d.ways = 2;
    cfg.l2.size_bytes = 2048;
    cfg.l2.ways = 2;
    cfg.mem_bytes = 64 * 1024;
    cfg
}

fn apply(sys: &mut MemSystem, ctr: &mut Counters, ops: &[Op]) -> Vec<u32> {
    let mut observed = Vec::new();
    for op in ops {
        match *op {
            Op::Write { addr, value } => {
                sys.write_data(addr, MemSize::Word, value, ctr);
            }
            Op::Read { addr } => observed.push(sys.read_data(addr, MemSize::Word, ctr).0),
            Op::Fetch { addr } => observed.push(sys.fetch(addr, ctr).0),
            Op::Flush => sys.clean_invalidate_all(),
        }
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → mutate → load: the restored memory system is byte-identical
    /// to the one saved, behaves identically afterwards, and its COW pages
    /// never alias the diverged original.
    #[test]
    fn memsys_restore_is_bit_identical(
        prefix in prop::collection::vec(any_op(64 * 1024), 1..100),
        mutation in prop::collection::vec(any_op(64 * 1024), 1..100),
        suffix in prop::collection::vec(any_op(64 * 1024), 1..100),
    ) {
        let cfg = tiny_machine();
        let mut sys = MemSystem::new(&cfg);
        let mut ctr = Counters::default();
        apply(&mut sys, &mut ctr, &prefix);

        let saved = save_bytes(&sys);
        // Mutate the original well past the save point.
        apply(&mut sys, &mut ctr, &mutation);

        let mut restored: MemSystem = load(&saved);
        prop_assert_eq!(save_bytes(&restored), saved.clone(),
            "re-saving a restored machine must reproduce the stream");

        // The restored machine and a twin restored from the same bytes
        // behave identically on the suffix.
        let mut twin: MemSystem = load(&saved);
        let mut ctr_a = Counters::default();
        let mut ctr_b = Counters::default();
        let obs_a = apply(&mut restored, &mut ctr_a, &suffix);
        let obs_b = apply(&mut twin, &mut ctr_b, &suffix);
        prop_assert_eq!(obs_a, obs_b);
        prop_assert_eq!(ctr_a, ctr_b);
    }

    /// Restored machines sharing a golden image never see each other's
    /// writes (COW isolation at the DRAM layer).
    #[test]
    fn cow_restores_are_isolated(
        addr in (0u32..64 * 1024 - 4).prop_map(|a| a & !3),
        va in any::<u32>(),
    ) {
        let vb = !va; // always differs from va
        let cfg = tiny_machine();
        let golden = MemSystem::new(&cfg);
        let mut a = golden.clone();
        let mut b = golden.clone();
        let mut ctr = Counters::default();
        a.write_data(addr, MemSize::Word, va, &mut ctr);
        b.write_data(addr, MemSize::Word, vb, &mut ctr);
        a.clean_invalidate_all();
        b.clean_invalidate_all();
        prop_assert_eq!(a.phys.read(addr, MemSize::Word), va);
        prop_assert_eq!(b.phys.read(addr, MemSize::Word), vb);
        prop_assert_eq!(golden.phys.read(addr, MemSize::Word), 0);
    }

    /// TLB round-trip under random insert/lookup traffic.
    #[test]
    fn tlb_restore_is_bit_identical(
        inserts in prop::collection::vec((0u32..64, 0u32..1024), 1..80),
        lookups in prop::collection::vec(0u32..64, 1..80),
    ) {
        let mut t = Tlb::new(16);
        for &(vpn, ppn) in &inserts {
            t.insert(TlbEntry::new(vpn, ppn, true, vpn % 2 == 0, vpn % 3 == 0));
        }
        for &vpn in &lookups {
            t.lookup(vpn);
        }
        let saved = save_bytes(&t);
        let restored: Tlb = load(&saved);
        prop_assert_eq!(save_bytes(&restored), saved);
        prop_assert_eq!(restored.lookups, t.lookups);
        prop_assert_eq!(restored.misses, t.misses);
    }

    /// Register-file round-trip under random bit flips.
    #[test]
    fn regfile_restore_is_bit_identical(
        bits in prop::collection::vec(0u64..sea_microarch::REGFILE_BITS, 1..64),
    ) {
        let mut rf = RegFile::new();
        for &b in &bits {
            rf.flip_bit(b);
        }
        let saved = save_bytes(&rf);
        let restored: RegFile = load(&saved);
        prop_assert_eq!(save_bytes(&restored), saved);
        prop_assert_eq!(restored.words(), rf.words());
    }
}

//! Physical memory and the device (MMIO) interface.

use sea_isa::MemSize;
use sea_snapshot::{PageStore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Base physical address of the memory-mapped device window.
///
/// Accesses at or above this address bypass the cache hierarchy and are
/// routed to the [`Device`] attached to the system, mirroring the Zynq's
/// uncacheable peripheral region.
pub const DEVICE_BASE: u32 = 0xF000_0000;

/// A memory-mapped peripheral block.
///
/// `sea-platform` implements this for the Zynq-like board (UART, timer,
/// mailbox, watchdog). Offsets are relative to [`DEVICE_BASE`].
pub trait Device {
    /// MMIO read. Device registers are word-oriented; sub-word reads return
    /// the addressed bytes of the containing word.
    fn read(&mut self, offset: u32, size: MemSize) -> u32;

    /// MMIO write.
    fn write(&mut self, offset: u32, size: MemSize, value: u32);

    /// Level-triggered IRQ line, sampled between instructions. `now` is the
    /// current cycle count, which the device uses to advance its own state
    /// (e.g. the timer comparator).
    fn poll_irq(&mut self, now: u64) -> bool;
}

/// A device block with no registers and no interrupts. Useful in unit tests.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullDevice;

impl Device for NullDevice {
    fn read(&mut self, _offset: u32, _size: MemSize) -> u32 {
        0
    }

    fn write(&mut self, _offset: u32, _size: MemSize, _value: u32) {}

    fn poll_irq(&mut self, _now: u64) -> bool {
        false
    }
}

impl Snapshot for NullDevice {
    fn save(&self, _w: &mut SnapWriter) {}

    fn load(_r: &mut SnapReader<'_>) -> Result<NullDevice, SnapError> {
        Ok(NullDevice)
    }
}

/// Physical memory (the board's DDR), stored as copy-on-write 4 KiB pages.
///
/// In the beam model DDR is *outside* the irradiated chip (the LANSCE spot
/// covers only the SoC), so this array is never a fault-injection target —
/// matching §IV-B of the paper.
///
/// The paged backing ([`sea_snapshot::PageStore`]) exists for checkpointing:
/// cloning a restored machine bumps per-page refcounts instead of copying
/// the whole DDR image, and a run pays for a page only when it first writes
/// it. The access API is unchanged from the flat array it replaced, and all
/// simulator accesses remain aligned (≤ 4 bytes) or line-granular, so the
/// page seams are invisible to the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysMemory {
    pages: PageStore,
}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed memory (lazily — untouched pages
    /// all share one zero page).
    pub fn new(size: u32) -> PhysMemory {
        PhysMemory {
            pages: PageStore::new(size),
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        self.pages.size()
    }

    /// Reads an aligned value of `size` at `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is out of range (physical ranges are validated by
    /// the MMU before reaching memory).
    pub fn read(&self, paddr: u32, size: MemSize) -> u32 {
        match size {
            MemSize::Byte => {
                let mut b = [0u8; 1];
                self.pages.read_bytes(paddr, &mut b);
                b[0] as u32
            }
            MemSize::Half => {
                let mut b = [0u8; 2];
                self.pages.read_bytes(paddr, &mut b);
                u16::from_le_bytes(b) as u32
            }
            MemSize::Word => {
                let mut b = [0u8; 4];
                self.pages.read_bytes(paddr, &mut b);
                u32::from_le_bytes(b)
            }
        }
    }

    /// Writes an aligned value of `size` at `paddr`.
    pub fn write(&mut self, paddr: u32, size: MemSize, value: u32) {
        match size {
            MemSize::Byte => self.pages.write_bytes(paddr, &[value as u8]),
            MemSize::Half => self.pages.write_bytes(paddr, &(value as u16).to_le_bytes()),
            MemSize::Word => self.pages.write_bytes(paddr, &value.to_le_bytes()),
        }
    }

    /// Copies a byte slice into memory (used by the loader).
    pub fn write_bytes(&mut self, paddr: u32, data: &[u8]) {
        self.pages.write_bytes(paddr, data);
    }

    /// Reads a whole cache line.
    pub fn read_line(&self, paddr: u32, buf: &mut [u8]) {
        self.pages.read_bytes(paddr, buf);
    }

    /// Writes a whole cache line.
    pub fn write_line(&mut self, paddr: u32, buf: &[u8]) {
        self.pages.write_bytes(paddr, buf);
    }

    /// Number of pages physically shared (same allocation) with `other` —
    /// the COW diagnostic surfaced by checkpoint metrics and tests.
    pub fn shared_pages_with(&self, other: &PhysMemory) -> usize {
        self.pages.shared_pages_with(&other.pages)
    }

    /// Number of pages privately materialized beyond the shared zero page.
    pub fn populated_pages(&self) -> usize {
        self.pages.populated_pages()
    }
}

impl Snapshot for PhysMemory {
    fn save(&self, w: &mut SnapWriter) {
        self.pages.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<PhysMemory, SnapError> {
        Ok(PhysMemory {
            pages: PageStore::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_all_sizes() {
        let mut m = PhysMemory::new(64);
        m.write(0, MemSize::Word, 0xA1B2_C3D4);
        assert_eq!(m.read(0, MemSize::Word), 0xA1B2_C3D4);
        assert_eq!(m.read(0, MemSize::Byte), 0xD4); // little endian
        assert_eq!(m.read(2, MemSize::Half), 0xA1B2);
        m.write(1, MemSize::Byte, 0xFF);
        assert_eq!(m.read(0, MemSize::Word), 0xA1B2_FFD4);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = PhysMemory::new(128);
        let line: Vec<u8> = (0..32).collect();
        m.write_line(32, &line);
        let mut back = [0u8; 32];
        m.read_line(32, &mut back);
        assert_eq!(&back[..], &line[..]);
    }

    #[test]
    fn clone_is_cow_and_isolated() {
        let mut a = PhysMemory::new(64 * 1024);
        a.write(0, MemSize::Word, 0x1111_2222);
        let mut b = a.clone();
        assert_eq!(b.shared_pages_with(&a), 16);
        b.write(0, MemSize::Word, 0x9999_8888);
        assert_eq!(a.read(0, MemSize::Word), 0x1111_2222);
        assert_eq!(b.read(0, MemSize::Word), 0x9999_8888);
        assert_eq!(b.shared_pages_with(&a), 15);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut m = PhysMemory::new(64 * 1024);
        m.write(4096, MemSize::Word, 0xCAFE_F00D);
        let mut w = SnapWriter::new();
        m.save(&mut w);
        let buf = w.into_bytes();
        let t = PhysMemory::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(t, m);
        assert_eq!(t.read(4096, MemSize::Word), 0xCAFE_F00D);
        assert_eq!(t.populated_pages(), 1);
    }
}

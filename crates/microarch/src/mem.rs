//! Physical memory and the device (MMIO) interface.

use sea_isa::MemSize;

/// Base physical address of the memory-mapped device window.
///
/// Accesses at or above this address bypass the cache hierarchy and are
/// routed to the [`Device`] attached to the system, mirroring the Zynq's
/// uncacheable peripheral region.
pub const DEVICE_BASE: u32 = 0xF000_0000;

/// A memory-mapped peripheral block.
///
/// `sea-platform` implements this for the Zynq-like board (UART, timer,
/// mailbox, watchdog). Offsets are relative to [`DEVICE_BASE`].
pub trait Device {
    /// MMIO read. Device registers are word-oriented; sub-word reads return
    /// the addressed bytes of the containing word.
    fn read(&mut self, offset: u32, size: MemSize) -> u32;

    /// MMIO write.
    fn write(&mut self, offset: u32, size: MemSize, value: u32);

    /// Level-triggered IRQ line, sampled between instructions. `now` is the
    /// current cycle count, which the device uses to advance its own state
    /// (e.g. the timer comparator).
    fn poll_irq(&mut self, now: u64) -> bool;
}

/// A device block with no registers and no interrupts. Useful in unit tests.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullDevice;

impl Device for NullDevice {
    fn read(&mut self, _offset: u32, _size: MemSize) -> u32 {
        0
    }

    fn write(&mut self, _offset: u32, _size: MemSize, _value: u32) {}

    fn poll_irq(&mut self, _now: u64) -> bool {
        false
    }
}

/// Flat physical memory (the board's DDR).
///
/// In the beam model DDR is *outside* the irradiated chip (the LANSCE spot
/// covers only the SoC), so this array is never a fault-injection target —
/// matching §IV-B of the paper.
#[derive(Clone, Debug)]
pub struct PhysMemory {
    bytes: Vec<u8>,
}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: u32) -> PhysMemory {
        PhysMemory {
            bytes: vec![0; size as usize],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Reads an aligned value of `size` at `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is out of range (physical ranges are validated by
    /// the MMU before reaching memory).
    pub fn read(&self, paddr: u32, size: MemSize) -> u32 {
        let i = paddr as usize;
        match size {
            MemSize::Byte => self.bytes[i] as u32,
            MemSize::Half => u16::from_le_bytes(self.bytes[i..i + 2].try_into().unwrap()) as u32,
            MemSize::Word => u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()),
        }
    }

    /// Writes an aligned value of `size` at `paddr`.
    pub fn write(&mut self, paddr: u32, size: MemSize, value: u32) {
        let i = paddr as usize;
        match size {
            MemSize::Byte => self.bytes[i] = value as u8,
            MemSize::Half => self.bytes[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemSize::Word => self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
    }

    /// Copies a byte slice into memory (used by the loader).
    pub fn write_bytes(&mut self, paddr: u32, data: &[u8]) {
        let i = paddr as usize;
        self.bytes[i..i + data.len()].copy_from_slice(data);
    }

    /// Reads a whole cache line.
    pub fn read_line(&self, paddr: u32, buf: &mut [u8]) {
        let i = paddr as usize;
        buf.copy_from_slice(&self.bytes[i..i + buf.len()]);
    }

    /// Writes a whole cache line.
    pub fn write_line(&mut self, paddr: u32, buf: &[u8]) {
        let i = paddr as usize;
        self.bytes[i..i + buf.len()].copy_from_slice(buf);
    }

    /// Borrow of the raw bytes (diagnostics only).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_all_sizes() {
        let mut m = PhysMemory::new(64);
        m.write(0, MemSize::Word, 0xA1B2_C3D4);
        assert_eq!(m.read(0, MemSize::Word), 0xA1B2_C3D4);
        assert_eq!(m.read(0, MemSize::Byte), 0xD4); // little endian
        assert_eq!(m.read(2, MemSize::Half), 0xA1B2);
        m.write(1, MemSize::Byte, 0xFF);
        assert_eq!(m.read(0, MemSize::Word), 0xA1B2_FFD4);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = PhysMemory::new(128);
        let line: Vec<u8> = (0..32).collect();
        m.write_line(32, &line);
        let mut back = [0u8; 32];
        m.read_line(32, &mut back);
        assert_eq!(&back[..], &line[..]);
    }
}

//! Fault provenance: what happened to an injected bit after the flip.
//!
//! The paper classifies injection outcomes only by their terminal effect
//! (Masked / SDC / Crash …). This module adds the *story in between*: when
//! was the corrupted cell first read (activation), where did the corruption
//! travel (write-backs down the hierarchy, refills back up, loads into
//! registers), and did it cross from user code into the kernel. Campaigns
//! use it through [`System::flip_bit_probed`] / [`System::take_probe`]; the
//! drained [`FaultProbe`] becomes one `injection.provenance` trace record.
//!
//! The mechanism is a single *watch* per storage structure — the cache line
//! / TLB entry / register word holding the flipped bit — plus one drain at
//! the end of each [`System::step`]. With no probe armed the per-step cost
//! is one `Option` test.

use sea_trace::{event, Level, Subsystem};

use crate::fault::{Component, InjectionSite};
use crate::mem::Device;
use crate::regfile::{Mode, RegFile};
use crate::system::System;

/// Where the corrupted state currently resides while being tracked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Residence {
    /// In a register-file word.
    Reg,
    /// In an L1 instruction-cache line.
    L1I,
    /// In an L1 data-cache line.
    L1D,
    /// In a unified-L2 line.
    L2,
    /// Written back to DRAM at this line base address.
    Dram(u32),
    /// In an instruction-TLB entry.
    ITlb,
    /// In a data-TLB entry.
    DTlb,
    /// Overwritten or invalidated — the corrupted copy no longer exists.
    Gone,
}

impl Residence {
    /// Stable lowercase name (used in trace records).
    pub fn name(self) -> &'static str {
        match self {
            Residence::Reg => "regfile",
            Residence::L1I => "l1i",
            Residence::L1D => "l1d",
            Residence::L2 => "l2",
            Residence::Dram(_) => "dram",
            Residence::ITlb => "itlb",
            Residence::DTlb => "dtlb",
            Residence::Gone => "gone",
        }
    }
}

/// One propagation step of the injected corruption.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopKind {
    /// The corrupted cell was read for the first time (activation).
    CorruptRead,
    /// First corrupted read that happened in supervisor mode: the fault
    /// crossed from the application into the kernel.
    KernelTouch,
    /// The corrupted line was written back from L1D into L2.
    WritebackL2,
    /// The corrupted line was written back into DRAM.
    WritebackDram,
    /// The corrupted DRAM line was refilled back into L2.
    RefillFromDram,
    /// A load instruction consumed the corrupted line into a register.
    RegisterFill,
    /// The corrupted copy was overwritten/invalidated without propagating.
    Dropped,
}

impl HopKind {
    /// Stable lowercase name (used in trace records).
    pub fn name(self) -> &'static str {
        match self {
            HopKind::CorruptRead => "corrupt_read",
            HopKind::KernelTouch => "kernel_touch",
            HopKind::WritebackL2 => "writeback_l2",
            HopKind::WritebackDram => "writeback_dram",
            HopKind::RefillFromDram => "refill_from_dram",
            HopKind::RegisterFill => "register_fill",
            HopKind::Dropped => "dropped",
        }
    }
}

/// One recorded hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hop {
    /// What happened.
    pub kind: HopKind,
    /// Simulated cycle it was observed at.
    pub cycle: u64,
}

/// The provenance record of one injected bit flip, updated as the machine
/// runs and drained by the campaign at classification time.
#[derive(Clone, Debug)]
pub struct FaultProbe {
    /// Where the bit was flipped.
    pub site: InjectionSite,
    /// Cycle count at flip time.
    pub flip_cycle: u64,
    /// Privilege mode at flip time.
    pub flip_mode: Mode,
    /// Where the corruption currently lives.
    pub residence: Residence,
    /// Cycle of the first corrupted read, if any.
    pub activated_at: Option<u64>,
    /// Number of steps in which the corrupted cell was accessed.
    pub touches: u64,
    /// Did a corrupted read happen in supervisor mode?
    pub kernel_touch: bool,
    /// Propagation hops, in order. Bounded: state-transition hops only,
    /// repeated same-residence touches increment [`touches`](Self::touches).
    pub hops: Vec<Hop>,
}

impl FaultProbe {
    fn new(site: InjectionSite, flip_cycle: u64, flip_mode: Mode, residence: Residence) -> Self {
        FaultProbe {
            site,
            flip_cycle,
            flip_mode,
            residence,
            activated_at: None,
            touches: 0,
            kernel_touch: false,
            hops: Vec::new(),
        }
    }

    /// Was the corrupted cell ever read?
    pub fn activated(&self) -> bool {
        self.activated_at.is_some()
    }

    /// Cycles from the flip to the first corrupted read.
    pub fn activation_latency(&self) -> Option<u64> {
        self.activated_at.map(|c| c.saturating_sub(self.flip_cycle))
    }

    fn hop(&mut self, kind: HopKind, cycle: u64) {
        self.hops.push(Hop { kind, cycle });
        event!(Subsystem::Microarch, Level::Debug, "provenance.hop";
               cycle = cycle;
               "kind" => kind.name(),
               "component" => self.site.component.short_name(),
               "residence" => self.residence.name());
    }

    fn touched(&mut self, cycle: u64, mode: Mode) {
        self.touches += 1;
        if self.activated_at.is_none() {
            self.activated_at = Some(cycle);
            self.hop(HopKind::CorruptRead, cycle);
        }
        if mode == Mode::Svc && !self.kernel_touch {
            self.kernel_touch = true;
            self.hop(HopKind::KernelTouch, cycle);
        }
    }

    fn dropped(&mut self, cycle: u64) {
        if self.residence != Residence::Gone {
            self.residence = Residence::Gone;
            self.hop(HopKind::Dropped, cycle);
        }
    }

    /// Emit the terminal `injection.provenance` record: the probe's whole
    /// story plus the campaign's final classification. `end_cycle` is the
    /// machine's cycle count when the run terminated.
    pub fn emit_record(&self, class: &str, end_cycle: u64) {
        event!(Subsystem::Injection, Level::Info, "injection.provenance";
               cycle = self.flip_cycle;
               "component" => self.site.component.short_name(),
               "bit" => self.site.bit,
               "array" => self.site.array.name(),
               "was_valid" => self.site.was_valid,
               "activated" => self.activated(),
               "act_cycles" => self.activation_latency().unwrap_or(0),
               "touches" => self.touches,
               "kernel_touch" => self.kernel_touch,
               "hops" => self.hops.len(),
               "residence" => self.residence.name(),
               "class" => class.to_string(),
               "total_cycles" => end_cycle.saturating_sub(self.flip_cycle));
    }
}

impl<D: Device> System<D> {
    /// Like [`System::flip_bit`], but also arms a provenance probe on the
    /// storage holding the flipped bit. The probe is updated as the machine
    /// steps; drain it with [`System::take_probe`] at classification time.
    pub fn flip_bit_probed(&mut self, c: Component, bit: u64) -> InjectionSite {
        let site = self.flip_bit(c, bit);
        let residence = match c {
            Component::RegFile => {
                self.cpu.regs.set_watch(RegFile::word_of_bit(bit));
                Residence::Reg
            }
            Component::L1I => {
                let line = self.mem.l1i.line_of_bit(bit);
                self.mem.l1i.set_watch(line);
                Residence::L1I
            }
            Component::L1D => {
                let line = self.mem.l1d.line_of_bit(bit);
                self.mem.l1d.set_watch(line);
                Residence::L1D
            }
            Component::L2 => {
                let line = self.mem.l2.line_of_bit(bit);
                self.mem.l2.set_watch(line);
                Residence::L2
            }
            Component::ITlb => {
                let e = self.itlb.entry_of_bit(bit);
                self.itlb.set_watch(e);
                Residence::ITlb
            }
            Component::DTlb => {
                let e = self.dtlb.entry_of_bit(bit);
                self.dtlb.set_watch(e);
                Residence::DTlb
            }
        };
        let cycle = self.cpu.counters.cycles;
        let mode = self.cpu.cpsr.mode;
        event!(Subsystem::Microarch, Level::Debug, "provenance.armed";
               cycle = cycle;
               "component" => site.component.short_name(),
               "bit" => bit,
               "array" => site.array.name(),
               "was_valid" => site.was_valid);
        self.probe = Some(Box::new(FaultProbe::new(site, cycle, mode, residence)));
        site
    }

    /// Detach and return the provenance probe, disarming all watches.
    pub fn take_probe(&mut self) -> Option<Box<FaultProbe>> {
        self.cpu.regs.clear_watch();
        self.mem.l1i.clear_watch();
        self.mem.l1d.clear_watch();
        self.mem.l2.clear_watch();
        self.itlb.clear_watch();
        self.dtlb.clear_watch();
        self.probe.take()
    }

    /// Is the watched data-side cache line currently flagged as touched?
    /// Used inside the load path to spot register fills.
    pub(crate) fn probe_data_touched(&self) -> bool {
        match self.probe.as_deref() {
            Some(p) => match p.residence {
                Residence::L1D => self.mem.l1d.watch_touched(),
                Residence::L2 => self.mem.l2.watch_touched(),
                _ => false,
            },
            None => false,
        }
    }

    /// Record a register-fill hop (a load consumed the corrupted line).
    pub(crate) fn note_register_fill(&mut self) {
        let cycle = self.cpu.counters.cycles;
        if let Some(p) = self.probe.as_deref_mut() {
            p.hop(HopKind::RegisterFill, cycle);
        }
    }

    /// End-of-step drain: fold the watch reports of the structure currently
    /// holding the corruption into the probe, following write-backs down
    /// the hierarchy and refills back up.
    pub(crate) fn drain_probe(&mut self) {
        let Some(mut probe) = self.probe.take() else {
            return;
        };
        let cycle = self.cpu.counters.cycles;
        let mode = self.cpu.cpsr.mode;
        match probe.residence {
            Residence::Reg => {
                let rep = self.cpu.regs.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                if rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::L1I => {
                let rep = self.mem.l1i.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                // The L1I never writes back; any eviction drops the copy.
                if rep.evicted_writeback || rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::L1D => {
                let rep = self.mem.l1d.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                if rep.evicted_writeback {
                    let addr = rep.writeback_addr.unwrap_or(0);
                    if let Some(idx) = self.mem.l2.find_line(addr) {
                        self.mem.l2.set_watch(idx);
                        probe.residence = Residence::L2;
                        probe.hop(HopKind::WritebackL2, cycle);
                    } else {
                        // Passed straight through a flushed L2 to DRAM.
                        probe.residence = Residence::Dram(addr);
                        probe.hop(HopKind::WritebackDram, cycle);
                    }
                } else if rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::L2 => {
                let rep = self.mem.l2.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                if rep.evicted_writeback {
                    let addr = rep.writeback_addr.unwrap_or(0);
                    probe.residence = Residence::Dram(addr);
                    probe.hop(HopKind::WritebackDram, cycle);
                } else if rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::Dram(addr) => {
                // A refill of the corrupted line back into L2 re-activates
                // tracking there.
                if let Some(idx) = self.mem.l2.find_line(addr) {
                    self.mem.l2.set_watch(idx);
                    probe.residence = Residence::L2;
                    probe.hop(HopKind::RefillFromDram, cycle);
                }
            }
            Residence::ITlb => {
                let rep = self.itlb.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                if rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::DTlb => {
                let rep = self.dtlb.take_watch_report();
                if rep.touched {
                    probe.touched(cycle, mode);
                }
                if rep.evicted_dropped {
                    probe.dropped(cycle);
                }
            }
            Residence::Gone => {}
        }
        self.probe = Some(probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::mem::NullDevice;

    fn boot_minimal() -> System<NullDevice> {
        // An identity-mapped machine (first 1 MiB) so memory and TLB state
        // exists to corrupt. Reuses the MMU helpers directly.
        use crate::mmu;
        let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        let l1_base = 0x10_0000;
        let l2_base = 0x11_0000;
        let l1e = mmu::l1_entry(l2_base);
        for vpn in 0..256u32 {
            let vaddr = vpn << mmu::PAGE_SHIFT;
            sys.mem.phys.write(
                mmu::l1_entry_addr(l1_base, vaddr),
                sea_isa::MemSize::Word,
                l1e,
            );
            sys.mem.phys.write(
                mmu::l2_entry_addr(l1e, vaddr),
                sea_isa::MemSize::Word,
                mmu::pte(vpn, mmu::PTE_WRITE | mmu::PTE_USER | mmu::PTE_EXEC),
            );
        }
        sys.cpu.ttbr = l1_base;
        sys
    }

    #[test]
    fn l1d_flip_activates_on_read() {
        let mut sys = boot_minimal();
        // Write a word so a valid dirty line exists in L1D at paddr 0x2000.
        let mut ctr = Counters::default();
        sys.mem
            .write_data(0x2000, sea_isa::MemSize::Word, 0xABCD_1234, &mut ctr);
        let idx = sys.mem.l1d.find_line(0x2000).expect("line resident");
        // Flip a data bit inside that exact line.
        let bit = idx as u64 * sys.mem.l1d.bits_per_line();
        sys.flip_bit_probed(crate::fault::Component::L1D, bit);
        assert!(!sys.probe.as_ref().unwrap().activated());
        // Read it back through the data path: activation.
        sys.mem.read_data(0x2000, sea_isa::MemSize::Word, &mut ctr);
        sys.drain_probe();
        let probe = sys.take_probe().expect("probe armed");
        assert!(probe.activated(), "read of corrupted line must activate");
        assert_eq!(
            probe.hops.first().map(|h| h.kind),
            Some(HopKind::CorruptRead)
        );
    }

    use crate::counters::Counters;

    #[test]
    fn l1d_writeback_moves_watch_to_l2() {
        let mut sys = boot_minimal();
        let mut ctr = Counters::default();
        sys.mem
            .write_data(0x2000, sea_isa::MemSize::Word, 0xDEAD_BEEF, &mut ctr);
        let idx = sys.mem.l1d.find_line(0x2000).expect("line resident");
        let bit = idx as u64 * sys.mem.l1d.bits_per_line();
        sys.flip_bit_probed(crate::fault::Component::L1D, bit);
        // Force the line out by cleaning the whole hierarchy level by hand:
        // evict_for on its own set via conflicting fills.
        sys.mem.clean_invalidate_all();
        sys.drain_probe();
        let probe = sys.take_probe().expect("probe armed");
        // clean_invalidate_all pushes L1D through L2 to DRAM; the watch
        // follows the write-back chain.
        assert!(
            probe
                .hops
                .iter()
                .any(|h| matches!(h.kind, HopKind::WritebackL2 | HopKind::WritebackDram)),
            "eviction of a dirty corrupted line must record a write-back hop, got {:?}",
            probe.hops
        );
    }

    #[test]
    fn regfile_flip_activates_on_get() {
        let mut sys = boot_minimal();
        sys.cpu.regs.set(sea_isa::Reg::R3, Mode::Svc, 7);
        sys.flip_bit_probed(crate::fault::Component::RegFile, 3 * 32 + 1);
        let _ = sys.cpu.regs.get(sea_isa::Reg::R3, Mode::Svc);
        sys.drain_probe();
        let probe = sys.take_probe().unwrap();
        assert!(probe.activated());
        assert!(probe.kernel_touch, "Svc-mode read must flag kernel touch");
        // Overwrite after take_probe: nothing tracked anymore.
        sys.cpu.regs.set(sea_isa::Reg::R3, Mode::Svc, 0);
        assert!(sys.take_probe().is_none());
    }

    #[test]
    fn regfile_overwrite_drops_corruption() {
        let mut sys = boot_minimal();
        sys.flip_bit_probed(crate::fault::Component::RegFile, 5 * 32);
        sys.cpu.regs.set(sea_isa::Reg::R5, Mode::Svc, 0);
        sys.drain_probe();
        let probe = sys.take_probe().unwrap();
        assert!(!probe.activated());
        assert_eq!(probe.residence, Residence::Gone);
        assert_eq!(probe.hops.last().map(|h| h.kind), Some(HopKind::Dropped));
    }

    #[test]
    fn tlb_flip_touch_and_flush() {
        let mut sys = boot_minimal();
        sys.dtlb
            .insert(crate::tlb::TlbEntry::new(0x5, 0x5, true, true, false));
        sys.flip_bit_probed(crate::fault::Component::DTlb, 0);
        sys.dtlb.lookup(0x5);
        sys.drain_probe();
        assert!(sys.probe.as_ref().unwrap().activated());
        sys.dtlb.flush();
        sys.drain_probe();
        let probe = sys.take_probe().unwrap();
        assert_eq!(probe.residence, Residence::Gone);
    }

    #[test]
    fn emit_record_shape() {
        // The record must parse as one JSON line with the acceptance fields.
        let _guard = sea_trace::test_lock();
        let sink = std::sync::Arc::new(sea_trace::MemorySink::new());
        sea_trace::set_level(Subsystem::Injection, Level::Info);
        sea_trace::install_sink(sink.clone());

        let mut sys = boot_minimal();
        sys.flip_bit_probed(crate::fault::Component::RegFile, 0);
        let _ = sys.cpu.regs.get(sea_isa::Reg::R0, Mode::Svc);
        sys.drain_probe();
        let probe = sys.take_probe().unwrap();
        probe.emit_record("Masked", sys.cpu.counters.cycles + 100);
        sea_trace::flush_thread();

        let evs = sink.take();
        let rec = evs
            .iter()
            .find(|e| e.name == "injection.provenance")
            .expect("provenance record emitted");
        let mut line = String::new();
        sea_trace::json::write_event(rec, &mut line);
        let parsed = sea_trace::json::parse(&line).expect("valid JSON");
        assert_eq!(
            parsed.get("ev").and_then(|v| v.as_str()),
            Some("injection.provenance")
        );
        assert_eq!(
            parsed.get("activated").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert!(parsed.get("act_cycles").and_then(|v| v.as_u64()).is_some());
        assert_eq!(parsed.get("class").and_then(|v| v.as_str()), Some("Masked"));

        sea_trace::uninstall_sink();
        sea_trace::disable_all();
    }
}

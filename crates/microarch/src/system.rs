//! The full-system model: core + MMU + cache hierarchy + device block.

use sea_isa::{
    decode, Cond, DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, Shift,
    SysReg,
};

use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::config::{ExecMode, MachineConfig};
use crate::counters::Counters;
use crate::exception::{AbortCause, Exception, VECTOR_BASE};
use crate::fastpath::{FastPath, FastPathConfig, FastPathStats};
use crate::mem::{Device, DEVICE_BASE};
use crate::memsys::MemSystem;
use crate::mmu;
use crate::profiler::{sample_counters, MemProfiler, SysProfiler};
use crate::provenance::FaultProbe;
use crate::regfile::{Cpsr, Mode, RegFile};
use crate::tlb::{Tlb, TlbEntry};
use crate::warp::{
    Uop, WarpBlock, WarpConfig, WarpEngine, WarpStats, MEM_IMM, MEM_PRE, MEM_SUB, MEM_WB, NO_REG,
};
use sea_profile::ProfileData;

/// Monomorphization selector for the pipeline stages shared by the
/// execution tiers. One generic body compiles into three builds:
///
/// * [`tier::REF`] — the reference build: profiler and trace-ring
///   branches live, no memoization;
/// * [`tier::FAST`] — the fast-path build: µop cache, translation
///   latches and MRU line hits, no profiler branches (PR 5);
/// * [`tier::WARP`] — the functional-tier build: warp translation
///   cache, no predictor training, no profiler or probe branches.
///
/// `u8` because stable const generics cannot take a custom enum; the
/// constants are the closed set of values ever instantiated.
pub(crate) mod tier {
    /// Reference build (profilers + trace ring, no memoization).
    pub const REF: u8 = 0;
    /// Fast-path build (µop cache + latches, PR 5).
    pub const FAST: u8 = 1;
    /// Warp functional-tier build (see [`crate::warp`]).
    pub const WARP: u8 = 2;
}

/// Result of one [`System::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// An instruction retired (or an exception was vectored).
    Executed,
    /// A `HALT` retired in supervisor mode: the machine is off.
    Halted,
    /// The core could not even enter its exception vector (the vector page
    /// faults): architecturally locked up. The board's watchdog will call
    /// this a system crash.
    LockedUp,
}

/// The processor core's architectural and microarchitectural state.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// Integer + FP register files.
    pub regs: RegFile,
    /// Status register.
    pub cpsr: Cpsr,
    /// Program counter.
    pub pc: u32,
    /// Saved status register (supervisor bank).
    pub spsr: u32,
    /// Exception link register.
    pub elr: u32,
    /// Exception syndrome register.
    pub esr: u32,
    /// Fault address register.
    pub far: u32,
    /// Page-table base register.
    pub ttbr: u32,
    /// Performance counters.
    pub counters: Counters,
    /// Bimodal 2-bit branch predictor state.
    predictor: Vec<u8>,
    pred_mask: u32,
    /// Waiting-for-interrupt latch.
    wfi: bool,
    /// Optional PC trace ring buffer (crash diagnostics).
    trace: Option<TraceRing>,
}

/// A fixed-capacity ring of recently retired PCs.
#[derive(Clone, Debug)]
struct TraceRing {
    buf: Vec<u32>,
    head: usize,
    filled: bool,
}

impl TraceRing {
    fn push(&mut self, pc: u32) {
        self.buf[self.head] = pc;
        self.head = (self.head + 1) % self.buf.len();
        if self.head == 0 {
            self.filled = true;
        }
    }

    /// Linearized view of the ring, oldest first. (Named to stay clear of
    /// the machine-state [`Snapshot`] trait — this is a trace readout, not
    /// a checkpoint.)
    fn trace_snapshot(&self) -> Vec<u32> {
        let mut out = Vec::new();
        if self.filled {
            out.extend_from_slice(&self.buf[self.head..]);
        }
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl Snapshot for TraceRing {
    fn save(&self, w: &mut SnapWriter) {
        self.buf.save(w);
        w.u32(self.head as u32);
        w.bool(self.filled);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<TraceRing, SnapError> {
        let buf: Vec<u32> = Vec::load(r)?;
        let head = r.u32()? as usize;
        if buf.is_empty() || head >= buf.len() {
            return Err(SnapError::Malformed("trace ring head out of range"));
        }
        Ok(TraceRing {
            buf,
            head,
            filled: r.bool()?,
        })
    }
}

impl Cpu {
    fn new(cfg: &MachineConfig) -> Cpu {
        Cpu {
            regs: RegFile::new(),
            cpsr: Cpsr::reset(),
            pc: 0,
            spsr: 0,
            elr: 0,
            esr: 0,
            far: 0,
            ttbr: 0,
            counters: Counters::default(),
            predictor: vec![1; cfg.predictor_entries as usize],
            pred_mask: cfg.predictor_entries - 1,
            wfi: false,
            trace: None,
        }
    }

    /// Enables PC tracing with a ring of `depth` entries. The trace is the
    /// standard crash-diagnosis view: where was the core in its final
    /// moments before a lock-up or panic.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace = Some(TraceRing {
            buf: vec![0; depth.max(1)],
            head: 0,
            filled: false,
        });
    }

    /// The recently retired PCs, oldest first. Empty when tracing is off.
    pub fn trace(&self) -> Vec<u32> {
        self.trace
            .as_ref()
            .map(TraceRing::trace_snapshot)
            .unwrap_or_default()
    }
}

impl Snapshot for Cpu {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"CPU ");
        self.regs.save(w);
        self.cpsr.save(w);
        w.u32(self.pc);
        w.u32(self.spsr);
        w.u32(self.elr);
        w.u32(self.esr);
        w.u32(self.far);
        w.u32(self.ttbr);
        self.counters.save(w);
        self.predictor.save(w);
        w.u32(self.pred_mask);
        w.bool(self.wfi);
        match &self.trace {
            Some(t) => {
                w.bool(true);
                t.save(w);
            }
            None => w.bool(false),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Cpu, SnapError> {
        r.tag(*b"CPU ")?;
        let regs = RegFile::load(r)?;
        let cpsr = Cpsr::load(r)?;
        let pc = r.u32()?;
        let spsr = r.u32()?;
        let elr = r.u32()?;
        let esr = r.u32()?;
        let far = r.u32()?;
        let ttbr = r.u32()?;
        let counters = Counters::load(r)?;
        let predictor: Vec<u8> = Vec::load(r)?;
        let pred_mask = r.u32()?;
        if predictor.len() as u64 != pred_mask as u64 + 1 || !predictor.len().is_power_of_two() {
            return Err(SnapError::Malformed("predictor table/mask mismatch"));
        }
        let wfi = r.bool()?;
        let trace = if r.bool()? {
            Some(TraceRing::load(r)?)
        } else {
            None
        };
        Ok(Cpu {
            regs,
            cpsr,
            pc,
            spsr,
            elr,
            esr,
            far,
            ttbr,
            counters,
            predictor,
            pred_mask,
            wfi,
            trace,
        })
    }
}

enum Flow {
    Next,
    Jump(u32),
    Halt,
    Wfi,
}

#[derive(Clone, Copy)]
enum Access {
    Fetch,
    Read,
    Write,
}

/// A complete simulated machine.
#[derive(Clone, Debug)]
pub struct System<D> {
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// The core.
    pub cpu: Cpu,
    /// Cache hierarchy + DRAM.
    pub mem: MemSystem,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// The memory-mapped device block.
    pub dev: D,
    /// Fault-provenance probe, armed by [`System::flip_bit_probed`].
    pub(crate) probe: Option<Box<FaultProbe>>,
    /// Residency + per-PC profilers, attached by
    /// [`System::profile_attach`]. `None` (the fast path) on every
    /// campaign machine; never snapshotted.
    pub(crate) prof: Option<Box<SysProfiler>>,
    /// Execution fast path (µop cache + translation latches), armed by
    /// [`System::fastpath_enable`]. Pure memoization — never snapshotted,
    /// and dropping it is always equivalence-preserving.
    pub(crate) fast: Option<Box<FastPath>>,
    /// Functional-tier trace cache (fused basic blocks), armed by
    /// [`System::warp_enable`] and consumed by [`System::run_warp`].
    /// Like the fast path: never snapshotted, absent by default.
    pub(crate) warp: Option<Box<WarpEngine>>,
}

impl<D: Device> System<D> {
    /// Builds a machine in reset state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MachineConfig, dev: D) -> System<D> {
        assert!(cfg.validate(), "invalid machine configuration");
        System {
            cpu: Cpu::new(&cfg),
            mem: MemSystem::new(&cfg),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            dev,
            cfg,
            probe: None,
            prof: None,
            fast: None,
            warp: None,
        }
    }

    // ----- the execution fast path ------------------------------------------

    /// Arms the execution fast path: a predecoded µop cache plus
    /// per-access-class translation latches (see [`crate::fastpath`]).
    /// Starts cold; replaces any previous fast-path state. The machine
    /// remains bit-for-bit equivalent to a slow-path machine — every
    /// counter, cache/TLB LRU decision, exception and fault outcome is
    /// identical — so campaigns may enable it freely.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn fastpath_enable(&mut self, cfg: FastPathConfig) {
        self.fast = Some(Box::new(FastPath::new(&cfg)));
    }

    /// Drops the fast path; subsequent steps take the reference path.
    pub fn fastpath_disable(&mut self) {
        self.fast = None;
    }

    /// Whether the fast path is armed.
    pub fn fastpath_enabled(&self) -> bool {
        self.fast.is_some()
    }

    /// Fast-path effectiveness counters; `None` when disarmed.
    pub fn fastpath_stats(&self) -> Option<FastPathStats> {
        self.fast.as_deref().map(FastPath::stats)
    }

    /// The fast-path state. Only reachable from `FAST` instantiations,
    /// whose dispatch guarantees the slot is occupied.
    fn fast_state(&mut self) -> &mut FastPath {
        self.fast
            .as_deref_mut()
            .expect("fast-path step without fast-path state")
    }

    /// Forgets the translation latches (if the fast path is armed). Called
    /// wherever the reference path invalidates or re-keys TLB state: TLB
    /// flushes, CPSR/mode changes, exception entry and return.
    fn fastpath_clear_latches(&mut self) {
        if let Some(f) = self.fast.as_deref_mut() {
            f.clear_latches();
        }
    }

    /// Full fast-path invalidation: µop cache and translation latches.
    /// Called by [`System::flip_bit`] so that no memoized state spans an
    /// injected fault — belt-and-braces on top of the self-invalidating
    /// `(paddr, raw_word)` µop key and the revalidated latches.
    pub(crate) fn fastpath_invalidate(&mut self) {
        if let Some(f) = self.fast.as_deref_mut() {
            f.invalidate_all();
        }
    }

    // ----- the warp tier ----------------------------------------------------

    /// Arms the functional execution tier: a fused-basic-block trace
    /// cache executed with architectural state only (see [`crate::warp`]).
    /// Starts cold; replaces any previous warp state. Arming changes
    /// nothing until [`System::run_warp`] is called — detailed stepping
    /// stays bit-exact with the engine parked.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn warp_enable(&mut self, cfg: WarpConfig) {
        self.warp = Some(Box::new(WarpEngine::new(&cfg)));
    }

    /// Drops the warp tier and its cached traces.
    pub fn warp_disable(&mut self) {
        self.warp = None;
    }

    /// Whether the warp tier is armed.
    pub fn warp_enabled(&self) -> bool {
        self.warp.is_some()
    }

    /// Warp-tier effectiveness counters; `None` when disarmed.
    pub fn warp_stats(&self) -> Option<WarpStats> {
        self.warp.as_deref().map(WarpEngine::stats)
    }

    /// Flushes every cached warp trace (if the tier is armed). Called
    /// wherever a cached decode could go stale for non-SMC reasons:
    /// translation changes (TTBR writes, TLB flushes), mode changes
    /// (CPSR writes, exception entry/return) and fault injection.
    fn warp_flush(&mut self) {
        if let Some(w) = self.warp.as_deref_mut() {
            w.flush();
        }
    }

    /// SMC hygiene for the warp tier: a store into a physical page with
    /// cached blocks drops them. A single `Option` test when disarmed.
    fn warp_note_write(&mut self, paddr: u32) {
        if let Some(w) = self.warp.as_deref_mut() {
            w.note_write(paddr);
        }
    }

    /// Full warp invalidation on an injected fault — a corrupted code
    /// byte (or page table) must never execute from a stale trace.
    pub(crate) fn warp_invalidate(&mut self) {
        self.warp_flush();
    }

    // ----- profiling --------------------------------------------------------

    /// Attach residency trackers and the per-PC sampler to this machine
    /// (golden runs only — profilers must be detached with
    /// [`System::profile_take`] before the machine is snapshotted).
    pub fn profile_attach(&mut self) {
        self.prof = Some(Box::new(SysProfiler::new(&self.cfg)));
        self.mem.prof = Some(Box::new(MemProfiler::new(
            &self.mem.l1i,
            &self.mem.l1d,
            &self.mem.l2,
        )));
    }

    /// Detach the profilers and fold them into a [`ProfileData`]: the
    /// per-PC profile plus one residency report per structure, in the
    /// paper's component order (RF, L1I$, L1D$, L2$, ITLB, DTLB). Returns
    /// `None` when nothing was attached.
    pub fn profile_take(&mut self) -> Option<ProfileData> {
        let sysp = *self.prof.take()?;
        let memp = *self.mem.prof.take()?;
        let end = self.cpu.counters.cycles;
        let [l1i, l1d, l2] = memp.finalize(end);
        let structures = vec![
            sysp.regs.into_inner().finalize(end),
            l1i,
            l1d,
            l2,
            sysp.itlb.finalize(end),
            sysp.dtlb.finalize(end),
        ];
        Some(ProfileData {
            total_cycles: end,
            instructions: self.cpu.counters.instructions,
            pc: sysp.pc.finish(),
            structures,
        })
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cpu.counters.cycles
    }

    /// FNV-1a fingerprint of the architectural core state: PC, status and
    /// fault registers, and the progress counters. Two machines stopped in
    /// the same state fingerprint identically, so a deterministic replay of
    /// a quarantined run can be checked against the original post-mortem
    /// without storing the whole machine.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        };
        let cpu = &self.cpu;
        mix(cpu.pc as u64);
        let flags = (cpu.cpsr.n as u64)
            | (cpu.cpsr.z as u64) << 1
            | (cpu.cpsr.c as u64) << 2
            | (cpu.cpsr.v as u64) << 3
            | (cpu.cpsr.irq_off as u64) << 4
            | (cpu.cpsr.mode as u64) << 5;
        mix(flags);
        mix(cpu.spsr as u64);
        mix(cpu.elr as u64);
        mix(cpu.esr as u64);
        mix(cpu.far as u64);
        mix(cpu.ttbr as u64);
        mix(cpu.counters.cycles);
        mix(cpu.counters.instructions);
        h
    }

    /// Extended fingerprint: everything [`System::state_fingerprint`]
    /// covers, plus every architectural register word and a valid-line
    /// summary of each cache and TLB. Where the base fingerprint certifies
    /// "the core stopped in the same place", this one certifies "the whole
    /// machine is in the same microarchitectural state" — the equivalence
    /// bar for checkpoint/restore (a restored run must be bit-identical to
    /// a from-reset run, including which lines are resident).
    pub fn state_fingerprint_deep(&self) -> u64 {
        let mut h = self.state_fingerprint();
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        };
        for w in self.cpu.regs.words() {
            mix(w as u64);
        }
        for cache in [&self.mem.l1i, &self.mem.l1d, &self.mem.l2] {
            mix(cache.valid_lines() as u64);
            for addr in cache.valid_line_addrs() {
                mix(addr as u64);
            }
        }
        for tlb in [&self.itlb, &self.dtlb] {
            mix(tlb.valid_entries() as u64);
            for word in tlb.valid_entry_words() {
                mix(word);
            }
        }
        h
    }

    // ----- translation ------------------------------------------------------

    fn translate<const MODE: u8>(
        &mut self,
        vaddr: u32,
        access: Access,
    ) -> Result<(u32, u32), Exception> {
        let vpn = vaddr >> mmu::PAGE_SHIFT;
        let is_fetch = matches!(access, Access::Fetch);
        if MODE == tier::WARP {
            // The warp translation cache: a direct-mapped vpn → entry
            // array with TLB semantics (stale until an explicit flush,
            // like hardware TLBs) but O(1) probes instead of the
            // reference TLB's associative scan. Permissions are still
            // checked per access against the live mode.
            if let Some(entry) = self
                .warp
                .as_deref()
                .expect("warp tier")
                .translate_lookup(vpn)
            {
                return Self::check_translation(vaddr, access, self.cpu.cpsr.mode, entry, 0);
            }
        }
        if MODE == tier::FAST {
            // Same-page streak: revalidate the last (vpn, slot) latched for
            // this access class against the live TLB. A hit replays exactly
            // the bookkeeping a scan hit would (see Tlb::hit_latched); a
            // stale latch falls through to the reference scan, untouched.
            if let Some((lvpn, slot)) = self.fast_state().latch_get(access as usize) {
                if lvpn == vpn {
                    let tlb = if is_fetch {
                        &mut self.itlb
                    } else {
                        &mut self.dtlb
                    };
                    if let Some(entry) = tlb.hit_latched(slot, vpn) {
                        self.fast_state().latch_hits += 1;
                        return Self::check_translation(
                            vaddr,
                            access,
                            self.cpu.cpsr.mode,
                            entry,
                            0,
                        );
                    }
                }
            }
        }
        let hit = if is_fetch {
            self.itlb.lookup_slot(vpn)
        } else {
            self.dtlb.lookup_slot(vpn)
        };
        let mut lat = 0;
        let (slot, entry) = match hit {
            Some((slot, e)) => {
                if MODE == tier::REF {
                    let cyc = self.cpu.counters.cycles;
                    if let Some(p) = self.prof.as_deref_mut() {
                        if is_fetch {
                            p.itlb.touch(slot, cyc);
                        } else {
                            p.dtlb.touch(slot, cyc);
                        }
                    }
                }
                (slot, e)
            }
            None => {
                if is_fetch {
                    self.cpu.counters.itlb_miss += 1;
                } else {
                    self.cpu.counters.dtlb_miss += 1;
                }
                let e = self.walk(vaddr, access)?;
                lat += 2 * self.cfg.lat.walk_step;
                let slot = if is_fetch {
                    self.itlb.insert_slot(e)
                } else {
                    self.dtlb.insert_slot(e)
                };
                if MODE == tier::REF {
                    let cyc = self.cpu.counters.cycles;
                    if let Some(p) = self.prof.as_deref_mut() {
                        if is_fetch {
                            p.itlb.fill(slot, cyc, false);
                        } else {
                            p.dtlb.fill(slot, cyc, false);
                        }
                    }
                }
                (slot, e)
            }
        };
        if MODE == tier::FAST {
            self.fast_state().latch_set(access as usize, vpn, slot);
        }
        if MODE == tier::WARP {
            self.warp
                .as_deref_mut()
                .expect("warp tier")
                .translate_insert(entry);
        }
        Self::check_translation(vaddr, access, self.cpu.cpsr.mode, entry, lat)
    }

    /// Permission checks + physical-address composition, shared by the
    /// latched and scanned translation paths (a TLB hit with corrupted
    /// permission bits takes this path too, exactly like hardware).
    fn check_translation(
        vaddr: u32,
        access: Access,
        mode: Mode,
        entry: TlbEntry,
        lat: u32,
    ) -> Result<(u32, u32), Exception> {
        let user = mode == Mode::User;
        let abort = |cause| match access {
            Access::Fetch => Exception::PrefetchAbort { vaddr, cause },
            _ => Exception::DataAbort { vaddr, cause },
        };
        if user && !entry.user() {
            return Err(abort(AbortCause::Permission));
        }
        match access {
            Access::Fetch if !entry.executable() => return Err(abort(AbortCause::Permission)),
            Access::Write if !entry.writable() => return Err(abort(AbortCause::Permission)),
            _ => {}
        }
        let paddr = (entry.ppn() << mmu::PAGE_SHIFT) | (vaddr & (mmu::PAGE_BYTES - 1));
        Ok((paddr, lat))
    }

    /// Hardware page-table walk.
    fn walk(&mut self, vaddr: u32, access: Access) -> Result<TlbEntry, Exception> {
        let abort = |cause| match access {
            Access::Fetch => Exception::PrefetchAbort { vaddr, cause },
            _ => Exception::DataAbort { vaddr, cause },
        };
        let mem_size = self.mem.phys.size();
        let l1a = mmu::l1_entry_addr(self.cpu.ttbr, vaddr);
        if l1a + 4 > mem_size {
            return Err(abort(AbortCause::Translation));
        }
        let (l1e, lat1) = self.mem.walk_read(l1a, &mut self.cpu.counters);
        self.cpu.counters.cycles += lat1 as u64;
        if l1e & mmu::PTE_VALID == 0 {
            return Err(abort(AbortCause::Translation));
        }
        let l2a = mmu::l2_entry_addr(l1e, vaddr);
        if l2a + 4 > mem_size {
            return Err(abort(AbortCause::Translation));
        }
        let (raw, lat2) = self.mem.walk_read(l2a, &mut self.cpu.counters);
        self.cpu.counters.cycles += lat2 as u64;
        let pte = mmu::decode_pte(raw).ok_or_else(|| abort(AbortCause::Translation))?;
        Ok(TlbEntry::new(
            vaddr >> mmu::PAGE_SHIFT,
            pte.ppn,
            pte.write,
            pte.user,
            pte.exec,
        ))
    }

    fn check_phys_range(
        &self,
        vaddr: u32,
        paddr: u32,
        bytes: u32,
        access: Access,
    ) -> Result<bool, Exception> {
        // Returns Ok(true) when the access targets the device window.
        if paddr >= DEVICE_BASE {
            if matches!(access, Access::Fetch) {
                return Err(Exception::PrefetchAbort {
                    vaddr,
                    cause: AbortCause::OutOfRange,
                });
            }
            return Ok(true);
        }
        if paddr
            .checked_add(bytes)
            .is_none_or(|end| end > self.mem.phys.size())
        {
            let cause = AbortCause::OutOfRange;
            return Err(match access {
                Access::Fetch => Exception::PrefetchAbort { vaddr, cause },
                _ => Exception::DataAbort { vaddr, cause },
            });
        }
        Ok(false)
    }

    fn read_mem<const MODE: u8>(&mut self, vaddr: u32, size: MemSize) -> Result<u32, Exception> {
        if !vaddr.is_multiple_of(size.bytes()) {
            return Err(Exception::DataAbort {
                vaddr,
                cause: AbortCause::Alignment,
            });
        }
        let (paddr, lat) = self.translate::<MODE>(vaddr, Access::Read)?;
        self.cpu.counters.cycles += lat as u64;
        if self.check_phys_range(vaddr, paddr, size.bytes(), Access::Read)? {
            return Ok(self.dev.read(paddr - DEVICE_BASE, size));
        }
        if MODE == tier::FAST {
            let base = paddr & !(self.mem.l1d.line_bytes() - 1);
            if let Some(idx) = self.fast_state().data_line_get(base) {
                if let Some((v, lat)) =
                    self.mem
                        .read_data_mru(idx, paddr, size, &mut self.cpu.counters)
                {
                    self.fast_state().line_hits += 1;
                    self.cpu.counters.cycles += lat as u64;
                    return Ok(v);
                }
            }
        }
        let (v, lat) = self.mem.read_data(paddr, size, &mut self.cpu.counters);
        self.cpu.counters.cycles += lat as u64;
        if MODE == tier::FAST {
            self.latch_data_line(paddr);
        }
        Ok(v)
    }

    fn write_mem<const MODE: u8>(
        &mut self,
        vaddr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<(), Exception> {
        if !vaddr.is_multiple_of(size.bytes()) {
            return Err(Exception::DataAbort {
                vaddr,
                cause: AbortCause::Alignment,
            });
        }
        let (paddr, lat) = self.translate::<MODE>(vaddr, Access::Write)?;
        self.cpu.counters.cycles += lat as u64;
        if self.check_phys_range(vaddr, paddr, size.bytes(), Access::Write)? {
            self.dev.write(paddr - DEVICE_BASE, size, value);
            return Ok(());
        }
        // Warp-tier SMC hygiene: one `Option` test when the tier is
        // disarmed (every campaign machine), a page-filter probe when not.
        self.warp_note_write(paddr);
        if MODE == tier::FAST {
            // Self-modifying code: a store into a predecoded word drops its
            // µop line. (The (paddr, word) key already guarantees the next
            // fetch re-decodes whatever it actually reads; this just frees
            // the slot.)
            self.fast_state().uop_flush_word(paddr);
            let base = paddr & !(self.mem.l1d.line_bytes() - 1);
            if let Some(idx) = self.fast_state().data_line_get(base) {
                if let Some(lat) =
                    self.mem
                        .write_data_mru(idx, paddr, size, value, &mut self.cpu.counters)
                {
                    self.fast_state().line_hits += 1;
                    self.cpu.counters.cycles += lat as u64;
                    return Ok(());
                }
            }
        }
        let lat = self
            .mem
            .write_data(paddr, size, value, &mut self.cpu.counters);
        self.cpu.counters.cycles += lat as u64;
        if MODE == tier::FAST {
            self.latch_data_line(paddr);
        }
        Ok(())
    }

    fn fetch_insn<const MODE: u8>(&mut self, vaddr: u32) -> Result<(u32, u32), Exception> {
        if !vaddr.is_multiple_of(4) {
            return Err(Exception::PrefetchAbort {
                vaddr,
                cause: AbortCause::Alignment,
            });
        }
        let (paddr, lat) = self.translate::<MODE>(vaddr, Access::Fetch)?;
        self.cpu.counters.cycles += lat as u64;
        self.check_phys_range(vaddr, paddr, 4, Access::Fetch)?;
        if MODE == tier::FAST {
            if let Some((base, idx)) = self.fast_state().fetch_line {
                if paddr & !(self.mem.l1i.line_bytes() - 1) == base {
                    if let Some((w, lat)) = self.mem.fetch_mru(idx, paddr, &mut self.cpu.counters) {
                        self.fast_state().line_hits += 1;
                        self.cpu.counters.cycles += lat as u64;
                        return Ok((paddr, w));
                    }
                }
            }
        }
        let (w, lat) = self.mem.fetch(paddr, &mut self.cpu.counters);
        self.cpu.counters.cycles += lat as u64;
        if MODE == tier::FAST && self.mem.is_detailed() {
            // After a detailed fetch the line is resident; remember it so
            // the next same-line fetch skips the set scan.
            if let Some(idx) = self.mem.l1i.find_line(paddr) {
                let base = paddr & !(self.mem.l1i.line_bytes() - 1);
                self.fast_state().fetch_line = Some((base, idx));
            }
        }
        Ok((paddr, w))
    }

    /// Remembers the L1D line holding `paddr` (if the hierarchy is
    /// modeled) so the next same-line access can skip the set scan.
    fn latch_data_line(&mut self, paddr: u32) {
        if self.mem.is_detailed() {
            if let Some(idx) = self.mem.l1d.find_line(paddr) {
                let base = paddr & !(self.mem.l1d.line_bytes() - 1);
                self.fast_state().data_line_set(base, idx);
            }
        }
    }

    // ----- exception entry/exit ------------------------------------------------

    fn take_exception(&mut self, e: Exception, at_pc: u32) {
        self.cpu.spsr = self.cpu.cpsr.to_bits();
        self.cpu.elr = match e {
            Exception::Svc { .. } => at_pc.wrapping_add(4),
            _ => at_pc,
        };
        self.cpu.esr = e.esr();
        self.cpu.far = match e {
            Exception::PrefetchAbort { vaddr, .. } | Exception::DataAbort { vaddr, .. } => vaddr,
            _ => self.cpu.far,
        };
        self.cpu.cpsr.mode = Mode::Svc;
        self.cpu.cpsr.irq_off = true;
        self.cpu.pc = VECTOR_BASE + e.vector_offset();
        self.cpu.counters.cycles += 3; // pipeline flush on exception entry
        self.fastpath_clear_latches(); // mode change
        self.warp_flush(); // mode change: cached traces carry mode-checked decodes
    }

    // ----- operand helpers ----------------------------------------------------

    /// Evaluates op2, returning (value, shifter carry-out).
    ///
    /// Carry-out follows the ARM boundary semantics that [`Shift::apply`]
    /// implements for the result: LSL/LSR by exactly 32 carry out bit 0 /
    /// bit 31 respectively and by more than 32 carry out 0; ASR by 32 or
    /// more carries out the sign bit; ROR carries out bit 31 of the
    /// rotated result (which covers every non-zero amount, including
    /// multiples of 32).
    fn eval_op2<const MODE: u8>(&self, op2: Operand2) -> Result<(u32, bool), Exception> {
        match op2 {
            Operand2::Imm { .. } => Ok((op2.imm_value().unwrap(), self.cpu.cpsr.c)),
            Operand2::Reg(sr) => {
                let v = self.reg_read::<MODE>(sr.rm)?;
                let amount = sr.amount as u32;
                if amount == 0 {
                    return Ok((v, self.cpu.cpsr.c));
                }
                let out = sr.shift.apply(v, sr.amount);
                let carry = match sr.shift {
                    Shift::Lsl => amount <= 32 && (v >> (32 - amount)) & 1 == 1,
                    Shift::Lsr => amount <= 32 && (v >> (amount - 1)) & 1 == 1,
                    Shift::Asr => (v >> (amount - 1).min(31)) & 1 == 1,
                    Shift::Ror => (out >> 31) & 1 == 1,
                };
                Ok((out, carry))
            }
        }
    }

    fn reg_read<const MODE: u8>(&self, r: sea_isa::Reg) -> Result<u32, Exception> {
        if r == sea_isa::Reg::Pc {
            // AR32 forbids pc as a data operand; a bit flip that turns a
            // register field into r15 therefore faults, like a corrupted
            // encoding on real hardware.
            return Err(Exception::Undefined { word: 0xFFFF });
        }
        if MODE == tier::REF {
            if let Some(p) = self.prof.as_deref() {
                p.regs.borrow_mut().touch(
                    RegFile::word_index(r, self.cpu.cpsr.mode),
                    self.cpu.counters.cycles,
                );
            }
        }
        Ok(self.cpu.regs.get(r, self.cpu.cpsr.mode))
    }

    fn reg_write<const MODE: u8>(&mut self, r: sea_isa::Reg, v: u32) -> Result<(), Exception> {
        if r == sea_isa::Reg::Pc {
            return Err(Exception::Undefined { word: 0xFFFF });
        }
        if MODE == tier::REF {
            if let Some(p) = self.prof.as_deref() {
                // A write is a def: it closes the old value's interval (its
                // last read bounds its ACE time) and opens a new one.
                p.regs.borrow_mut().fill(
                    RegFile::word_index(r, self.cpu.cpsr.mode),
                    self.cpu.counters.cycles,
                    false,
                );
            }
        }
        self.cpu.regs.set(r, self.cpu.cpsr.mode, v);
        Ok(())
    }

    fn require_svc(&self, word: u32) -> Result<(), Exception> {
        if self.cpu.cpsr.mode != Mode::Svc {
            return Err(Exception::Undefined { word });
        }
        Ok(())
    }

    // ----- the step function ------------------------------------------------------

    /// Executes one instruction (or vectors one exception).
    ///
    /// Dispatches to one of two monomorphic instantiations of the same
    /// step function: the `FAST` build (µop cache + translation latches,
    /// no profiler or trace-ring branches) whenever the fast path is armed
    /// and neither a profiler nor a PC trace needs feeding, and the
    /// reference build otherwise. The provenance probe works in both — it
    /// is part of the fault model, not of observability.
    pub fn step(&mut self) -> StepOutcome {
        let pc = self.cpu.pc;
        let out = if self.fast.is_some() && self.prof.is_none() && self.cpu.trace.is_none() {
            self.step_exec::<{ tier::FAST }>()
        } else {
            self.step_exec::<{ tier::REF }>()
        };
        // Same zero-cost-when-off shape as sea-trace: one relaxed atomic
        // load, and the profiler slot is `None` on campaign machines.
        if sea_profile::enabled() {
            if let Some(p) = self.prof.as_deref_mut() {
                p.pc.step(pc, sample_counters(&self.cpu.counters));
            }
        }
        if self.probe.is_some() {
            self.drain_probe();
        }
        out
    }

    /// The interrupt stage, shared by both execution tiers: WFI idling
    /// and IRQ vectoring ahead of fetch. `Some` means the step is
    /// complete without fetching an instruction.
    fn stage_interrupt(&mut self) -> Option<StepOutcome> {
        let irq = {
            let now = self.cpu.counters.cycles;
            self.dev.poll_irq(now)
        };
        if self.cpu.wfi {
            if irq {
                self.cpu.wfi = false;
                // fall through to normal execution (the IRQ is taken below
                // if unmasked).
            } else {
                self.cpu.counters.cycles += 20;
                return Some(StepOutcome::Executed);
            }
        }
        if irq && !self.cpu.cpsr.irq_off {
            self.take_exception(Exception::Irq, self.cpu.pc);
            return Some(StepOutcome::Executed);
        }
        None
    }

    /// The issue stage, shared by both execution tiers: condition check
    /// (including the failed-conditional-branch predictor training the
    /// reference path performs) and execution of one decoded instruction.
    fn stage_issue<const MODE: u8>(&mut self, insn: Insn, pc: u32) -> Result<Flow, Exception> {
        let cpsr = self.cpu.cpsr;
        if !insn.cond().holds(cpsr.n, cpsr.z, cpsr.c, cpsr.v) {
            self.cpu.counters.cycles += 1;
            // Conditional branches whose condition fails still train the
            // predictor — except in the warp build, where branches carry
            // a flat unit cost (timing is approximate by contract).
            if let Insn::Branch { .. } = insn {
                self.cpu.counters.branches += 1;
                if MODE != tier::WARP {
                    self.predict_and_train(pc, false);
                }
            }
            return Ok(Flow::Next);
        }
        self.execute::<MODE>(insn, pc)
    }

    /// The retire stage, shared by both execution tiers: commit the
    /// control-flow decision to the PC (and the WFI latch).
    fn stage_retire(&mut self, pc: u32, flow: Flow) -> StepOutcome {
        match flow {
            Flow::Next => {
                self.cpu.pc = pc.wrapping_add(4);
                StepOutcome::Executed
            }
            Flow::Jump(target) => {
                self.cpu.pc = target;
                StepOutcome::Executed
            }
            Flow::Halt => StepOutcome::Halted,
            Flow::Wfi => {
                self.cpu.wfi = true;
                self.cpu.pc = pc.wrapping_add(4);
                StepOutcome::Executed
            }
        }
    }

    fn step_exec<const MODE: u8>(&mut self) -> StepOutcome {
        if let Some(out) = self.stage_interrupt() {
            return out;
        }

        let pc = self.cpu.pc;
        if MODE == tier::REF {
            // The FAST dispatch guarantees the trace ring is absent.
            if let Some(t) = self.cpu.trace.as_mut() {
                t.push(pc);
            }
        }
        let (paddr, word) = match self.fetch_insn::<MODE>(pc) {
            Ok(pw) => pw,
            Err(e) => {
                if Self::in_vector_page(pc) {
                    return StepOutcome::LockedUp;
                }
                self.take_exception(e, pc);
                return StepOutcome::Executed;
            }
        };
        let decoded = if MODE == tier::FAST {
            self.uop_decode(paddr, word)
        } else {
            decode(word).ok()
        };
        let insn = match decoded {
            Some(i) => i,
            None => {
                self.take_exception(Exception::Undefined { word }, pc);
                return StepOutcome::Executed;
            }
        };
        self.cpu.counters.instructions += 1;

        match self.stage_issue::<MODE>(insn, pc) {
            Ok(flow) => self.stage_retire(pc, flow),
            Err(e) => {
                self.take_exception(e, pc);
                StepOutcome::Executed
            }
        }
    }

    // ----- the warp tier's run loop -----------------------------------------

    /// Executes up to `max_steps` steps in the functional warp tier.
    ///
    /// The tier runs fused basic-block traces (see [`crate::warp`]) with
    /// architectural state only: entering drains the detailed cache
    /// hierarchy and switches memory to [`ExecMode::Atomic`]; leaving
    /// restores the previous mode with the hierarchy cold. One "step"
    /// counts exactly what one [`System::step`] call would: an
    /// instruction retired, an exception vectored, or a WFI idle beat —
    /// so `run_warp(n)` covers the same instruction stream as `n`
    /// detailed steps while IRQs are quiescent.
    ///
    /// Returns early on [`StepOutcome::Halted`] / [`StepOutcome::LockedUp`],
    /// otherwise [`StepOutcome::Executed`] once the budget is spent.
    ///
    /// # Panics
    ///
    /// Panics if the warp tier is not armed ([`System::warp_enable`]).
    pub fn run_warp(&mut self, max_steps: u64) -> StepOutcome {
        assert!(self.warp.is_some(), "run_warp without warp_enable");
        debug_assert!(
            self.prof.is_none(),
            "the warp tier skips the bookkeeping profilers sample; detach them first"
        );
        debug_assert!(
            self.probe.is_none(),
            "the warp tier is fault-free only; it skips the provenance probe"
        );
        let saved = self.mem.exec_mode();
        if saved == ExecMode::Detailed {
            // Atomic accesses go straight to DRAM; drain dirty lines so
            // they see committed state (and the detailed tier restarts
            // cold instead of reading lines warp's stores bypassed).
            self.mem.clean_invalidate_all();
        }
        self.mem.set_exec_mode(ExecMode::Atomic);
        let out = self.warp_run_inner(max_steps);
        self.mem.set_exec_mode(saved);
        out
    }

    fn warp_run_inner(&mut self, max_steps: u64) -> StepOutcome {
        let mut steps = 0u64;
        let mut insns = 0u64;
        let mut local_hits = 0u64;
        // The last block executed, kept in a local so a tight loop
        // re-enters its body without touching the engine at all — no slot
        // hash, no `Arc` refcount traffic. The generation stamp makes a
        // stale block unreachable: any invalidation bumps it.
        let mut cached: Option<(u64, WarpBlock)> = None;
        while steps < max_steps {
            if let Some(out) = self.stage_interrupt() {
                steps += 1;
                if out != StepOutcome::Executed {
                    break;
                }
                continue;
            }
            let pc = self.cpu.pc;
            let gen_now = self.warp.as_ref().expect("armed").generation;
            match &cached {
                Some((g, b)) if *g == gen_now && b.vaddr == pc => local_hits += 1,
                _ => {
                    let block = match self.warp_block_at(pc) {
                        Ok(b) => b,
                        Err(e) => {
                            steps += 1;
                            // A *fetch* fault in the vector page is a
                            // lockup, as on the detailed path; an
                            // undecodable word vectors Undefined from
                            // anywhere.
                            if !matches!(e, Exception::Undefined { .. }) && Self::in_vector_page(pc)
                            {
                                self.bank_warp_stats(insns, local_hits);
                                return StepOutcome::LockedUp;
                            }
                            self.take_exception(e, pc);
                            continue;
                        }
                    };
                    let gen = self.warp.as_ref().expect("armed").generation;
                    cached = Some((gen, block));
                }
            }
            let (gen, block) = cached.as_ref().expect("cached above");
            let gen = *gen;
            // Budget is enforced by slicing the block up front, so the
            // µop loop carries no per-step budget check.
            let n = block.uops.len().min((max_steps - steps) as usize);
            let base = pc;
            let mut k = 0usize;
            // While `linear` holds, the program counter is implicit
            // (`base + 4k`) and never stored; µops that redirect it —
            // taken branches, exceptions, the slow path — store it
            // themselves and clear the flag.
            let mut linear = true;
            let mut done = StepOutcome::Executed;
            while k < n {
                let upc = base.wrapping_add(4 * k as u32);
                if let Some(t) = self.cpu.trace.as_mut() {
                    t.push(upc);
                }
                self.cpu.counters.instructions += 1;
                k += 1;
                match block.uops[k - 1] {
                    // The Alu µops were proven side-effect-free at
                    // lowering time (unconditional, no pc operands): no
                    // exception, control-flow, wfi or invalidation
                    // checks apply.
                    Uop::AluRI { op, s, rd, rn, imm } => {
                        self.cpu.counters.cycles += 1;
                        let a = if rn == NO_REG {
                            0
                        } else {
                            self.cpu.regs.word(rn as usize)
                        };
                        let c_in = self.cpu.cpsr.c;
                        let (result, carry, overflow) = alu(op, a, imm, c_in, c_in);
                        if s {
                            self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                            self.cpu.cpsr.z = result == 0;
                            self.cpu.cpsr.c = carry;
                            self.cpu.cpsr.v = overflow;
                        }
                        if !op.is_compare() {
                            self.cpu.regs.set_word(rd as usize, result);
                        }
                    }
                    Uop::AluRR { op, s, rd, rn, rm } => {
                        self.cpu.counters.cycles += 1;
                        let b = self.cpu.regs.word(rm as usize);
                        let a = if rn == NO_REG {
                            0
                        } else {
                            self.cpu.regs.word(rn as usize)
                        };
                        let c_in = self.cpu.cpsr.c;
                        let (result, carry, overflow) = alu(op, a, b, c_in, c_in);
                        if s {
                            self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                            self.cpu.cpsr.z = result == 0;
                            self.cpu.cpsr.c = carry;
                            self.cpu.cpsr.v = overflow;
                        }
                        if !op.is_compare() {
                            self.cpu.regs.set_word(rd as usize, result);
                        }
                    }
                    Uop::AluRRS {
                        op,
                        s,
                        rd,
                        rn,
                        rm,
                        shift,
                        amount,
                    } => {
                        self.cpu.counters.cycles += 1;
                        let v = self.cpu.regs.word(rm as usize);
                        let amt = amount as u32;
                        let b = shift.apply(v, amount);
                        // Shifter carry exactly as eval_op2 computes it.
                        let shifter_c = match shift {
                            Shift::Lsl => amt <= 32 && (v >> (32 - amt)) & 1 == 1,
                            Shift::Lsr => amt <= 32 && (v >> (amt - 1)) & 1 == 1,
                            Shift::Asr => (v >> (amt - 1).min(31)) & 1 == 1,
                            Shift::Ror => (b >> 31) & 1 == 1,
                        };
                        let a = if rn == NO_REG {
                            0
                        } else {
                            self.cpu.regs.word(rn as usize)
                        };
                        let c_in = self.cpu.cpsr.c;
                        let (result, carry, overflow) = alu(op, a, b, c_in, shifter_c);
                        if s {
                            self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                            self.cpu.cpsr.z = result == 0;
                            self.cpu.cpsr.c = carry;
                            self.cpu.cpsr.v = overflow;
                        }
                        if !op.is_compare() {
                            self.cpu.regs.set_word(rd as usize, result);
                        }
                    }
                    Uop::MovW { top, rd, imm } => {
                        self.cpu.counters.cycles += 1;
                        let v = if top {
                            (self.cpu.regs.word(rd as usize) & 0xFFFF) | ((imm as u32) << 16)
                        } else {
                            imm as u32
                        };
                        self.cpu.regs.set_word(rd as usize, v);
                    }
                    Uop::Ldr {
                        size,
                        rd,
                        rn,
                        flags,
                        rm,
                        shl,
                        off,
                    } => {
                        self.cpu.counters.cycles += 1;
                        let base_v = self.cpu.regs.word(rn as usize);
                        let off_v = if flags & MEM_IMM != 0 {
                            off
                        } else {
                            self.cpu.regs.word(rm as usize) << shl
                        };
                        let indexed = if flags & MEM_SUB != 0 {
                            base_v.wrapping_sub(off_v)
                        } else {
                            base_v.wrapping_add(off_v)
                        };
                        let vaddr = if flags & MEM_PRE != 0 {
                            indexed
                        } else {
                            base_v
                        };
                        match self.read_mem::<{ tier::WARP }>(vaddr, size) {
                            Ok(v) => {
                                if flags & MEM_WB != 0 {
                                    self.cpu.regs.set_word(rn as usize, indexed);
                                }
                                self.cpu.regs.set_word(rd as usize, v);
                            }
                            Err(e) => {
                                self.take_exception(e, upc);
                                linear = false;
                                break;
                            }
                        }
                    }
                    Uop::Str {
                        size,
                        rd,
                        rn,
                        flags,
                        rm,
                        shl,
                        off,
                    } => {
                        self.cpu.counters.cycles += 1;
                        let base_v = self.cpu.regs.word(rn as usize);
                        let off_v = if flags & MEM_IMM != 0 {
                            off
                        } else {
                            self.cpu.regs.word(rm as usize) << shl
                        };
                        let indexed = if flags & MEM_SUB != 0 {
                            base_v.wrapping_sub(off_v)
                        } else {
                            base_v.wrapping_add(off_v)
                        };
                        let vaddr = if flags & MEM_PRE != 0 {
                            indexed
                        } else {
                            base_v
                        };
                        let v = self.cpu.regs.word(rd as usize);
                        match self.write_mem::<{ tier::WARP }>(vaddr, size, v) {
                            Ok(()) => {
                                if flags & MEM_WB != 0 {
                                    self.cpu.regs.set_word(rn as usize, indexed);
                                }
                                // A store is the one lowered µop that can
                                // invalidate the block it runs in (SMC);
                                // leave the trace if it just did.
                                if self.warp.as_deref().expect("armed").generation != gen {
                                    break;
                                }
                            }
                            Err(e) => {
                                self.take_exception(e, upc);
                                linear = false;
                                break;
                            }
                        }
                    }
                    Uop::B { cond, link, target } => {
                        self.cpu.counters.cycles += 1;
                        self.cpu.counters.branches += 1;
                        let cpsr = self.cpu.cpsr;
                        if cond.holds(cpsr.n, cpsr.z, cpsr.c, cpsr.v) {
                            if link {
                                self.cpu.regs.set(
                                    sea_isa::Reg::Lr,
                                    self.cpu.cpsr.mode,
                                    upc.wrapping_add(4),
                                );
                            }
                            self.cpu.pc = target;
                            linear = false;
                            break;
                        }
                    }
                    Uop::Slow(insn) => {
                        // Slow-path instructions observe (and may keep) the
                        // architectural pc — e.g. Halt/Wfi leave it in
                        // place — so materialize the deferred value first.
                        self.cpu.pc = upc;
                        let out = match self.warp_issue(insn, upc) {
                            Ok(flow) => self.stage_retire(upc, flow),
                            Err(e) => {
                                self.take_exception(e, upc);
                                StepOutcome::Executed
                            }
                        };
                        linear = false;
                        if out != StepOutcome::Executed {
                            done = out;
                            break;
                        }
                        // Leave the trace when control flow did, when the
                        // core went idle, or when an invalidation (SMC,
                        // mode/translation change) killed the block.
                        if self.cpu.pc != upc.wrapping_add(4)
                            || self.cpu.wfi
                            || self.warp.as_deref().expect("armed").generation != gen
                        {
                            break;
                        }
                        linear = true;
                    }
                }
            }
            steps += k as u64;
            insns += k as u64;
            if linear {
                self.cpu.pc = base.wrapping_add(4 * k as u32);
            }
            if done != StepOutcome::Executed {
                self.bank_warp_stats(insns, local_hits);
                return done;
            }
        }
        self.bank_warp_stats(insns, local_hits);
        StepOutcome::Executed
    }

    fn bank_warp_stats(&mut self, insns: u64, local_hits: u64) {
        if let Some(w) = self.warp.as_deref_mut() {
            w.insns += insns;
            w.block_hits += local_hits;
        }
    }

    /// The warp tier's issue stage: `stage_issue::<{ tier::WARP }>` with
    /// the µops that dominate fused traces — data-processing, single
    /// loads/stores and direct branches — inlined into the block loop
    /// instead of dispatched through the full `execute` match (whose size
    /// keeps it out of line; the call alone roughly doubles a Dp µop's
    /// cost). The arms are verbatim WARP instantiations of the shared
    /// ones, so the two paths stay architecturally identical; everything
    /// else falls through to `execute` itself.
    #[inline(always)]
    fn warp_issue(&mut self, insn: Insn, pc: u32) -> Result<Flow, Exception> {
        let cpsr = self.cpu.cpsr;
        if !insn.cond().holds(cpsr.n, cpsr.z, cpsr.c, cpsr.v) {
            self.cpu.counters.cycles += 1;
            if let Insn::Branch { .. } = insn {
                self.cpu.counters.branches += 1;
            }
            return Ok(Flow::Next);
        }
        match insn {
            Insn::Dp {
                op, s, rd, rn, op2, ..
            } => {
                self.cpu.counters.cycles += 1;
                let (b, shifter_c) = self.eval_op2::<{ tier::WARP }>(op2)?;
                let a = if op.ignores_rn() {
                    0
                } else {
                    self.reg_read::<{ tier::WARP }>(rn)?
                };
                let c_in = self.cpu.cpsr.c;
                let (result, carry, overflow) = alu(op, a, b, c_in, shifter_c);
                if s {
                    self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                    self.cpu.cpsr.z = result == 0;
                    self.cpu.cpsr.c = carry;
                    self.cpu.cpsr.v = overflow;
                }
                if !op.is_compare() {
                    self.reg_write::<{ tier::WARP }>(rd, result)?;
                }
                Ok(Flow::Next)
            }
            Insn::Mem {
                load,
                size,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                self.cpu.counters.cycles += 1;
                let base = self.reg_read::<{ tier::WARP }>(rn)?;
                let off = match offset {
                    MemOffset::Imm(i) => i as u32,
                    MemOffset::Reg { rm, shl } => self.reg_read::<{ tier::WARP }>(rm)? << shl,
                };
                let indexed = if mode.up {
                    base.wrapping_add(off)
                } else {
                    base.wrapping_sub(off)
                };
                let vaddr = if mode.pre { indexed } else { base };
                if load {
                    let v = self.read_mem::<{ tier::WARP }>(vaddr, size)?;
                    if mode.writeback {
                        self.reg_write::<{ tier::WARP }>(rn, indexed)?;
                    }
                    self.reg_write::<{ tier::WARP }>(rd, v)?;
                } else {
                    let v = self.reg_read::<{ tier::WARP }>(rd)?;
                    self.write_mem::<{ tier::WARP }>(vaddr, size, v)?;
                    if mode.writeback {
                        self.reg_write::<{ tier::WARP }>(rn, indexed)?;
                    }
                }
                Ok(Flow::Next)
            }
            Insn::Branch { link, offset, .. } => {
                self.cpu.counters.cycles += 1;
                self.cpu.counters.branches += 1;
                if link {
                    self.cpu
                        .regs
                        .set(sea_isa::Reg::Lr, self.cpu.cpsr.mode, pc.wrapping_add(4));
                }
                Ok(Flow::Jump(
                    pc.wrapping_add(4).wrapping_add((offset as u32) << 2),
                ))
            }
            _ => self.execute::<{ tier::WARP }>(insn, pc),
        }
    }

    /// The cached block starting at `pc`, building (fetch + decode +
    /// fuse) on a miss. `Err` carries the fault the *first* fetch or
    /// decode raised — faults on lookahead words just end the block,
    /// exactly as the per-step path would discover them later.
    fn warp_block_at(&mut self, pc: u32) -> Result<WarpBlock, Exception> {
        if let Some(b) = self.warp.as_deref_mut().expect("armed").lookup(pc) {
            return Ok(b);
        }
        let (paddr, word) = self.fetch_insn::<{ tier::REF }>(pc)?;
        let Ok(first) = decode(word) else {
            return Err(Exception::Undefined { word });
        };
        let max_len = self.warp.as_deref().expect("armed").max_block_len;
        let mut decoded = vec![first];
        while (decoded.len() as u32) < max_len
            && !Self::warp_ends_block(decoded.last().expect("nonempty"))
        {
            let va = pc.wrapping_add(4 * decoded.len() as u32);
            if va >> 12 != pc >> 12 {
                break; // blocks never cross a page
            }
            let Ok((_, w)) = self.fetch_insn::<{ tier::REF }>(va) else {
                break;
            };
            let Ok(i) = decode(w) else {
                break;
            };
            decoded.push(i);
        }
        // Lowering resolves banked registers against the current mode —
        // sound because every mode change flushes the trace cache.
        let mode = self.cpu.cpsr.mode;
        let uops: Vec<Uop> = decoded
            .into_iter()
            .enumerate()
            .map(|(k, i)| crate::warp::lower(i, mode, pc.wrapping_add(4 * k as u32)))
            .collect();
        let block = WarpBlock {
            vaddr: pc,
            ppn: paddr >> 12,
            uops: uops.into(),
        };
        self.warp
            .as_deref_mut()
            .expect("armed")
            .insert(block.clone());
        Ok(block)
    }

    /// Instructions that terminate a fused block: anything redirecting
    /// control flow, raising, or changing machine context — plus `CPS`,
    /// so an IRQ unmasked mid-trace is polled at the next block boundary
    /// rather than an unbounded trace later.
    fn warp_ends_block(insn: &Insn) -> bool {
        matches!(
            insn,
            Insn::Branch { .. }
                | Insn::Bx { .. }
                | Insn::Svc { .. }
                | Insn::Msr { .. }
                | Insn::Cps { .. }
                | Insn::Eret { .. }
                | Insn::Halt { .. }
                | Insn::Wfi { .. }
        )
    }

    /// Decode via the µop cache: a `(paddr, word)` hit skips the decoder
    /// outright; a miss decodes and caches the result. Decode *failures*
    /// are never cached, so `Undefined` always re-raises from the decoder
    /// itself, exactly like the reference path.
    fn uop_decode(&mut self, paddr: u32, word: u32) -> Option<Insn> {
        if let Some(i) = self.fast_state().uop_lookup(paddr, word) {
            return Some(i);
        }
        let i = decode(word).ok()?;
        self.fast_state().uop_insert(paddr, word, i);
        Some(i)
    }

    fn in_vector_page(pc: u32) -> bool {
        pc.wrapping_sub(VECTOR_BASE) < 0x20
    }

    fn predict_and_train(&mut self, pc: u32, taken: bool) {
        let idx = ((pc >> 2) & self.cpu.pred_mask) as usize;
        let ctr = self.cpu.predictor[idx];
        let predicted = ctr >= 2;
        if predicted != taken {
            self.cpu.counters.branch_misses += 1;
            self.cpu.counters.cycles += self.cfg.lat.branch_miss as u64;
        }
        self.cpu.predictor[idx] = if taken {
            (ctr + 1).min(3)
        } else {
            ctr.saturating_sub(1)
        };
    }

    #[allow(clippy::too_many_lines)]
    fn execute<const MODE: u8>(&mut self, insn: Insn, pc: u32) -> Result<Flow, Exception> {
        let lat = &self.cfg.lat;
        let (mul_lat, div_lat, fp_lat, fdiv_lat, fsqrt_lat) =
            (lat.mul, lat.div, lat.fp, lat.fdiv, lat.fsqrt);
        match insn {
            Insn::Dp {
                op, s, rd, rn, op2, ..
            } => {
                self.cpu.counters.cycles += 1;
                let (b, shifter_c) = self.eval_op2::<MODE>(op2)?;
                let a = if op.ignores_rn() {
                    0
                } else {
                    self.reg_read::<MODE>(rn)?
                };
                let c_in = self.cpu.cpsr.c;
                let (result, carry, overflow) = alu(op, a, b, c_in, shifter_c);
                if s {
                    self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                    self.cpu.cpsr.z = result == 0;
                    self.cpu.cpsr.c = carry;
                    self.cpu.cpsr.v = overflow;
                }
                if !op.is_compare() {
                    self.reg_write::<MODE>(rd, result)?;
                }
                Ok(Flow::Next)
            }
            Insn::MovW { top, rd, imm, .. } => {
                self.cpu.counters.cycles += 1;
                let old = if top { self.reg_read::<MODE>(rd)? } else { 0 };
                let v = if top {
                    (old & 0xFFFF) | ((imm as u32) << 16)
                } else {
                    imm as u32
                };
                self.reg_write::<MODE>(rd, v)?;
                Ok(Flow::Next)
            }
            Insn::Mul {
                op,
                s,
                rd,
                rn,
                rm,
                ra,
                ..
            } => {
                let a = self.reg_read::<MODE>(rn)?;
                let b = self.reg_read::<MODE>(rm)?;
                let result = match op {
                    MulOp::Mul => {
                        self.cpu.counters.cycles += mul_lat as u64;
                        a.wrapping_mul(b)
                    }
                    MulOp::Mla => {
                        self.cpu.counters.cycles += mul_lat as u64;
                        a.wrapping_mul(b).wrapping_add(self.reg_read::<MODE>(ra)?)
                    }
                    MulOp::Umull => {
                        self.cpu.counters.cycles += mul_lat as u64 + 1;
                        let wide = a as u64 * b as u64;
                        self.reg_write::<MODE>(ra, (wide >> 32) as u32)?;
                        wide as u32
                    }
                    MulOp::Smull => {
                        self.cpu.counters.cycles += mul_lat as u64 + 1;
                        let wide = (a as i32 as i64 * b as i32 as i64) as u64;
                        self.reg_write::<MODE>(ra, (wide >> 32) as u32)?;
                        wide as u32
                    }
                    MulOp::Udiv => {
                        self.cpu.counters.cycles += div_lat as u64;
                        a.checked_div(b).unwrap_or(0)
                    }
                    MulOp::Sdiv => {
                        self.cpu.counters.cycles += div_lat as u64;
                        if b == 0 {
                            0
                        } else {
                            (a as i32).wrapping_div(b as i32) as u32
                        }
                    }
                    MulOp::Urem => {
                        self.cpu.counters.cycles += div_lat as u64;
                        a.checked_rem(b).unwrap_or(0)
                    }
                    MulOp::Srem => {
                        self.cpu.counters.cycles += div_lat as u64;
                        if b == 0 {
                            0
                        } else {
                            (a as i32).wrapping_rem(b as i32) as u32
                        }
                    }
                    MulOp::Lslv => {
                        self.cpu.counters.cycles += 1;
                        a << (b & 31)
                    }
                    MulOp::Lsrv => {
                        self.cpu.counters.cycles += 1;
                        a >> (b & 31)
                    }
                    MulOp::Asrv => {
                        self.cpu.counters.cycles += 1;
                        ((a as i32) >> (b & 31)) as u32
                    }
                    MulOp::Rorv => {
                        self.cpu.counters.cycles += 1;
                        a.rotate_right(b & 31)
                    }
                };
                if s {
                    self.cpu.cpsr.n = result & 0x8000_0000 != 0;
                    self.cpu.cpsr.z = result == 0;
                }
                self.reg_write::<MODE>(rd, result)?;
                Ok(Flow::Next)
            }
            Insn::Mem {
                load,
                size,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                self.cpu.counters.cycles += 1;
                let base = self.reg_read::<MODE>(rn)?;
                let off = match offset {
                    MemOffset::Imm(i) => i as u32,
                    MemOffset::Reg { rm, shl } => self.reg_read::<MODE>(rm)? << shl,
                };
                let indexed = if mode.up {
                    base.wrapping_add(off)
                } else {
                    base.wrapping_sub(off)
                };
                let vaddr = if mode.pre { indexed } else { base };
                if load {
                    // The warp build skips the provenance probe: the tier
                    // only ever runs fault-free (`run_warp` asserts it).
                    let pre = MODE != tier::WARP && self.probe_data_touched();
                    let v = self.read_mem::<MODE>(vaddr, size)?;
                    if MODE != tier::WARP && !pre && self.probe_data_touched() {
                        // This load consumed the corrupted cache line.
                        self.note_register_fill();
                    }
                    if mode.writeback {
                        self.reg_write::<MODE>(rn, indexed)?;
                    }
                    self.reg_write::<MODE>(rd, v)?; // load result wins over writeback
                } else {
                    let v = self.reg_read::<MODE>(rd)?;
                    self.write_mem::<MODE>(vaddr, size, v)?;
                    if mode.writeback {
                        self.reg_write::<MODE>(rn, indexed)?;
                    }
                }
                Ok(Flow::Next)
            }
            Insn::MemMulti {
                load,
                rn,
                writeback,
                up,
                before,
                regs,
                ..
            } => {
                if regs & 0x8000 != 0 {
                    // pc in a register list is not architecturally valid.
                    return Err(Exception::Undefined { word: 0x8000 });
                }
                let n = regs.count_ones();
                let base = self.reg_read::<MODE>(rn)?;
                let lowest = match (up, before) {
                    (true, false) => base,                                      // ia
                    (true, true) => base.wrapping_add(4),                       // ib
                    (false, false) => base.wrapping_sub(4 * n).wrapping_add(4), // da
                    (false, true) => base.wrapping_sub(4 * n),                  // db
                };
                let final_base = if up {
                    base.wrapping_add(4 * n)
                } else {
                    base.wrapping_sub(4 * n)
                };
                let mut addr = lowest;
                for i in 0..15 {
                    if regs & (1 << i) == 0 {
                        continue;
                    }
                    self.cpu.counters.cycles += 1;
                    let r = sea_isa::Reg::from_index(i);
                    if load {
                        let v = self.read_mem::<MODE>(addr, MemSize::Word)?;
                        self.reg_write::<MODE>(r, v)?;
                    } else {
                        let v = self.reg_read::<MODE>(r)?;
                        self.write_mem::<MODE>(addr, MemSize::Word, v)?;
                    }
                    addr = addr.wrapping_add(4);
                }
                if writeback {
                    self.reg_write::<MODE>(rn, final_base)?;
                }
                Ok(Flow::Next)
            }
            Insn::Branch { link, offset, .. } => {
                self.cpu.counters.cycles += 1;
                self.cpu.counters.branches += 1;
                if MODE != tier::WARP && insn.cond() != Cond::Al {
                    self.predict_and_train(pc, true);
                }
                if link {
                    self.cpu
                        .regs
                        .set(sea_isa::Reg::Lr, self.cpu.cpsr.mode, pc.wrapping_add(4));
                }
                Ok(Flow::Jump(
                    pc.wrapping_add(4).wrapping_add((offset as u32) << 2),
                ))
            }
            Insn::Bx { rm, .. } => {
                self.cpu.counters.cycles += 1 + self.cfg.lat.branch_miss as u64 / 2;
                self.cpu.counters.branches += 1;
                let target = self.reg_read::<MODE>(rm)? & !1;
                Ok(Flow::Jump(target))
            }
            Insn::FpArith { op, sd, sn, sm, .. } => {
                let a = self.cpu.regs.fget(sn);
                let b = self.cpu.regs.fget(sm);
                let (v, cyc) = match op {
                    FpArithOp::Add => (a + b, fp_lat),
                    FpArithOp::Sub => (a - b, fp_lat),
                    FpArithOp::Mul => (a * b, fp_lat),
                    FpArithOp::Div => (a / b, fdiv_lat),
                    FpArithOp::Mac => (self.cpu.regs.fget(sd) + a * b, fp_lat + 1),
                    FpArithOp::Min => (a.min(b), fp_lat),
                    FpArithOp::Max => (a.max(b), fp_lat),
                };
                self.cpu.counters.cycles += cyc as u64;
                self.cpu.regs.fset(sd, v);
                Ok(Flow::Next)
            }
            Insn::FpUnary { op, sd, sm, .. } => {
                let a = self.cpu.regs.fget(sm);
                let (v, cyc) = match op {
                    FpUnaryOp::Abs => (a.abs(), fp_lat),
                    FpUnaryOp::Neg => (-a, fp_lat),
                    FpUnaryOp::Sqrt => (a.sqrt(), fsqrt_lat),
                    FpUnaryOp::Mov => (a, 1),
                };
                self.cpu.counters.cycles += cyc as u64;
                self.cpu.regs.fset(sd, v);
                Ok(Flow::Next)
            }
            Insn::FpCmp { sn, sm, .. } => {
                self.cpu.counters.cycles += fp_lat as u64;
                let a = self.cpu.regs.fget(sn);
                let b = self.cpu.regs.fget(sm);
                // VCMP + VMRS flag mapping.
                let (n, z, c, v) = match a.partial_cmp(&b) {
                    Some(std::cmp::Ordering::Less) => (true, false, false, false),
                    Some(std::cmp::Ordering::Equal) => (false, true, true, false),
                    Some(std::cmp::Ordering::Greater) => (false, false, true, false),
                    None => (false, false, true, true),
                };
                self.cpu.cpsr.n = n;
                self.cpu.cpsr.z = z;
                self.cpu.cpsr.c = c;
                self.cpu.cpsr.v = v;
                Ok(Flow::Next)
            }
            Insn::FpToInt { rd, sm, .. } => {
                self.cpu.counters.cycles += fp_lat as u64;
                let a = self.cpu.regs.fget(sm);
                let v = if a.is_nan() {
                    0
                } else {
                    a.max(i32::MIN as f32).min(i32::MAX as f32) as i32
                };
                self.reg_write::<MODE>(rd, v as u32)?;
                Ok(Flow::Next)
            }
            Insn::IntToFp { sd, rm, .. } => {
                self.cpu.counters.cycles += fp_lat as u64;
                let v = self.reg_read::<MODE>(rm)? as i32;
                self.cpu.regs.fset(sd, v as f32);
                Ok(Flow::Next)
            }
            Insn::FpToCore { rd, sn, .. } => {
                self.cpu.counters.cycles += 1;
                let bits = self.cpu.regs.fget_bits(sn);
                self.reg_write::<MODE>(rd, bits)?;
                Ok(Flow::Next)
            }
            Insn::CoreToFp { sd, rn, .. } => {
                self.cpu.counters.cycles += 1;
                let bits = self.reg_read::<MODE>(rn)?;
                self.cpu.regs.fset_bits(sd, bits);
                Ok(Flow::Next)
            }
            Insn::FpMem {
                load, sd, rn, imm6, ..
            } => {
                self.cpu.counters.cycles += 1;
                let base = self.reg_read::<MODE>(rn)?;
                let vaddr = base.wrapping_add(4 * imm6 as u32);
                if load {
                    let v = self.read_mem::<MODE>(vaddr, MemSize::Word)?;
                    self.cpu.regs.fset_bits(sd, v);
                } else {
                    let v = self.cpu.regs.fget_bits(sd);
                    self.write_mem::<MODE>(vaddr, MemSize::Word, v)?;
                }
                Ok(Flow::Next)
            }
            Insn::Svc { imm, .. } => {
                self.cpu.counters.cycles += 1;
                Err(Exception::Svc { imm })
            }
            Insn::Mrs { rd, sys, .. } => {
                self.cpu.counters.cycles += 1;
                let priv_needed = !matches!(sys, SysReg::Cycles);
                if priv_needed {
                    self.require_svc(0x3000)?;
                }
                let v = match sys {
                    SysReg::Cpsr => self.cpu.cpsr.to_bits(),
                    SysReg::Spsr => self.cpu.spsr,
                    SysReg::Cycles => self.cpu.counters.cycles as u32,
                    SysReg::Elr => self.cpu.elr,
                    SysReg::Esr => self.cpu.esr,
                    SysReg::Far => self.cpu.far,
                    SysReg::Ttbr => self.cpu.ttbr,
                    SysReg::SpUsr => self.cpu.regs.sp_usr(),
                    SysReg::CacheOp => 0,
                };
                self.reg_write::<MODE>(rd, v)?;
                Ok(Flow::Next)
            }
            Insn::Msr { sys, rn, .. } => {
                self.cpu.counters.cycles += 1;
                self.require_svc(0x4000)?;
                let v = self.reg_read::<MODE>(rn)?;
                match sys {
                    SysReg::Cpsr => {
                        self.cpu.cpsr = Cpsr::from_bits(v);
                        self.fastpath_clear_latches(); // possible mode change
                        self.warp_flush();
                    }
                    SysReg::Spsr => self.cpu.spsr = v,
                    SysReg::Cycles => {} // read-only
                    SysReg::Elr => self.cpu.elr = v,
                    SysReg::Esr => self.cpu.esr = v,
                    SysReg::Far => self.cpu.far = v,
                    SysReg::Ttbr => {
                        self.cpu.ttbr = v;
                        self.itlb.flush();
                        self.dtlb.flush();
                        self.fastpath_clear_latches();
                        self.warp_flush();
                        if MODE == tier::REF {
                            if let Some(p) = self.prof.as_deref_mut() {
                                p.itlb.flush_all();
                                p.dtlb.flush_all();
                            }
                        }
                    }
                    SysReg::SpUsr => self.cpu.regs.set_sp_usr(v),
                    SysReg::CacheOp => {
                        if v & 1 != 0 {
                            self.mem.clean_invalidate_all();
                            self.cpu.counters.cycles += 200;
                        }
                        if v & 2 != 0 {
                            self.itlb.flush();
                            self.dtlb.flush();
                            self.fastpath_clear_latches();
                            self.warp_flush();
                            if MODE == tier::REF {
                                if let Some(p) = self.prof.as_deref_mut() {
                                    p.itlb.flush_all();
                                    p.dtlb.flush_all();
                                }
                            }
                        }
                    }
                }
                Ok(Flow::Next)
            }
            Insn::Cps { enable_irq, .. } => {
                self.cpu.counters.cycles += 1;
                self.require_svc(0x6000)?;
                self.cpu.cpsr.irq_off = !enable_irq;
                Ok(Flow::Next)
            }
            Insn::Eret { .. } => {
                self.cpu.counters.cycles += 3;
                self.require_svc(0x5000)?;
                self.cpu.cpsr = Cpsr::from_bits(self.cpu.spsr);
                self.fastpath_clear_latches(); // mode change on return
                self.warp_flush();
                Ok(Flow::Jump(self.cpu.elr))
            }
            Insn::Nop { .. } => {
                self.cpu.counters.cycles += 1;
                Ok(Flow::Next)
            }
            Insn::Halt { .. } => {
                self.cpu.counters.cycles += 1;
                self.require_svc(0x2000)?;
                Ok(Flow::Halt)
            }
            Insn::Wfi { .. } => {
                self.cpu.counters.cycles += 1;
                self.require_svc(0x9000)?;
                Ok(Flow::Wfi)
            }
        }
    }
}

impl<D: Device + Snapshot> Snapshot for System<D> {
    /// Captures the complete machine: configuration, core, memory system
    /// (including the COW physical-memory image), both TLBs, and the
    /// device block.
    ///
    /// The fault-provenance probe is *not* captured: checkpoints are taken
    /// during fault-free golden runs, before any probe is armed. Saving a
    /// machine with an armed probe is a caller bug (debug-asserted); the
    /// restored machine always comes back probe-free.
    ///
    /// The execution fast path is not captured either — it is pure
    /// memoization, excluded from `.seackpt` state just as it is from
    /// [`System::state_fingerprint_deep`]. Restored machines come back
    /// with the fast path disarmed (cold), which is always
    /// equivalence-preserving; callers re-arm with
    /// [`System::fastpath_enable`] as needed.
    fn save(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.probe.is_none(),
            "checkpointing an injected machine loses its provenance probe"
        );
        debug_assert!(
            self.prof.is_none(),
            "profiler must be detached (profile_take) before snapshotting"
        );
        w.tag(*b"SYS ");
        self.cfg.save(w);
        self.cpu.save(w);
        self.mem.save(w);
        self.itlb.save(w);
        self.dtlb.save(w);
        self.dev.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<System<D>, SnapError> {
        r.tag(*b"SYS ")?;
        let cfg = MachineConfig::load(r)?;
        Ok(System {
            cfg,
            cpu: Cpu::load(r)?,
            mem: MemSystem::load(r)?,
            itlb: Tlb::load(r)?,
            dtlb: Tlb::load(r)?,
            dev: D::load(r)?,
            probe: None,
            prof: None,
            fast: None,
            warp: None,
        })
    }
}

/// The integer ALU: returns `(result, carry, overflow)`.
fn alu(op: DpOp, a: u32, b: u32, c_in: bool, shifter_c: bool) -> (u32, bool, bool) {
    fn add(a: u32, b: u32, carry: u32) -> (u32, bool, bool) {
        let wide = a as u64 + b as u64 + carry as u64;
        let r = wide as u32;
        let c = wide > u32::MAX as u64;
        let v = ((a ^ r) & (b ^ r)) & 0x8000_0000 != 0;
        (r, c, v)
    }
    match op {
        DpOp::And | DpOp::Tst => (a & b, shifter_c, false),
        DpOp::Eor | DpOp::Teq => (a ^ b, shifter_c, false),
        DpOp::Orr => (a | b, shifter_c, false),
        DpOp::Bic => (a & !b, shifter_c, false),
        DpOp::Mov => (b, shifter_c, false),
        DpOp::Mvn => (!b, shifter_c, false),
        DpOp::Add | DpOp::Cmn => add(a, b, 0),
        DpOp::Adc => add(a, b, c_in as u32),
        DpOp::Sub | DpOp::Cmp => add(a, !b, 1),
        DpOp::Sbc => add(a, !b, c_in as u32),
        DpOp::Rsb => add(b, !a, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_sub_sets_borrow_semantics() {
        // 5 - 3: no borrow → C set.
        let (r, c, v) = alu(DpOp::Sub, 5, 3, false, false);
        assert_eq!((r, c, v), (2, true, false));
        // 3 - 5: borrow → C clear, negative result.
        let (r, c, _) = alu(DpOp::Sub, 3, 5, false, false);
        assert_eq!(r, (-2i32) as u32);
        assert!(!c);
    }

    #[test]
    fn alu_overflow() {
        let (_, _, v) = alu(DpOp::Add, i32::MAX as u32, 1, false, false);
        assert!(v);
        let (_, _, v) = alu(DpOp::Sub, i32::MIN as u32, 1, false, false);
        assert!(v);
    }

    #[test]
    fn alu_logical_uses_shifter_carry() {
        let (_, c, v) = alu(DpOp::And, 3, 1, false, true);
        assert!(c);
        assert!(!v);
    }

    /// Independent reference for the shifter's (value, carry-out), written
    /// from the ARM `Shift_C` pseudocode case by case — deliberately not
    /// sharing any arithmetic with `eval_op2` or `Shift::apply`.
    fn shift_c_reference(kind: Shift, v: u32, n: u32, c_in: bool) -> (u32, bool) {
        if n == 0 {
            return (v, c_in);
        }
        match kind {
            Shift::Lsl => match n {
                1..=31 => (v << n, (v >> (32 - n)) & 1 == 1),
                32 => (0, v & 1 == 1),
                _ => (0, false),
            },
            Shift::Lsr => match n {
                1..=31 => (v >> n, (v >> (n - 1)) & 1 == 1),
                32 => (0, v >> 31 == 1),
                _ => (0, false),
            },
            Shift::Asr => {
                let sign = v >> 31 == 1;
                match n {
                    1..=31 => (((v as i32) >> n) as u32, (v >> (n - 1)) & 1 == 1),
                    _ => (if sign { u32::MAX } else { 0 }, sign),
                }
            }
            Shift::Ror => {
                let m = n % 32;
                if m == 0 {
                    (v, v >> 31 == 1)
                } else {
                    let out = v.rotate_right(m);
                    (out, out >> 31 == 1)
                }
            }
        }
    }

    #[test]
    fn eval_op2_carry_matches_reference_exhaustively() {
        use crate::config::MachineConfig;
        use crate::mem::NullDevice;
        let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        let rm = sea_isa::Reg::from_index(1);
        let samples = [
            0u32,
            1,
            2,
            0x8000_0000,
            0x8000_0001,
            0x7FFF_FFFF,
            0xFFFF_FFFF,
            0xDEAD_BEEF,
            0x0001_0000,
        ];
        for kind in [Shift::Lsl, Shift::Lsr, Shift::Asr, Shift::Ror] {
            for v in samples {
                for amount in 0..=255u32 {
                    for c_in in [false, true] {
                        sys.cpu.cpsr.c = c_in;
                        let mode = sys.cpu.cpsr.mode;
                        sys.cpu.regs.set(rm, mode, v);
                        let op2 = Operand2::Reg(sea_isa::ShiftedReg {
                            rm,
                            shift: kind,
                            amount: amount as u8,
                        });
                        let got = sys.eval_op2::<{ tier::REF }>(op2).unwrap();
                        let want = shift_c_reference(kind, v, amount, c_in);
                        assert_eq!(got, want, "{kind:?} of {v:#010x} by {amount} (C={c_in})");
                    }
                }
            }
        }
    }

    #[test]
    fn eval_op2_boundary_carries() {
        use crate::config::MachineConfig;
        use crate::mem::NullDevice;
        let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        let rm = sea_isa::Reg::from_index(2);
        let mode = sys.cpu.cpsr.mode;
        sys.cpu.cpsr.c = false;
        let case = |sys: &mut System<NullDevice>, v: u32, shift, amount| {
            sys.cpu.regs.set(rm, mode, v);
            sys.eval_op2::<{ tier::REF }>(Operand2::Reg(sea_isa::ShiftedReg { rm, shift, amount }))
                .unwrap()
        };
        // LSL #32: result 0, carry = old bit 0.
        assert_eq!(case(&mut sys, 1, Shift::Lsl, 32), (0, true));
        assert_eq!(case(&mut sys, 2, Shift::Lsl, 32), (0, false));
        // LSL #33+: result 0, carry clear.
        assert_eq!(case(&mut sys, u32::MAX, Shift::Lsl, 33), (0, false));
        // LSR #32: result 0, carry = old bit 31.
        assert_eq!(case(&mut sys, 0x8000_0000, Shift::Lsr, 32), (0, true));
        assert_eq!(case(&mut sys, 0x7FFF_FFFF, Shift::Lsr, 32), (0, false));
        // LSR #33+: result 0, carry clear.
        assert_eq!(case(&mut sys, u32::MAX, Shift::Lsr, 40), (0, false));
        // ASR #32+: result and carry both follow the sign bit.
        assert_eq!(
            case(&mut sys, 0x8000_0000, Shift::Asr, 32),
            (u32::MAX, true)
        );
        assert_eq!(case(&mut sys, 0x7FFF_FFFF, Shift::Asr, 255), (0, false));
        // ROR by a non-zero multiple of 32: value unchanged, carry = bit 31.
        assert_eq!(
            case(&mut sys, 0x8000_0001, Shift::Ror, 32),
            (0x8000_0001, true)
        );
    }
}

//! The fault-injection surface of the machine.
//!
//! These are the six microarchitectural SRAM arrays the paper's GeFIN
//! campaigns target (§IV-C) — together covering more than 94% of the memory
//! cells modeled inside the CPU. The injector addresses each component as a
//! flat bit array; [`System::flip_bit`] maps a bit index onto the exact
//! underlying cell.

use std::fmt;

use crate::cache::ArrayKind;
use crate::mem::Device;
use crate::system::System;

/// A fault-injectable hardware component.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Component {
    /// Physical register file (integer + FP banks).
    RegFile,
    /// L1 instruction cache (data + tag + state arrays).
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2 cache.
    L2,
    /// Instruction TLB.
    ITlb,
    /// Data TLB.
    DTlb,
}

impl Component {
    /// All six components, in the paper's reporting order.
    pub const ALL: [Component; 6] = [
        Component::RegFile,
        Component::L1I,
        Component::L1D,
        Component::L2,
        Component::ITlb,
        Component::DTlb,
    ];

    /// Short name used in tables ("RF", "L1I$", …).
    pub fn short_name(self) -> &'static str {
        match self {
            Component::RegFile => "RF",
            Component::L1I => "L1I$",
            Component::L1D => "L1D$",
            Component::L2 => "L2$",
            Component::ITlb => "ITLB",
            Component::DTlb => "DTLB",
        }
    }

    /// Parse a component from its [`short_name`](Component::short_name)
    /// (used when decoding quarantine/journal records).
    pub fn from_short_name(s: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.short_name() == s)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Where an injected bit landed, for post-campaign analysis (e.g. the
/// paper's observation that TLB *tag* flips are almost always benign).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectionSite {
    /// The component.
    pub component: Component,
    /// The flat bit index within the component.
    pub bit: u64,
    /// Which array the bit belongs to.
    pub array: ArrayKind,
    /// Whether the containing entry/line held valid state at flip time.
    pub was_valid: bool,
}

impl<D: Device> System<D> {
    /// Total SRAM bits of a component under the current configuration.
    pub fn component_bits(&self, c: Component) -> u64 {
        match c {
            Component::RegFile => self.cpu.regs.total_bits(),
            Component::L1I => self.mem.l1i.total_bits(),
            Component::L1D => self.mem.l1d.total_bits(),
            Component::L2 => self.mem.l2.total_bits(),
            Component::ITlb => self.itlb.total_bits(),
            Component::DTlb => self.dtlb.total_bits(),
        }
    }

    /// Total SRAM bits across all six modeled components.
    pub fn total_modeled_bits(&self) -> u64 {
        Component::ALL.iter().map(|&c| self.component_bits(c)).sum()
    }

    /// Flips one bit of `c`, returning the injection site description.
    ///
    /// If the execution fast path is armed, all of its memoized state
    /// (µop cache + translation latches) is invalidated so that nothing
    /// predating the fault can be replayed across it. This is defense in
    /// depth — the µop `(paddr, raw_word)` key and the revalidated latches
    /// already self-invalidate on corruption — and it is free at
    /// one-flip-per-run campaign rates.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= component_bits(c)`.
    pub fn flip_bit(&mut self, c: Component, bit: u64) -> InjectionSite {
        self.fastpath_invalidate();
        self.warp_invalidate();
        let (array, was_valid) = match c {
            Component::RegFile => {
                self.cpu.regs.flip_bit(bit);
                (ArrayKind::Data, true)
            }
            Component::L1I => {
                let i = self.mem.l1i.flip_bit(bit);
                (i.array, i.was_valid)
            }
            Component::L1D => {
                let i = self.mem.l1d.flip_bit(bit);
                (i.array, i.was_valid)
            }
            Component::L2 => {
                let i = self.mem.l2.flip_bit(bit);
                (i.array, i.was_valid)
            }
            Component::ITlb => {
                let (is_tag, was_valid) = self.itlb.flip_bit(bit);
                (
                    if is_tag {
                        ArrayKind::Tag
                    } else {
                        ArrayKind::Data
                    },
                    was_valid,
                )
            }
            Component::DTlb => {
                let (is_tag, was_valid) = self.dtlb.flip_bit(bit);
                (
                    if is_tag {
                        ArrayKind::Tag
                    } else {
                        ArrayKind::Data
                    },
                    was_valid,
                )
            }
        };
        InjectionSite {
            component: c,
            bit,
            array,
            was_valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::mem::NullDevice;

    #[test]
    fn paper_config_component_sizes() {
        let sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        // Data-array portions match the paper's quoted sizes.
        assert!(sys.component_bits(Component::L1I) >= 32 * 1024 * 8);
        assert!(sys.component_bits(Component::L2) >= 512 * 1024 * 8);
        assert_eq!(sys.component_bits(Component::ITlb), 4096);
        assert_eq!(sys.component_bits(Component::RegFile), 1536);
        // The paper notes the TLB is 1/64th of an L1 cache's fault target.
        let l1 = 32 * 1024 * 8u64;
        assert_eq!(l1 / 4096, 64);
    }

    #[test]
    fn l2_dominates_modeled_bits() {
        // §V-B: the L2 covers more than 80% of modeled memory cells.
        let sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        let l2 = sys.component_bits(Component::L2) as f64;
        assert!(l2 / sys.total_modeled_bits() as f64 > 0.8);
    }

    #[test]
    fn flip_bit_reaches_every_component() {
        let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
        for c in Component::ALL {
            let bits = sys.component_bits(c);
            let site = sys.flip_bit(c, bits - 1);
            assert_eq!(site.component, c);
        }
    }
}

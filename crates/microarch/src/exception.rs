//! Exceptions and the vector table.

/// Base virtual address of the exception vector table (ARM-style *low*
/// vectors). The kernel links its image at address zero so the six vector
/// slots are the first words of kernel text; the page must be mapped
/// executable-supervisor.
pub const VECTOR_BASE: u32 = 0x0000_0000;

/// Why a memory access aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCause {
    /// No valid translation for the address.
    Translation = 1,
    /// Valid translation, insufficient permission.
    Permission = 2,
    /// Misaligned access.
    Alignment = 3,
    /// Translated physical address is outside DRAM and the device window.
    OutOfRange = 4,
}

/// An architectural exception.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exception {
    /// Undefined/corrupt instruction word.
    Undefined {
        /// The instruction word that failed to decode (or was illegal in
        /// the current mode).
        word: u32,
    },
    /// Supervisor call.
    Svc {
        /// The SVC immediate.
        imm: u16,
    },
    /// Instruction-fetch abort.
    PrefetchAbort {
        /// Faulting virtual address.
        vaddr: u32,
        /// Cause.
        cause: AbortCause,
    },
    /// Data-access abort.
    DataAbort {
        /// Faulting virtual address.
        vaddr: u32,
        /// Cause.
        cause: AbortCause,
    },
    /// Interrupt request.
    Irq,
}

impl Exception {
    /// Offset of this exception's vector from [`VECTOR_BASE`].
    pub fn vector_offset(&self) -> u32 {
        match self {
            Exception::Undefined { .. } => 0x04,
            Exception::Svc { .. } => 0x08,
            Exception::PrefetchAbort { .. } => 0x0C,
            Exception::DataAbort { .. } => 0x10,
            Exception::Irq => 0x14,
        }
    }

    /// Encodes the exception syndrome (`ESR`): class in `[31:24]`, detail
    /// in `[15:0]`.
    pub fn esr(&self) -> u32 {
        match self {
            Exception::Undefined { word } => (1 << 24) | (word & 0xFFFF),
            Exception::Svc { imm } => (2 << 24) | *imm as u32,
            Exception::PrefetchAbort { cause, .. } => (3 << 24) | *cause as u32,
            Exception::DataAbort { cause, .. } => (4 << 24) | *cause as u32,
            Exception::Irq => 5 << 24,
        }
    }

    /// Exception class number as stored in `ESR[31:24]`.
    pub fn class(&self) -> u32 {
        self.esr() >> 24
    }
}

/// ESR class value for undefined-instruction exceptions.
pub const ESR_CLASS_UNDEFINED: u32 = 1;
/// ESR class value for supervisor calls.
pub const ESR_CLASS_SVC: u32 = 2;
/// ESR class value for prefetch aborts.
pub const ESR_CLASS_PREFETCH_ABORT: u32 = 3;
/// ESR class value for data aborts.
pub const ESR_CLASS_DATA_ABORT: u32 = 4;
/// ESR class value for IRQs.
pub const ESR_CLASS_IRQ: u32 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_distinct_and_in_page() {
        let exs = [
            Exception::Undefined { word: 0 },
            Exception::Svc { imm: 0 },
            Exception::PrefetchAbort {
                vaddr: 0,
                cause: AbortCause::Translation,
            },
            Exception::DataAbort {
                vaddr: 0,
                cause: AbortCause::Permission,
            },
            Exception::Irq,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in exs {
            assert!(e.vector_offset() < 0x1000);
            assert!(seen.insert(e.vector_offset()));
        }
    }

    #[test]
    fn esr_separates_classes() {
        assert_eq!(Exception::Svc { imm: 7 }.class(), ESR_CLASS_SVC);
        assert_eq!(Exception::Svc { imm: 7 }.esr() & 0xFFFF, 7);
        assert_eq!(
            Exception::DataAbort {
                vaddr: 0,
                cause: AbortCause::Alignment
            }
            .esr()
                & 0xFFFF,
            3
        );
    }
}

//! # sea-microarch — cycle-level full-system model of an ARM-class core
//!
//! This crate is SEA's substitute for the paper's gem5 detailed Cortex-A9
//! model: a from-scratch microarchitectural simulator for the AR32 ISA with
//! all the SRAM state the paper's fault-injection campaigns target —
//! L1 instruction/data caches, a unified L2, instruction/data TLBs and the
//! physical register file — plus an MMU with a hardware page-table walker,
//! a bimodal branch predictor, privilege levels, exceptions/IRQs, and a
//! memory-mapped device window.
//!
//! Two execution modes mirror gem5's CPU models (paper Table I):
//! [`ExecMode::Atomic`] (functional) and [`ExecMode::Detailed`]
//! (microarchitectural, the mode every injection campaign runs in).
//!
//! The fault-injection surface is [`Component`] + [`System::flip_bit`]:
//! every SRAM bit of the six target arrays is addressable and flips the
//! exact modeled cell (data, tag, or state).
//!
//! # Example
//!
//! ```
//! use sea_microarch::{MachineConfig, NullDevice, System, Component};
//!
//! let sys = System::new(MachineConfig::cortex_a9(), NullDevice);
//! // The L2 dominates the chip's SRAM, as in the paper.
//! let l2 = sys.component_bits(Component::L2);
//! assert!(l2 > sys.total_modeled_bits() * 8 / 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod counters;
mod exception;
mod fastpath;
mod fault;
mod mem;
mod memsys;
mod mmu;
mod profiler;
mod provenance;
mod regfile;
mod system;
mod tlb;
mod warp;

pub use cache::{ArrayKind, Cache, FlipInfo, Probe, WatchReport};
pub use config::{CacheConfig, ExecMode, Latencies, MachineConfig};
pub use counters::Counters;
pub use exception::{
    AbortCause, Exception, ESR_CLASS_DATA_ABORT, ESR_CLASS_IRQ, ESR_CLASS_PREFETCH_ABORT,
    ESR_CLASS_SVC, ESR_CLASS_UNDEFINED, VECTOR_BASE,
};
pub use fastpath::{FastPathConfig, FastPathStats};
pub use fault::{Component, InjectionSite};
pub use mem::{Device, NullDevice, PhysMemory, DEVICE_BASE};
pub use memsys::MemSystem;
pub use mmu::{
    decode_pte, l1_entry, l1_entry_addr, l2_entry_addr, pte, split_vaddr, PteView, L1_ENTRIES,
    L2_ENTRIES, PAGE_BYTES, PAGE_SHIFT, PTE_EXEC, PTE_USER, PTE_VALID, PTE_WRITE,
};
pub use profiler::{MemProfiler, SysProfiler};
pub use provenance::{FaultProbe, Hop, HopKind, Residence};
pub use regfile::{Cpsr, Mode, RegFile, REGFILE_BITS};
pub use system::{Cpu, StepOutcome, System};
pub use tlb::{Tlb, TlbEntry};
pub use warp::{WarpConfig, WarpStats};
